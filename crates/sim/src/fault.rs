//! Deterministic fault injection.
//!
//! A [`FaultPlan`] names *fault sites* — places in the platform where the
//! real system can fail (snapshot reads, restored pages, VM boots, the
//! document store, the network) — and arms each with a trigger: a
//! probability per check, or a specific nth occurrence. A
//! [`FaultInjector`] executes the plan with the workspace's
//! [`SplitMix64`] generator, so the injected-fault
//! schedule is a pure function of the plan's seed and the sequence of
//! checks the platform performs: the same seed replays the same faults.
//!
//! Every injected fault is appended to a log and recorded as a zero-width
//! [`Trace`] event (label `fault:<site>`), so recovery behaviour is fully
//! observable in the same traces that carry the latency breakdowns.

use std::cell::RefCell;
use std::rc::Rc;

use crate::clock::Clock;
use crate::rng::SplitMix64;
use crate::time::Nanos;
use crate::trace::{Phase, Trace};

/// A place in the platform where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// I/O error while reading a snapshot file for restore/prefetch.
    SnapshotRead,
    /// Bit-rot in a stored snapshot page (detected via checksums).
    SnapshotCorruption,
    /// The VM crashes during boot or restore.
    VmCrash,
    /// The document store is transiently unavailable.
    StoreUnavailable,
    /// A delivered packet is dropped by the host network.
    NetLoss,
    /// An entire host drops out of the cluster (crash, power loss, or a
    /// network partition that fences it). Checked by the cluster layer at
    /// host service boundaries; a firing drains and re-routes that host's
    /// queue.
    HostCrash,
    /// A draining host dies before its drain completes: in-flight work
    /// and any unfinished snapshot hand-off are abandoned and the
    /// control plane must degrade to hard removal with rerouting.
    DrainInterrupt,
    /// A drain-time snapshot migration stalls mid-transfer (donor-side
    /// wedge); the receiving host must retry with backoff on another
    /// donor or fall back to rebuild-from-source.
    MigrationStall,
    /// A scale-up host fails to boot: the control plane must retry the
    /// boot or re-queue admissions that were waiting on the new
    /// capacity.
    ScaleUpFail,
}

impl FaultSite {
    /// Every site, in a fixed order (indexes the injector's counters).
    pub const ALL: [FaultSite; 9] = [
        FaultSite::SnapshotRead,
        FaultSite::SnapshotCorruption,
        FaultSite::VmCrash,
        FaultSite::StoreUnavailable,
        FaultSite::NetLoss,
        FaultSite::HostCrash,
        FaultSite::DrainInterrupt,
        FaultSite::MigrationStall,
        FaultSite::ScaleUpFail,
    ];

    /// Stable label used in trace events and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::SnapshotRead => "snapshot_read",
            FaultSite::SnapshotCorruption => "snapshot_corruption",
            FaultSite::VmCrash => "vm_crash",
            FaultSite::StoreUnavailable => "store_unavailable",
            FaultSite::NetLoss => "net_loss",
            FaultSite::HostCrash => "host_crash",
            FaultSite::DrainInterrupt => "drain_interrupt",
            FaultSite::MigrationStall => "migration_stall",
            FaultSite::ScaleUpFail => "scale_up_fail",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::SnapshotRead => 0,
            FaultSite::SnapshotCorruption => 1,
            FaultSite::VmCrash => 2,
            FaultSite::StoreUnavailable => 3,
            FaultSite::NetLoss => 4,
            FaultSite::HostCrash => 5,
            FaultSite::DrainInterrupt => 6,
            FaultSite::MigrationStall => 7,
            FaultSite::ScaleUpFail => 8,
        }
    }
}

/// When an armed site actually fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Fires independently on each check with this probability.
    Probability(f64),
    /// Fires exactly once, on the nth check of the site (1-based).
    Nth(u64),
}

/// One armed fault site.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Where the fault strikes.
    pub site: FaultSite,
    /// When it strikes.
    pub trigger: FaultTrigger,
}

/// A seeded description of which faults to inject.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's RNG (probability triggers).
    pub seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Arms `site` to fire with probability `p` on every check.
    pub fn probability(mut self, site: FaultSite, p: f64) -> Self {
        self.rules.push(FaultRule {
            site,
            trigger: FaultTrigger::Probability(p),
        });
        self
    }

    /// Arms `site` to fire exactly once, on its nth check (1-based).
    pub fn nth(mut self, site: FaultSite, n: u64) -> Self {
        self.rules.push(FaultRule {
            site,
            trigger: FaultTrigger::Nth(n),
        });
        self
    }

    /// Arms *every* site with the same probability — the chaos-sweep
    /// configuration.
    pub fn uniform(seed: u64, p: f64) -> Self {
        let mut plan = FaultPlan::new(seed);
        for site in FaultSite::ALL {
            plan = plan.probability(site, p);
        }
        plan
    }

    /// The armed rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

/// One fault that actually fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Which site fired.
    pub site: FaultSite,
    /// The site-local check count when it fired (1-based).
    pub occurrence: u64,
    /// The global check count when it fired (1-based).
    pub sequence: u64,
    /// Virtual time of the injection (zero when no clock is attached).
    pub at: Nanos,
}

/// Executes a [`FaultPlan`]: the platform asks `should_fail(site)` at each
/// fault site, and the injector answers deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    occurrences: [u64; FaultSite::ALL.len()],
    checks: u64,
    injected: Vec<InjectedFault>,
    clock: Option<Clock>,
    trace: Trace,
}

impl FaultInjector {
    /// An injector executing `plan` from its seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultInjector {
            plan,
            rng,
            occurrences: [0; FaultSite::ALL.len()],
            checks: 0,
            injected: Vec::new(),
            clock: None,
            trace: Trace::new(),
        }
    }

    /// An injector with no armed sites (never fires).
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::new(0))
    }

    /// Attaches the virtual clock so injected faults are timestamped and
    /// recorded as trace events at the moment they fire.
    pub fn attach_clock(&mut self, clock: Clock) {
        self.clock = Some(clock);
    }

    /// Whether any rule is armed (cheap fast-path check).
    pub fn is_active(&self) -> bool {
        !self.plan.rules.is_empty()
    }

    /// Arms an additional rule after construction. Construction-time
    /// platform configuration layers its outage/loss knobs on top of the
    /// environment's base plan this way. Each armed probability rule
    /// consumes one RNG draw per check *of its own site*, so arming a
    /// site leaves the fault schedule of every other site untouched.
    pub fn arm(&mut self, site: FaultSite, trigger: FaultTrigger) {
        self.plan.rules.push(FaultRule { site, trigger });
    }

    /// Checks the site once; returns `true` when a fault fires there.
    ///
    /// Each probability-armed rule consumes exactly one RNG draw per
    /// check, so the schedule depends only on the seed and the sequence
    /// of checks — not on wall clock, addresses, or iteration order
    /// elsewhere.
    pub fn should_fail(&mut self, site: FaultSite) -> bool {
        self.checks += 1;
        self.occurrences[site.index()] += 1;
        let occurrence = self.occurrences[site.index()];
        let mut fired = false;
        for rule in &self.plan.rules {
            if rule.site != site {
                continue;
            }
            match rule.trigger {
                FaultTrigger::Probability(p) => {
                    if self.rng.next_bool(p) {
                        fired = true;
                    }
                }
                FaultTrigger::Nth(n) => {
                    if occurrence == n {
                        fired = true;
                    }
                }
            }
        }
        if fired {
            let at = self.clock.as_ref().map(Clock::now).unwrap_or(Nanos::ZERO);
            self.trace
                .record(format!("fault:{}", site.label()), Phase::Other, at, at);
            self.injected.push(InjectedFault {
                site,
                occurrence,
                sequence: self.checks,
                at,
            });
        }
        fired
    }

    /// Every fault injected so far, in firing order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    /// Number of faults injected at `site` so far.
    pub fn injected_at(&self, site: FaultSite) -> usize {
        self.injected.iter().filter(|f| f.site == site).count()
    }

    /// Total site checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Takes the accumulated `fault:*` trace events, leaving the internal
    /// log empty (platforms merge this into per-invocation traces).
    pub fn drain_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// A digest of the injected-fault schedule: two runs with the same
    /// plan and check sequence produce the same fingerprint.
    pub fn schedule_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for f in &self.injected {
            mix(f.site.index() as u64);
            mix(f.occurrence);
            mix(f.sequence);
        }
        h
    }
}

/// A shareable injector handle: the platform, the store, the network, and
/// the VM manager all consult the same injector state.
pub type SharedInjector = Rc<RefCell<FaultInjector>>;

/// Wraps an injector for sharing across subsystems.
pub fn shared(injector: FaultInjector) -> SharedInjector {
    Rc::new(RefCell::new(injector))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = FaultInjector::disabled();
        for _ in 0..1000 {
            for site in FaultSite::ALL {
                assert!(!inj.should_fail(site));
            }
        }
        assert!(inj.injected().is_empty());
        assert!(!inj.is_active());
    }

    #[test]
    fn probability_zero_never_fires_but_still_draws() {
        let mut armed = FaultInjector::new(FaultPlan::uniform(9, 0.0));
        assert!(armed.is_active());
        for _ in 0..500 {
            assert!(!armed.should_fail(FaultSite::NetLoss));
        }
        assert!(armed.injected().is_empty());
    }

    #[test]
    fn nth_trigger_fires_exactly_once_at_the_nth_check() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).nth(FaultSite::SnapshotRead, 3));
        let fired: Vec<bool> = (0..6)
            .map(|_| inj.should_fail(FaultSite::SnapshotRead))
            .collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(inj.injected().len(), 1);
        assert_eq!(inj.injected()[0].occurrence, 3);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::uniform(1234, 0.2);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..400 {
            let site = FaultSite::ALL[i % FaultSite::ALL.len()];
            assert_eq!(a.should_fail(site), b.should_fail(site));
        }
        assert_eq!(a.injected(), b.injected());
        assert_eq!(a.schedule_fingerprint(), b.schedule_fingerprint());
        assert!(!a.injected().is_empty(), "rate 0.2 must fire in 400 checks");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultInjector::new(FaultPlan::uniform(1, 0.3));
        let mut b = FaultInjector::new(FaultPlan::uniform(2, 0.3));
        for _ in 0..200 {
            a.should_fail(FaultSite::StoreUnavailable);
            b.should_fail(FaultSite::StoreUnavailable);
        }
        assert_ne!(a.schedule_fingerprint(), b.schedule_fingerprint());
    }

    #[test]
    fn injections_are_recorded_as_trace_events() {
        let clock = Clock::new();
        clock.advance(Nanos::from_millis(5));
        let mut inj = FaultInjector::new(FaultPlan::new(0).nth(FaultSite::VmCrash, 1));
        inj.attach_clock(clock.clone());
        assert!(inj.should_fail(FaultSite::VmCrash));
        let trace = inj.drain_trace();
        assert_eq!(trace.spans().len(), 1);
        assert_eq!(trace.spans()[0].label, "fault:vm_crash");
        assert_eq!(trace.spans()[0].start, Nanos::from_millis(5));
        // Draining leaves the log empty.
        assert!(inj.drain_trace().spans().is_empty());
    }

    #[test]
    fn arming_after_construction_activates_the_site_without_disturbing_others() {
        let mut inj = FaultInjector::new(FaultPlan::new(42).probability(FaultSite::NetLoss, 0.3));
        let mut twin = FaultInjector::new(FaultPlan::new(42).probability(FaultSite::NetLoss, 0.3));
        inj.arm(FaultSite::StoreUnavailable, FaultTrigger::Nth(1));
        assert!(inj.should_fail(FaultSite::StoreUnavailable));
        // NetLoss draws are unaffected by the extra StoreUnavailable rule.
        for _ in 0..100 {
            assert_eq!(
                inj.should_fail(FaultSite::NetLoss),
                twin.should_fail(FaultSite::NetLoss)
            );
        }
    }

    #[test]
    fn sites_have_independent_occurrence_counters() {
        let mut inj = FaultInjector::new(
            FaultPlan::new(0)
                .nth(FaultSite::NetLoss, 2)
                .nth(FaultSite::StoreUnavailable, 1),
        );
        assert!(inj.should_fail(FaultSite::StoreUnavailable));
        assert!(!inj.should_fail(FaultSite::NetLoss));
        assert!(inj.should_fail(FaultSite::NetLoss));
        assert_eq!(inj.injected_at(FaultSite::NetLoss), 1);
        assert_eq!(inj.injected_at(FaultSite::StoreUnavailable), 1);
    }
}
