//! A monotonically advancing virtual clock.

use std::cell::Cell;
use std::rc::Rc;

use crate::time::Nanos;

/// A virtual clock shared by every component of one simulated host.
///
/// The clock is deliberately single-threaded (`Rc<Cell<_>>`): a simulation
/// run models one host's timeline and determinism is the point. Components
/// hold a cheap [`Clock`] clone and charge costs with [`Clock::advance`].
///
/// # Examples
///
/// ```
/// use fireworks_sim::{Clock, Nanos};
///
/// let clock = Clock::new();
/// let t0 = clock.now();
/// clock.advance(Nanos::from_millis(3));
/// assert_eq!(clock.now() - t0, Nanos::from_millis(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Rc<Cell<u64>>,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current virtual instant.
    #[inline]
    pub fn now(&self) -> Nanos {
        Nanos(self.now.get())
    }

    /// Advances the clock by `delta` and returns the new instant.
    #[inline]
    pub fn advance(&self, delta: Nanos) -> Nanos {
        let next = self.now.get().saturating_add(delta.as_nanos());
        self.now.set(next);
        Nanos(next)
    }

    /// Sets the clock to `instant`, moving backwards if necessary.
    ///
    /// This exists for the discrete-event engine ([`crate::engine`]):
    /// events fire in nondecreasing time order, but a service that ran
    /// long leaves the clock ahead of the *next* event's start instant,
    /// so the driver warps back before handling it. Within any one
    /// activity the clock still only moves forward (via
    /// [`Clock::advance`]); everything else should treat the clock as
    /// monotone and never warp.
    #[inline]
    pub fn warp_to(&self, instant: Nanos) {
        self.now.set(instant.as_nanos());
    }

    /// Runs `f` and returns both its result and the virtual time it charged.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, Nanos) {
        let start = self.now();
        let value = f();
        (value, self.now() - start)
    }

    /// Returns a [`Stopwatch`] started at the current instant.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch {
            clock: self.clone(),
            start: self.now(),
        }
    }
}

/// Measures elapsed virtual time from a fixed start instant.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    clock: Clock,
    start: Nanos,
}

impl Stopwatch {
    /// Virtual time elapsed since the stopwatch was created.
    #[inline]
    pub fn elapsed(&self) -> Nanos {
        self.clock.now() - self.start
    }

    /// The instant the stopwatch was started.
    #[inline]
    pub fn start(&self) -> Nanos {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(Nanos::from_micros(5));
        assert_eq!(b.now(), Nanos::from_micros(5));
        b.advance(Nanos::from_micros(5));
        assert_eq!(a.now(), Nanos::from_micros(10));
    }

    #[test]
    fn measure_reports_charged_time() {
        let clock = Clock::new();
        let (value, took) = clock.measure(|| {
            clock.advance(Nanos::from_millis(7));
            42
        });
        assert_eq!(value, 42);
        assert_eq!(took, Nanos::from_millis(7));
    }

    #[test]
    fn stopwatch_tracks_elapsed() {
        let clock = Clock::new();
        clock.advance(Nanos::from_millis(1));
        let sw = clock.stopwatch();
        assert_eq!(sw.start(), Nanos::from_millis(1));
        clock.advance(Nanos::from_millis(2));
        assert_eq!(sw.elapsed(), Nanos::from_millis(2));
    }

    #[test]
    fn advance_never_goes_backwards() {
        let clock = Clock::new();
        clock.advance(Nanos::MAX);
        clock.advance(Nanos::from_secs(1));
        assert_eq!(clock.now(), Nanos::MAX);
    }
}
