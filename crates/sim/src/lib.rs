//! Simulation foundation for the Fireworks reproduction.
//!
//! Every latency reported by the benchmark harness is *virtual time*: a sum
//! of explicitly charged costs on a [`Clock`]. This makes every figure in
//! the evaluation bit-reproducible across machines, while the mechanisms
//! that produce the costs (JIT tiers, copy-on-write faults, boot stages,
//! syscall interception) are implemented for real in the other crates.
//!
//! The crate provides:
//!
//! - [`Nanos`]: a nanosecond duration/instant newtype with saturating
//!   arithmetic and human-friendly formatting.
//! - [`Clock`]: a monotonically advancing virtual clock.
//! - [`CostModel`]: the calibrated cost table shared by the whole system.
//! - [`rng::SplitMix64`]: a tiny deterministic RNG used where workloads
//!   need pseudo-random data without pulling randomness into results.
//! - [`engine`]: a deterministic discrete-event queue over virtual time —
//!   the substrate for genuinely concurrent activities (see
//!   [`queueing`] and the platform invocation engine built on top).
//! - [`trace`]: phase spans used to produce the paper's latency breakdowns
//!   (start-up / exec / others).
//! - [`fault`]: a seeded, deterministic fault-injection plane used to
//!   exercise the platform's recovery paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod cost;
pub mod engine;
pub mod fault;
pub mod queueing;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use clock::Clock;
pub use cost::CostModel;
pub use fault::{FaultInjector, FaultPlan, FaultSite};
pub use time::Nanos;
pub use trace::{Phase, Span, Trace};
