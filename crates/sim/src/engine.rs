//! A deterministic discrete-event engine over virtual time.
//!
//! The simulation's components charge costs by advancing one shared
//! [`Clock`](crate::Clock) as they run, which makes a single activity a
//! straight-line function call — but it means two activities cannot
//! overlap in *wall-clock call order*. The event engine recovers genuine
//! concurrency on top of that model: activities are decomposed into
//! events on a virtual timeline, the queue releases them in nondecreasing
//! time order, and the driver warps the shared clock to each event's
//! instant before handling it. Any state an activity holds between two of
//! its events (an invoker slot, a resident microVM's guest memory, a
//! checked-out warm container) is therefore held exactly over its virtual
//! lifetime, and unrelated activities scheduled in between observe it —
//! that is what makes slot contention, host-RAM pressure, and
//! snapshot-cache churn interact instead of being modelled post hoc.
//!
//! # Determinism
//!
//! Two rules make every run bit-reproducible:
//!
//! 1. Events fire in nondecreasing virtual time.
//! 2. Events at the *same* instant fire in the order they were scheduled
//!    (each [`EventQueue::schedule`] call takes the next value of a
//!    monotone sequence number, and the heap orders by `(time, seq)`).
//!
//! There is no randomness anywhere in the queue; identical schedules
//! produce identical pop orders on every platform.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// One event released by an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The virtual instant the event fires at.
    pub at: Nanos,
    /// The event's sequence number (its global scheduling order).
    pub seq: u64,
    /// The caller's payload.
    pub event: E,
}

/// Heap entry: min-ordered by `(at, seq)`; the payload never participates
/// in the ordering, so payload types need no `Ord`.
struct Entry<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // `(at, seq)` on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A virtual-time event queue with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use fireworks_sim::engine::EventQueue;
/// use fireworks_sim::Nanos;
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_millis(5), "b");
/// q.schedule(Nanos::from_millis(1), "a");
/// q.schedule(Nanos::from_millis(5), "c");
/// let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
/// // Time order first; equal instants fire in scheduling order.
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at` and returns its sequence number.
    ///
    /// Scheduling an event in the "past" (before an already-popped event)
    /// is allowed mechanically but breaks the nondecreasing-release
    /// invariant drivers rely on; well-behaved handlers only schedule at
    /// or after the instant of the event they are handling.
    pub fn schedule(&mut self, at: Nanos, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        seq
    }

    /// Releases the earliest event, `(time, seq)`-ordered.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            at: e.at,
            seq: e.seq,
            event: e.event,
        })
    }

    /// The instant of the next event, if any.
    pub fn peek_at(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (the next sequence number).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }
}

/// Drains `queue`, warping `clock` to each event's instant before calling
/// `handler`. The handler may schedule follow-up events (at or after the
/// handled instant) and may advance the clock to charge service time; the
/// driver re-warps before the next event either way.
pub fn drive<E>(
    clock: &crate::Clock,
    queue: &mut EventQueue<E>,
    mut handler: impl FnMut(&crate::Clock, Scheduled<E>, &mut EventQueue<E>),
) {
    while let Some(ev) = queue.pop() {
        clock.warp_to(ev.at);
        handler(clock, ev, queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clock;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn events_release_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(ms(30), 3);
        q.schedule(ms(10), 1);
        q.schedule(ms(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_release_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(ms(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_numbers_are_monotone_across_interleaved_pops() {
        let mut q = EventQueue::new();
        let a = q.schedule(ms(1), ());
        q.pop();
        let b = q.schedule(ms(2), ());
        assert!(b > a);
        assert_eq!(q.scheduled(), 2);
    }

    #[test]
    fn drive_warps_the_clock_and_allows_followups() {
        let clock = Clock::new();
        let mut q = EventQueue::new();
        q.schedule(ms(10), "start");
        let mut seen = Vec::new();
        drive(&clock, &mut q, |clock, ev, q| {
            seen.push((ev.at, ev.event));
            if ev.event == "start" {
                // Charge 5 ms of service, then schedule completion.
                clock.advance(ms(5));
                q.schedule(clock.now(), "done");
                // An unrelated event that begins before the service ends.
                q.schedule(ms(12), "overlap");
            }
        });
        assert_eq!(
            seen,
            vec![(ms(10), "start"), (ms(12), "overlap"), (ms(15), "done")]
        );
        // The clock ends at the last event's instant.
        assert_eq!(clock.now(), ms(15));
    }

    #[test]
    fn identical_schedules_pop_identically() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..50u64 {
                q.schedule(ms((i * 7) % 13), i);
            }
            std::iter::from_fn(move || q.pop().map(|s| (s.at, s.seq, s.event))).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
