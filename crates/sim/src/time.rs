//! Nanosecond-precision virtual time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant in virtual nanoseconds.
///
/// `Nanos` is used both as a point on the virtual timeline (an instant on a
/// [`crate::Clock`]) and as a span between two such points. All arithmetic
/// saturates rather than panicking: the simulation prefers a pinned value at
/// `u64::MAX` over aborting a long experiment on an overflow that can only
/// be produced by absurd cost configurations.
///
/// # Examples
///
/// ```
/// use fireworks_sim::Nanos;
///
/// let boot = Nanos::from_millis(125);
/// let runtime = Nanos::from_millis(950);
/// assert_eq!((boot + runtime).as_millis_f64(), 1075.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable duration.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> Self {
        Nanos(n)
    }

    /// Creates a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us.saturating_mul(1_000))
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms.saturating_mul(1_000_000))
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s.saturating_mul(1_000_000_000))
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((ms * 1_000_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in microseconds, rounded down.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in milliseconds, rounded down.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a count, saturating.
    #[inline]
    pub const fn saturating_mul(self, count: u64) -> Nanos {
        Nanos(self.0.saturating_mul(count))
    }

    /// Scales the duration by a floating-point factor, rounding to the
    /// nearest nanosecond. Negative or non-finite factors clamp to zero.
    #[inline]
    pub fn scale(self, factor: f64) -> Nanos {
        if !factor.is_finite() || factor <= 0.0 {
            return Nanos::ZERO;
        }
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            Nanos::MAX
        } else {
            Nanos(scaled.round() as u64)
        }
    }

    /// Returns the ratio `self / other` as `f64`, or `f64::INFINITY` when
    /// `other` is zero and `self` is not.
    #[inline]
    pub fn ratio(self, other: Nanos) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                return 0.0;
            }
            return f64::INFINITY;
        }
        self.0 as f64 / other.0 as f64
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs.max(1))
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, n| acc + n)
    }
}

impl fmt::Display for Nanos {
    /// Formats with a unit chosen by magnitude: `ns`, `µs`, `ms`, or `s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n < 1_000 {
            write!(f, "{n}ns")
        } else if n < 1_000_000 {
            write!(f, "{:.2}µs", n as f64 / 1_000.0)
        } else if n < 1_000_000_000 {
            write!(f, "{:.2}ms", n as f64 / 1_000_000.0)
        } else {
            write!(f, "{:.3}s", n as f64 / 1_000_000_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
    }

    #[test]
    fn from_millis_f64_rounds() {
        assert_eq!(Nanos::from_millis_f64(1.5), Nanos::from_micros(1_500));
        assert_eq!(Nanos::from_millis_f64(-3.0), Nanos::ZERO);
        assert_eq!(Nanos::from_millis_f64(f64::NAN), Nanos::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos::MAX + Nanos::from_secs(1), Nanos::MAX);
        assert_eq!(Nanos::ZERO - Nanos::from_secs(1), Nanos::ZERO);
        assert_eq!(Nanos::MAX * 2, Nanos::MAX);
    }

    #[test]
    fn scale_clamps_bad_factors() {
        let d = Nanos::from_millis(10);
        assert_eq!(d.scale(0.5), Nanos::from_millis(5));
        assert_eq!(d.scale(-1.0), Nanos::ZERO);
        assert_eq!(d.scale(f64::INFINITY), Nanos::ZERO);
        assert_eq!(Nanos::MAX.scale(2.0), Nanos::MAX);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(Nanos::from_secs(2).ratio(Nanos::from_secs(1)), 2.0);
        assert_eq!(Nanos::ZERO.ratio(Nanos::ZERO), 0.0);
        assert!(Nanos::from_secs(1).ratio(Nanos::ZERO).is_infinite());
    }

    #[test]
    fn division_by_zero_is_pinned() {
        assert_eq!(Nanos::from_secs(1) / 0, Nanos::from_secs(1));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.00µs");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.00ms");
        assert_eq!(Nanos::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_iterator() {
        let total: Nanos = (1..=4).map(Nanos::from_millis).sum();
        assert_eq!(total, Nanos::from_millis(10));
    }
}
