//! Calibrated infrastructure cost table.
//!
//! Every fixed latency charged by the infrastructure crates (microVM boot
//! stages, container creation, NAT setup, snapshot I/O, message-bus hops,
//! per-I/O sandbox path costs) comes from one [`CostModel`] value, so an
//! experiment can be re-run under a different calibration by swapping a
//! single struct.
//!
//! The defaults are calibrated against latencies reported or implied by the
//! Fireworks paper (EuroSys '22, §5) and by the systems it builds on
//! (Firecracker NSDI '20, REAP ASPLOS '21): e.g. a full microVM cold boot
//! plus guest-OS init lands near 1.1 s, a post-JIT snapshot of a ~170 MiB
//! working set writes in ~0.4 s, and a snapshot restore costs ~10 ms before
//! the first CoW fault. Absolute values are *not* the reproduction target —
//! the cross-platform ratios are.

use crate::time::Nanos;

/// Costs of the Firecracker-style microVM lifecycle.
#[derive(Debug, Clone)]
pub struct MicroVmCosts {
    /// Spawning the VMM process and configuring it over its API socket.
    pub vmm_setup: Nanos,
    /// Guest kernel boot (decompress, init, mount rootfs).
    pub kernel_boot: Nanos,
    /// Guest userspace init (agent start, clock sync, device probe).
    pub guest_init: Nanos,
    /// Fixed cost of serializing VM device state into a snapshot.
    pub snapshot_create_base: Nanos,
    /// Cost per 4 KiB guest page written to the snapshot file.
    pub snapshot_write_per_page: Nanos,
    /// Fixed cost of restoring a snapshot (device state, memory mapping
    /// setup). Guest pages are mapped lazily and charged per CoW fault.
    pub snapshot_restore_base: Nanos,
    /// Cost per resident page for establishing the shared mapping.
    pub snapshot_map_per_page: Nanos,
    /// Resuming a paused (in-memory) microVM — the Firecracker warm start.
    pub resume_paused: Nanos,
    /// Pausing a running microVM.
    pub pause: Nanos,
    /// One guest query against the microVM metadata service (MMDS).
    pub mmds_lookup: Nanos,
}

impl Default for MicroVmCosts {
    fn default() -> Self {
        MicroVmCosts {
            vmm_setup: Nanos::from_millis(110),
            kernel_boot: Nanos::from_millis(740),
            guest_init: Nanos::from_millis(260),
            snapshot_create_base: Nanos::from_millis(24),
            snapshot_write_per_page: Nanos::from_micros(9),
            snapshot_restore_base: Nanos::from_millis(8),
            snapshot_map_per_page: Nanos::from_nanos(55),
            resume_paused: Nanos::from_millis(28),
            pause: Nanos::from_millis(6),
            mmds_lookup: Nanos::from_micros(180),
        }
    }
}

/// Costs of the OpenWhisk-style container platform path.
#[derive(Debug, Clone)]
pub struct ContainerCosts {
    /// Controller work per request: authentication, entitlement checks.
    pub controller_auth: Nanos,
    /// Scheduling and message-bus hop from controller to an invoker.
    pub controller_dispatch: Nanos,
    /// Creating a fresh container (image setup, cgroups, overlayfs mounts).
    pub container_create: Nanos,
    /// Starting the created container's init process.
    pub container_start: Nanos,
    /// Re-activating a kept-warm container (unpause + route).
    pub warm_attach: Nanos,
    /// The `/init` + `/run` proxy round-trip inside an action container.
    pub action_proxy: Nanos,
}

impl Default for ContainerCosts {
    fn default() -> Self {
        ContainerCosts {
            controller_auth: Nanos::from_millis(230),
            controller_dispatch: Nanos::from_millis(20),
            container_create: Nanos::from_millis(430),
            container_start: Nanos::from_millis(160),
            warm_attach: Nanos::from_millis(14),
            action_proxy: Nanos::from_millis(8),
        }
    }
}

/// Costs of the gVisor-style secure container path.
#[derive(Debug, Clone)]
pub struct GvisorCosts {
    /// Booting the Sentry (user-space kernel) for a new sandbox.
    pub sentry_boot: Nanos,
    /// Starting the Gofer file proxy.
    pub gofer_start: Nanos,
    /// Extra per-syscall interception cost (seccomp trap + Sentry handling).
    pub syscall_intercept: Nanos,
    /// Extra per-file-I/O cost for the Sentry → Gofer → host round trip.
    pub gofer_io: Nanos,
    /// Re-activating a kept-warm gVisor sandbox.
    pub warm_attach: Nanos,
    /// Fixed cost of writing a process checkpoint.
    pub checkpoint_base: Nanos,
    /// Cost per 4 KiB page written to the checkpoint image.
    pub checkpoint_write_per_page: Nanos,
    /// Fixed cost of restoring a checkpoint (Sentry state rebuild —
    /// heavier than a microVM restore).
    pub restore_base: Nanos,
    /// Cost per resident page for establishing the restored mapping.
    pub restore_map_per_page: Nanos,
}

impl Default for GvisorCosts {
    fn default() -> Self {
        GvisorCosts {
            sentry_boot: Nanos::from_millis(640),
            gofer_start: Nanos::from_millis(120),
            syscall_intercept: Nanos::from_micros(2),
            gofer_io: Nanos::from_micros(95),
            warm_attach: Nanos::from_millis(46),
            checkpoint_base: Nanos::from_millis(30),
            checkpoint_write_per_page: Nanos::from_micros(9),
            restore_base: Nanos::from_millis(45),
            restore_map_per_page: Nanos::from_nanos(60),
        }
    }
}

/// Network plumbing costs.
#[derive(Debug, Clone)]
pub struct NetCosts {
    /// Creating a network namespace.
    pub netns_create: Nanos,
    /// Creating a tap device inside a namespace.
    pub tap_create: Nanos,
    /// Installing one NAT (DNAT+SNAT) rule pair.
    pub nat_rule_install: Nanos,
    /// Per-packet NAT translation cost.
    pub nat_translate: Nanos,
    /// Base one-way latency for a packet on the host bridge.
    pub packet_base: Nanos,
    /// Additional cost per KiB of payload.
    pub packet_per_kib: Nanos,
}

impl Default for NetCosts {
    fn default() -> Self {
        NetCosts {
            netns_create: Nanos::from_micros(900),
            tap_create: Nanos::from_micros(600),
            nat_rule_install: Nanos::from_micros(350),
            nat_translate: Nanos::from_micros(3),
            packet_base: Nanos::from_micros(55),
            packet_per_kib: Nanos::from_micros(2),
        }
    }
}

/// Message-bus (Kafka-style) costs for parameter passing.
#[derive(Debug, Clone)]
pub struct BusCosts {
    /// Producing one record (append + ack).
    pub produce: Nanos,
    /// Consuming one record (fetch round trip).
    pub consume: Nanos,
    /// Additional cost per KiB of record payload.
    pub per_kib: Nanos,
    /// Creating a topic.
    pub topic_create: Nanos,
}

impl Default for BusCosts {
    fn default() -> Self {
        BusCosts {
            produce: Nanos::from_micros(650),
            consume: Nanos::from_micros(800),
            per_kib: Nanos::from_micros(4),
            topic_create: Nanos::from_millis(2),
        }
    }
}

/// Per-operation disk I/O costs for each sandbox data path.
///
/// The FaaSdom disk benchmark's ordering (§5.2.1(2)) is determined by these:
/// containers on overlayfs beat microVMs on virtio, and gVisor's
/// Sentry+Gofer path is slowest.
#[derive(Debug, Clone)]
pub struct DiskCosts {
    /// Host-native file I/O (the floor).
    pub host_direct: Nanos,
    /// Container I/O through overlayfs + chroot.
    pub overlayfs: Nanos,
    /// MicroVM I/O through the virtio-blk emulation path.
    pub virtio_blk: Nanos,
    /// gVisor I/O through Sentry + Gofer.
    pub gvisor: Nanos,
    /// Additional cost per KiB transferred (same for all paths; the path
    /// constant dominates at FaaSdom's 10 KiB request size).
    pub per_kib: Nanos,
}

impl Default for DiskCosts {
    fn default() -> Self {
        DiskCosts {
            host_direct: Nanos::from_micros(14),
            overlayfs: Nanos::from_micros(22),
            virtio_blk: Nanos::from_micros(68),
            gvisor: Nanos::from_micros(240),
            per_kib: Nanos::from_micros(3),
        }
    }
}

/// Host memory-system costs.
#[derive(Debug, Clone)]
pub struct MemCosts {
    /// Copying one 4 KiB page on a CoW fault.
    pub cow_fault: Nanos,
    /// Mapping a zero page on first touch.
    pub zero_fill: Nanos,
    /// Reading one 4 KiB page from the snapshot file on a major fault.
    pub major_fault: Nanos,
}

impl Default for MemCosts {
    fn default() -> Self {
        MemCosts {
            cow_fault: Nanos::from_nanos(1_100),
            zero_fill: Nanos::from_nanos(600),
            major_fault: Nanos::from_micros(11),
        }
    }
}

/// The complete infrastructure cost table.
///
/// # Examples
///
/// ```
/// use fireworks_sim::CostModel;
///
/// let costs = CostModel::default();
/// // Full microVM cold boot (VMM + kernel + guest init) is on the order
/// // of a second, as in the paper's Firecracker cold-start results.
/// let boot = costs.microvm.vmm_setup
///     + costs.microvm.kernel_boot
///     + costs.microvm.guest_init;
/// assert!(boot.as_millis() > 800 && boot.as_millis() < 2_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// MicroVM lifecycle costs.
    pub microvm: MicroVmCosts,
    /// Container platform costs.
    pub container: ContainerCosts,
    /// gVisor sandbox costs.
    pub gvisor: GvisorCosts,
    /// Network plumbing costs.
    pub net: NetCosts,
    /// Message bus costs.
    pub bus: BusCosts,
    /// Disk I/O path costs.
    pub disk: DiskCosts,
    /// Host memory costs.
    pub mem: MemCosts,
}

impl CostModel {
    /// Total virtual time for a full microVM cold boot (no snapshot).
    pub fn microvm_cold_boot(&self) -> Nanos {
        self.microvm.vmm_setup + self.microvm.kernel_boot + self.microvm.guest_init
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_respect_paper_orderings() {
        let c = CostModel::default();
        // Disk path: overlayfs < virtio < gvisor (§5.2.1(2)).
        assert!(c.disk.host_direct < c.disk.overlayfs);
        assert!(c.disk.overlayfs < c.disk.virtio_blk);
        assert!(c.disk.virtio_blk < c.disk.gvisor);
        // Snapshot restore is far cheaper than a cold boot.
        assert!(c.microvm.snapshot_restore_base.as_nanos() * 20 < c.microvm_cold_boot().as_nanos());
        // Warm attach paths are far cheaper than creation paths.
        assert!(c.container.warm_attach < c.container.container_create);
        assert!(c.gvisor.warm_attach < c.gvisor.sentry_boot);
    }

    #[test]
    fn snapshot_write_time_matches_section_5_1() {
        // §5.1: writing a post-JIT snapshot takes 0.36–0.47 s. A typical
        // function working set is ~170 MiB (Shahrad et al.), i.e. ~43.5 k
        // pages.
        let c = CostModel::default();
        let pages = 170 * 1024 / 4;
        let t = c.microvm.snapshot_create_base + c.microvm.snapshot_write_per_page * (pages as u64);
        let secs = t.as_secs_f64();
        assert!((0.30..0.55).contains(&secs), "snapshot write {secs}s");
    }
}
