//! A tiny deterministic RNG.
//!
//! Workload generators need pseudo-random data (wage records, matrix
//! contents, request mixes) without letting host entropy into results. The
//! [`SplitMix64`] generator is small, fast, seedable, and has well-known
//! statistical quality for this purpose.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// # Examples
///
/// ```
/// use fireworks_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    ///
    /// Uses the widening-multiply technique (Lemire 2016) without the
    /// rejection step; the bias is < 2⁻³² for the bounds used here and
    /// irrelevant for workload generation.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive); `lo > hi` yields `lo`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_values_respect_bound() {
        let mut rng = SplitMix64::new(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn range_is_inclusive_and_handles_degenerate() {
        let mut rng = SplitMix64::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = rng.next_range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(rng.next_range(9, 3), 9);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = SplitMix64::new(6);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!rng.next_bool(0.0));
        assert!(rng.next_bool(1.0));
    }

    #[test]
    fn choose_returns_elements_from_slice() {
        let mut rng = SplitMix64::new(7);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
