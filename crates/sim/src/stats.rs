//! Small statistics helpers used by the benchmark harness.

use crate::time::Nanos;

/// Arithmetic mean of a slice of durations (zero for empty input).
pub fn mean(xs: &[Nanos]) -> Nanos {
    if xs.is_empty() {
        return Nanos::ZERO;
    }
    let total: u128 = xs.iter().map(|n| n.as_nanos() as u128).sum();
    Nanos::from_nanos((total / xs.len() as u128) as u64)
}

/// Geometric mean of a slice of durations (zero for empty input or any
/// zero element), as used for Fig. 6(e)/7(e)'s cross-benchmark summary.
pub fn geomean(xs: &[Nanos]) -> Nanos {
    if xs.is_empty() || xs.iter().any(|n| n.as_nanos() == 0) {
        return Nanos::ZERO;
    }
    let log_sum: f64 = xs.iter().map(|n| (n.as_nanos() as f64).ln()).sum();
    Nanos::from_nanos((log_sum / xs.len() as f64).exp().round() as u64)
}

/// Geometric mean of dimensionless ratios (zero elements are skipped).
pub fn geomean_f64(xs: &[f64]) -> f64 {
    let positive: Vec<f64> = xs.iter().copied().filter(|x| *x > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|x| x.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

/// The `p`-th percentile (0–100) using linear interpolation between the
/// two nearest ranks on a sorted copy (the numpy/R-7 definition).
///
/// Nearest-rank makes p99 collapse to the maximum whenever `n < 100`,
/// which skews small-sample tails like chaos_sweep's 40 invocations;
/// interpolating fixes that. Use [`percentile_nearest`] where figure
/// parity with older runs matters.
///
/// # Interpolation contract
///
/// The sample is treated as the R-7 quantile grid: sorted value `i`
/// sits at percentile `100·i/(n−1)`, so `percentile(xs, 0)` is the
/// minimum, `percentile(xs, 100)` the maximum, and any `p` between two
/// grid points interpolates linearly in *value* space (rounded to the
/// nearest nanosecond). Edge cases this implies:
///
/// - **Empty input** → [`Nanos::ZERO`] (no panic).
/// - **Single sample** → that sample for every `p`; the grid degenerates
///   to one point, so there is nothing to interpolate toward.
/// - **Duplicate-heavy input** → duplicates occupy adjacent ranks, so
///   any `p` whose bracketing ranks hold equal values returns that value
///   exactly — interpolation between equal endpoints is the identity,
///   never a value outside the sample.
/// - **Out-of-range `p`** → clamped to `[0, 100]`.
pub fn percentile(xs: &[Nanos], p: f64) -> Nanos {
    if xs.is_empty() {
        return Nanos::ZERO;
    }
    let mut sorted: Vec<Nanos> = xs.to_vec();
    sorted.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let rank = (p / 100.0) * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    let a = sorted[lo].as_nanos() as f64;
    let b = sorted[hi].as_nanos() as f64;
    Nanos::from_nanos((a + (b - a) * frac).round() as u64)
}

/// The `p`-th percentile (0–100) using the historical nearest-rank rule
/// (round to the closest index). Kept for parity with figures produced
/// before [`percentile`] switched to linear interpolation.
pub fn percentile_nearest(xs: &[Nanos], p: f64) -> Nanos {
    if xs.is_empty() {
        return Nanos::ZERO;
    }
    let mut sorted: Vec<Nanos> = xs.to_vec();
    sorted.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[ms(1), ms(2), ms(3)]), ms(2));
        assert_eq!(mean(&[]), Nanos::ZERO);
    }

    #[test]
    fn geomean_of_values() {
        // geomean(1, 100) = 10.
        let g = geomean(&[ms(1), ms(100)]);
        let err = (g.as_millis_f64() - 10.0).abs();
        assert!(err < 0.001, "geomean {g}");
        assert_eq!(geomean(&[]), Nanos::ZERO);
        assert_eq!(geomean(&[Nanos::ZERO, ms(5)]), Nanos::ZERO);
    }

    #[test]
    fn geomean_f64_skips_nonpositive() {
        let g = geomean_f64(&[1.0, 100.0, 0.0]);
        assert!((g - 10.0).abs() < 1e-9);
        assert_eq!(geomean_f64(&[]), 0.0);
    }

    #[test]
    fn percentile_exact_ranks() {
        let xs = [ms(10), ms(20), ms(30), ms(40), ms(50)];
        assert_eq!(percentile(&xs, 0.0), ms(10));
        assert_eq!(percentile(&xs, 50.0), ms(30));
        assert_eq!(percentile(&xs, 100.0), ms(50));
        assert_eq!(percentile(&[], 50.0), Nanos::ZERO);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let xs = [ms(10), ms(20), ms(30), ms(40), ms(50)];
        // rank = 0.75 * 4 = 3 exactly for p75 on n=5; use p60: rank 2.4.
        assert_eq!(percentile(&xs, 60.0), ms(34));
        assert_eq!(percentile(&xs, 25.0), ms(20)); // rank 1.0
        assert_eq!(percentile(&xs, 10.0), ms(14)); // rank 0.4
                                                   // p99 on a small sample no longer collapses to the max.
        let two = [ms(0), ms(100)];
        assert_eq!(percentile(&two, 99.0), ms(99));
        assert_eq!(percentile_nearest(&two, 99.0), ms(100));
    }

    #[test]
    fn percentile_single_sample_is_constant_in_p() {
        let one = [ms(37)];
        for p in [0.0, 1.0, 50.0, 99.0, 100.0, -5.0, 250.0] {
            assert_eq!(percentile(&one, p), ms(37), "p={p}");
            assert_eq!(percentile_nearest(&one, p), ms(37), "p={p}");
        }
    }

    #[test]
    fn percentile_duplicate_heavy_input_returns_the_mode_exactly() {
        // 1 low outlier, 8 copies of the mode, 1 high outlier: every p
        // bracketed by two copies of the mode returns the mode with no
        // interpolation drift.
        let mut xs = vec![ms(1)];
        xs.extend(std::iter::repeat_n(ms(20), 8));
        xs.push(ms(400));
        for p in [20.0, 25.0, 50.0, 75.0, 88.0] {
            assert_eq!(percentile(&xs, p), ms(20), "p={p}");
        }
        // All-equal input: constant for every p, including the extremes.
        let flat = [ms(7); 6];
        for p in [0.0, 33.3, 99.9, 100.0] {
            assert_eq!(percentile(&flat, p), ms(7), "p={p}");
        }
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let xs = [ms(10), ms(20), ms(30)];
        assert_eq!(percentile(&xs, -10.0), ms(10));
        assert_eq!(percentile(&xs, 1000.0), ms(30));
    }

    #[test]
    fn percentile_nearest_keeps_the_old_rule() {
        let xs = [ms(10), ms(20), ms(30), ms(40), ms(50)];
        assert_eq!(percentile_nearest(&xs, 0.0), ms(10));
        assert_eq!(percentile_nearest(&xs, 50.0), ms(30));
        assert_eq!(percentile_nearest(&xs, 60.0), ms(30)); // rank 2.4 rounds to 2
        assert_eq!(percentile_nearest(&xs, 100.0), ms(50));
        assert_eq!(percentile_nearest(&[], 50.0), Nanos::ZERO);
    }
}
