//! A deterministic multi-server queueing simulator.
//!
//! The paper's host consolidates many functions on limited cores; what a
//! user feels under load is *sojourn time* — queueing delay plus service
//! time — where service time is the platform's start-up + execution
//! latency. This module simulates `k` invoker slots serving an arrival
//! sequence FCFS, so the bench harness can turn per-invocation latencies
//! into load/tail-latency curves.
//!
//! Since the concurrent-invocation refactor, [`simulate`] is a thin shim
//! over the discrete-event engine ([`crate::engine`]): arrivals and
//! completions are events on a virtual timeline, admission is a FIFO
//! queue in front of `k` slots, and determinism comes from the engine's
//! `(time, seq)` ordering. The platform-level invocation engine
//! (`fireworks-core`) uses the same event discipline with *real*
//! invocations as the service activity; this module remains the
//! closed-form fast path for known service durations.

use std::collections::VecDeque;

use crate::engine::EventQueue;
use crate::time::Nanos;

/// One offered invocation.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Arrival instant.
    pub at: Nanos,
    /// Service duration (the invocation's end-to-end latency on an idle
    /// host).
    pub service: Nanos,
}

/// One served invocation.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Arrival instant.
    pub arrived: Nanos,
    /// When a slot picked it up.
    pub started: Nanos,
    /// When it finished.
    pub finished: Nanos,
}

impl Completion {
    /// Time spent waiting for a slot.
    ///
    /// Malformed completions (started before arrived) clamp to zero with
    /// a debug assertion; use [`Completion::checked_waited`] to detect
    /// them programmatically.
    pub fn waited(&self) -> Nanos {
        debug_assert!(
            self.started >= self.arrived,
            "malformed completion: started {} before arrival {}",
            self.started,
            self.arrived
        );
        self.started.saturating_sub(self.arrived)
    }

    /// Total time in the system (what the client observes).
    ///
    /// Malformed completions (finished before arrived) clamp to zero with
    /// a debug assertion; use [`Completion::checked_sojourn`] to detect
    /// them programmatically.
    pub fn sojourn(&self) -> Nanos {
        debug_assert!(
            self.finished >= self.arrived,
            "malformed completion: finished {} before arrival {}",
            self.finished,
            self.arrived
        );
        self.finished.saturating_sub(self.arrived)
    }

    /// [`Completion::waited`] that returns `None` instead of clamping
    /// when the completion is malformed.
    pub fn checked_waited(&self) -> Option<Nanos> {
        (self.started >= self.arrived)
            .then(|| Nanos(self.started.as_nanos() - self.arrived.as_nanos()))
    }

    /// [`Completion::sojourn`] that returns `None` instead of clamping
    /// when the completion is malformed.
    pub fn checked_sojourn(&self) -> Option<Nanos> {
        (self.finished >= self.arrived)
            .then(|| Nanos(self.finished.as_nanos() - self.arrived.as_nanos()))
    }
}

/// The simulator's event alphabet: request `i` arrives, or some request's
/// service completes and frees its slot.
enum Event {
    Arrive(usize),
    Complete,
}

/// Serves `arrivals` (must be sorted by arrival time) on `slots` FCFS
/// servers and returns one [`Completion`] per arrival, in arrival order.
///
/// # Panics
///
/// Panics if `slots == 0` or arrivals are not sorted by time.
///
/// # Examples
///
/// ```
/// use fireworks_sim::queueing::{simulate, Arrival};
/// use fireworks_sim::Nanos;
///
/// let ms = Nanos::from_millis;
/// // Two simultaneous arrivals, one slot: the second waits.
/// let done = simulate(1, &[
///     Arrival { at: ms(0), service: ms(10) },
///     Arrival { at: ms(0), service: ms(10) },
/// ]);
/// assert_eq!(done[0].waited(), Nanos::ZERO);
/// assert_eq!(done[1].waited(), ms(10));
/// ```
pub fn simulate(slots: usize, arrivals: &[Arrival]) -> Vec<Completion> {
    assert!(slots > 0, "need at least one slot");
    assert!(
        arrivals.windows(2).all(|w| w[0].at <= w[1].at),
        "arrivals must be sorted by time"
    );
    let mut queue: EventQueue<Event> = EventQueue::new();
    for (i, a) in arrivals.iter().enumerate() {
        queue.schedule(a.at, Event::Arrive(i));
    }
    let mut free = slots;
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut out: Vec<Option<Completion>> = vec![None; arrivals.len()];

    // Starts request `i` on a free slot at instant `t`.
    let start = |i: usize,
                 t: Nanos,
                 free: &mut usize,
                 queue: &mut EventQueue<Event>,
                 out: &mut Vec<Option<Completion>>| {
        *free -= 1;
        let finished = t + arrivals[i].service;
        out[i] = Some(Completion {
            arrived: arrivals[i].at,
            started: t,
            finished,
        });
        queue.schedule(finished, Event::Complete);
    };

    while let Some(ev) = queue.pop() {
        match ev.event {
            Event::Arrive(i) => {
                if free > 0 {
                    start(i, ev.at, &mut free, &mut queue, &mut out);
                } else {
                    waiting.push_back(i);
                }
            }
            Event::Complete => {
                free += 1;
                if let Some(i) = waiting.pop_front() {
                    start(i, ev.at, &mut free, &mut queue, &mut out);
                }
            }
        }
    }
    out.into_iter()
        .map(|c| c.expect("every arrival completes"))
        .collect()
}

/// Builds a Poisson-like arrival sequence: exponential inter-arrival
/// times with the given mean, deterministic under the seed.
pub fn poisson_arrivals(
    seed: u64,
    count: usize,
    mean_inter_arrival: Nanos,
    mut service: impl FnMut(usize, &mut crate::rng::SplitMix64) -> Nanos,
) -> Vec<Arrival> {
    let mut rng = crate::rng::SplitMix64::new(seed);
    let mut t = Nanos::ZERO;
    (0..count)
        .map(|i| {
            // Inverse-CDF sample of Exp(1/mean): -ln(U) * mean.
            let u = rng.next_f64().max(1e-12);
            t += mean_inter_arrival.scale(-u.ln());
            Arrival {
                at: t,
                service: service(i, &mut rng),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    /// The pre-engine FCFS implementation (slot free-time min-heap),
    /// kept verbatim as the reference model for the equivalence
    /// property test below.
    fn simulate_fcfs_reference(slots: usize, arrivals: &[Arrival]) -> Vec<Completion> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut free: BinaryHeap<Reverse<Nanos>> =
            (0..slots).map(|_| Reverse(Nanos::ZERO)).collect();
        let mut out = Vec::with_capacity(arrivals.len());
        for a in arrivals {
            let Reverse(slot_free) = free.pop().expect("slots non-empty");
            let started = a.at.max(slot_free);
            let finished = started + a.service;
            free.push(Reverse(finished));
            out.push(Completion {
                arrived: a.at,
                started,
                finished,
            });
        }
        out
    }

    #[test]
    fn idle_server_serves_immediately() {
        let done = simulate(
            2,
            &[
                Arrival {
                    at: ms(0),
                    service: ms(5),
                },
                Arrival {
                    at: ms(100),
                    service: ms(5),
                },
            ],
        );
        assert!(done.iter().all(|c| c.waited() == Nanos::ZERO));
        assert_eq!(done[1].finished, ms(105));
    }

    #[test]
    fn single_slot_serialises_a_burst() {
        let burst: Vec<Arrival> = (0..5)
            .map(|_| Arrival {
                at: ms(0),
                service: ms(10),
            })
            .collect();
        let done = simulate(1, &burst);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.started, ms(10 * i as u64));
            assert_eq!(c.sojourn(), ms(10 * (i as u64 + 1)));
        }
    }

    #[test]
    fn k_slots_run_k_in_parallel() {
        let burst: Vec<Arrival> = (0..6)
            .map(|_| Arrival {
                at: ms(0),
                service: ms(10),
            })
            .collect();
        let done = simulate(3, &burst);
        let immediate = done.iter().filter(|c| c.waited() == Nanos::ZERO).count();
        assert_eq!(immediate, 3);
        let max_finish = done.iter().map(|c| c.finished).max().expect("nonempty");
        assert_eq!(max_finish, ms(20));
    }

    #[test]
    fn shorter_service_times_shrink_tail_latency() {
        // Same arrival process, service 100 ms vs 10 ms: the tail of the
        // slow system is far worse — the queueing argument for fast
        // starts.
        let slow = poisson_arrivals(9, 300, ms(20), |_, _| ms(100));
        let fast: Vec<Arrival> = slow
            .iter()
            .map(|a| Arrival {
                at: a.at,
                service: ms(10),
            })
            .collect();
        let p99 = |completions: &[Completion]| {
            let mut s: Vec<Nanos> = completions.iter().map(Completion::sojourn).collect();
            s.sort_unstable();
            s[(s.len() * 99) / 100]
        };
        let slow_done = simulate(4, &slow);
        let fast_done = simulate(4, &fast);
        assert!(
            p99(&slow_done).as_nanos() > 5 * p99(&fast_done).as_nanos(),
            "p99 slow {} vs fast {}",
            p99(&slow_done),
            p99(&fast_done)
        );
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_deterministic() {
        let a = poisson_arrivals(5, 100, ms(10), |_, _| ms(1));
        let b = poisson_arrivals(5, 100, ms(10), |_, _| ms(1));
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.at == y.at));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let _ = simulate(
            1,
            &[
                Arrival {
                    at: ms(5),
                    service: ms(1),
                },
                Arrival {
                    at: ms(0),
                    service: ms(1),
                },
            ],
        );
    }

    #[test]
    fn checked_accessors_reject_malformed_completions() {
        let bad = Completion {
            arrived: ms(10),
            started: ms(5),
            finished: ms(7),
        };
        assert_eq!(bad.checked_waited(), None);
        assert_eq!(bad.checked_sojourn(), None);
        let good = Completion {
            arrived: ms(10),
            started: ms(12),
            finished: ms(20),
        };
        assert_eq!(good.checked_waited(), Some(ms(2)));
        assert_eq!(good.checked_sojourn(), Some(ms(10)));
        assert_eq!(good.waited(), ms(2));
        assert_eq!(good.sojourn(), ms(10));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "malformed completion")]
    fn malformed_waited_trips_the_debug_assertion() {
        let bad = Completion {
            arrived: ms(10),
            started: ms(5),
            finished: ms(7),
        };
        let _ = bad.waited();
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn malformed_accessors_clamp_in_release() {
        // Regression: these underflowed before the hardening; now they
        // clamp to zero instead of wrapping or panicking.
        let bad = Completion {
            arrived: ms(10),
            started: ms(5),
            finished: ms(7),
        };
        assert_eq!(bad.waited(), Nanos::ZERO);
        assert_eq!(bad.sojourn(), Nanos::ZERO);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arrivals_strategy() -> impl Strategy<Value = Vec<Arrival>> {
            proptest::collection::vec((0u64..50_000, 0u64..20_000), 0..200).prop_map(|raw| {
                let mut at = 0u64;
                raw.into_iter()
                    .map(|(gap, service)| {
                        // Cumulative gaps keep the sequence sorted; gap 0
                        // produces simultaneous arrivals, service 0
                        // produces zero-width jobs — both tie-break paths
                        // get exercised.
                        at += gap % 500;
                        Arrival {
                            at: Nanos::from_nanos(at),
                            service: Nanos::from_nanos(service),
                        }
                    })
                    .collect()
            })
        }

        proptest! {
            /// The engine shim completes every sorted arrival sequence
            /// identically to the original FCFS slot-heap model.
            #[test]
            fn engine_shim_matches_fcfs_reference(
                slots in 1usize..6,
                arrivals in arrivals_strategy(),
            ) {
                let engine = simulate(slots, &arrivals);
                let reference = simulate_fcfs_reference(slots, &arrivals);
                prop_assert_eq!(engine.len(), reference.len());
                for (i, (e, r)) in engine.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(e.arrived, r.arrived, "arrival {}", i);
                    prop_assert_eq!(e.started, r.started, "start {}", i);
                    prop_assert_eq!(e.finished, r.finished, "finish {}", i);
                }
            }
        }
    }
}
