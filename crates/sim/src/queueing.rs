//! A deterministic multi-server queueing simulator.
//!
//! The paper's host consolidates many functions on limited cores; what a
//! user feels under load is *sojourn time* — queueing delay plus service
//! time — where service time is the platform's start-up + execution
//! latency. This module simulates `k` invoker slots serving an arrival
//! sequence FCFS, so the bench harness can turn per-invocation latencies
//! into load/tail-latency curves.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// One offered invocation.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Arrival instant.
    pub at: Nanos,
    /// Service duration (the invocation's end-to-end latency on an idle
    /// host).
    pub service: Nanos,
}

/// One served invocation.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Arrival instant.
    pub arrived: Nanos,
    /// When a slot picked it up.
    pub started: Nanos,
    /// When it finished.
    pub finished: Nanos,
}

impl Completion {
    /// Time spent waiting for a slot.
    pub fn waited(&self) -> Nanos {
        self.started - self.arrived
    }

    /// Total time in the system (what the client observes).
    pub fn sojourn(&self) -> Nanos {
        self.finished - self.arrived
    }
}

/// Serves `arrivals` (must be sorted by arrival time) on `slots` FCFS
/// servers and returns one [`Completion`] per arrival, in arrival order.
///
/// # Panics
///
/// Panics if `slots == 0` or arrivals are not sorted by time.
///
/// # Examples
///
/// ```
/// use fireworks_sim::queueing::{simulate, Arrival};
/// use fireworks_sim::Nanos;
///
/// let ms = Nanos::from_millis;
/// // Two simultaneous arrivals, one slot: the second waits.
/// let done = simulate(1, &[
///     Arrival { at: ms(0), service: ms(10) },
///     Arrival { at: ms(0), service: ms(10) },
/// ]);
/// assert_eq!(done[0].waited(), Nanos::ZERO);
/// assert_eq!(done[1].waited(), ms(10));
/// ```
pub fn simulate(slots: usize, arrivals: &[Arrival]) -> Vec<Completion> {
    assert!(slots > 0, "need at least one slot");
    assert!(
        arrivals.windows(2).all(|w| w[0].at <= w[1].at),
        "arrivals must be sorted by time"
    );
    // Min-heap of slot free times.
    let mut free: BinaryHeap<Reverse<Nanos>> = (0..slots).map(|_| Reverse(Nanos::ZERO)).collect();
    let mut out = Vec::with_capacity(arrivals.len());
    for a in arrivals {
        let Reverse(slot_free) = free.pop().expect("slots non-empty");
        let started = a.at.max(slot_free);
        let finished = started + a.service;
        free.push(Reverse(finished));
        out.push(Completion {
            arrived: a.at,
            started,
            finished,
        });
    }
    out
}

/// Builds a Poisson-like arrival sequence: exponential inter-arrival
/// times with the given mean, deterministic under the seed.
pub fn poisson_arrivals(
    seed: u64,
    count: usize,
    mean_inter_arrival: Nanos,
    mut service: impl FnMut(usize, &mut crate::rng::SplitMix64) -> Nanos,
) -> Vec<Arrival> {
    let mut rng = crate::rng::SplitMix64::new(seed);
    let mut t = Nanos::ZERO;
    (0..count)
        .map(|i| {
            // Inverse-CDF sample of Exp(1/mean): -ln(U) * mean.
            let u = rng.next_f64().max(1e-12);
            t += mean_inter_arrival.scale(-u.ln());
            Arrival {
                at: t,
                service: service(i, &mut rng),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn idle_server_serves_immediately() {
        let done = simulate(
            2,
            &[
                Arrival {
                    at: ms(0),
                    service: ms(5),
                },
                Arrival {
                    at: ms(100),
                    service: ms(5),
                },
            ],
        );
        assert!(done.iter().all(|c| c.waited() == Nanos::ZERO));
        assert_eq!(done[1].finished, ms(105));
    }

    #[test]
    fn single_slot_serialises_a_burst() {
        let burst: Vec<Arrival> = (0..5)
            .map(|_| Arrival {
                at: ms(0),
                service: ms(10),
            })
            .collect();
        let done = simulate(1, &burst);
        for (i, c) in done.iter().enumerate() {
            assert_eq!(c.started, ms(10 * i as u64));
            assert_eq!(c.sojourn(), ms(10 * (i as u64 + 1)));
        }
    }

    #[test]
    fn k_slots_run_k_in_parallel() {
        let burst: Vec<Arrival> = (0..6)
            .map(|_| Arrival {
                at: ms(0),
                service: ms(10),
            })
            .collect();
        let done = simulate(3, &burst);
        let immediate = done.iter().filter(|c| c.waited() == Nanos::ZERO).count();
        assert_eq!(immediate, 3);
        let max_finish = done.iter().map(|c| c.finished).max().expect("nonempty");
        assert_eq!(max_finish, ms(20));
    }

    #[test]
    fn shorter_service_times_shrink_tail_latency() {
        // Same arrival process, service 100 ms vs 10 ms: the tail of the
        // slow system is far worse — the queueing argument for fast
        // starts.
        let slow = poisson_arrivals(9, 300, ms(20), |_, _| ms(100));
        let fast: Vec<Arrival> = slow
            .iter()
            .map(|a| Arrival {
                at: a.at,
                service: ms(10),
            })
            .collect();
        let p99 = |completions: &[Completion]| {
            let mut s: Vec<Nanos> = completions.iter().map(Completion::sojourn).collect();
            s.sort_unstable();
            s[(s.len() * 99) / 100]
        };
        let slow_done = simulate(4, &slow);
        let fast_done = simulate(4, &fast);
        assert!(
            p99(&slow_done).as_nanos() > 5 * p99(&fast_done).as_nanos(),
            "p99 slow {} vs fast {}",
            p99(&slow_done),
            p99(&fast_done)
        );
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_deterministic() {
        let a = poisson_arrivals(5, 100, ms(10), |_, _| ms(1));
        let b = poisson_arrivals(5, 100, ms(10), |_, _| ms(1));
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.at == y.at));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let _ = simulate(
            1,
            &[
                Arrival {
                    at: ms(5),
                    service: ms(1),
                },
                Arrival {
                    at: ms(0),
                    service: ms(1),
                },
            ],
        );
    }
}
