//! Phase spans and latency breakdowns.
//!
//! The paper's latency figures (Fig. 6/7/9) split end-to-end latency into
//! *start-up*, *exec*, and *others*. Platforms record [`Span`]s on a
//! [`Trace`] as they work, and the harness folds them into a [`Breakdown`].

use crate::clock::Clock;
use crate::time::Nanos;

/// The latency category a span belongs to, matching the paper's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Time from invocation until the function body is entered: sandbox
    /// creation/restore, runtime launch, code load.
    Startup,
    /// Time spent executing the function body.
    Exec,
    /// Everything else: network hops, parameter passing, response delivery.
    Other,
}

/// One labelled interval of virtual time attributed to a [`Phase`].
#[derive(Debug, Clone)]
pub struct Span {
    /// Human-readable label (e.g. `"kernel_boot"`).
    pub label: String,
    /// Latency category.
    pub phase: Phase,
    /// Virtual start instant.
    pub start: Nanos,
    /// Virtual end instant.
    pub end: Nanos,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }
}

/// An append-only log of [`Span`]s for one invocation.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records a span with explicit endpoints.
    ///
    /// Inverted intervals are normalised to empty spans at `start`.
    pub fn record(&mut self, label: impl Into<String>, phase: Phase, start: Nanos, end: Nanos) {
        let end = end.max(start);
        self.spans.push(Span {
            label: label.into(),
            phase,
            start,
            end,
        });
    }

    /// Runs `f`, attributing the virtual time it charges on `clock` to a
    /// span with the given label and phase, and returns `f`'s result.
    pub fn scope<T>(
        &mut self,
        clock: &Clock,
        label: impl Into<String>,
        phase: Phase,
        f: impl FnOnce() -> T,
    ) -> T {
        let start = clock.now();
        let value = f();
        self.record(label, phase, start, clock.now());
        value
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Appends all spans of another trace.
    pub fn extend(&mut self, other: &Trace) {
        self.spans.extend(other.spans.iter().cloned());
    }

    /// Aggregates the spans into the paper's three-way breakdown.
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for span in &self.spans {
            let d = span.duration();
            match span.phase {
                Phase::Startup => b.startup += d,
                Phase::Exec => b.exec += d,
                Phase::Other => b.other += d,
            }
        }
        b
    }

    /// Sum of the durations of spans whose label matches `label`.
    pub fn total_for(&self, label: &str) -> Nanos {
        self.spans
            .iter()
            .filter(|s| s.label == label)
            .map(Span::duration)
            .sum()
    }
}

/// The start-up / exec / others latency split used in Figs. 6, 7 and 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Total start-up time.
    pub startup: Nanos,
    /// Total function execution time.
    pub exec: Nanos,
    /// Everything else.
    pub other: Nanos,
}

impl Breakdown {
    /// End-to-end latency.
    pub fn total(&self) -> Nanos {
        self.startup + self.exec + self.other
    }

    /// Component-wise sum of two breakdowns.
    pub fn merge(&self, other: &Breakdown) -> Breakdown {
        Breakdown {
            startup: self.startup + other.startup,
            exec: self.exec + other.exec,
            other: self.other + other.other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_attributes_charged_time() {
        let clock = Clock::new();
        let mut trace = Trace::new();
        let out = trace.scope(&clock, "boot", Phase::Startup, || {
            clock.advance(Nanos::from_millis(9));
            "ok"
        });
        assert_eq!(out, "ok");
        assert_eq!(trace.spans().len(), 1);
        assert_eq!(trace.spans()[0].duration(), Nanos::from_millis(9));
    }

    #[test]
    fn breakdown_sums_by_phase() {
        let mut trace = Trace::new();
        let ms = Nanos::from_millis;
        trace.record("a", Phase::Startup, ms(0), ms(5));
        trace.record("b", Phase::Startup, ms(5), ms(7));
        trace.record("c", Phase::Exec, ms(7), ms(27));
        trace.record("d", Phase::Other, ms(27), ms(30));
        let b = trace.breakdown();
        assert_eq!(b.startup, ms(7));
        assert_eq!(b.exec, ms(20));
        assert_eq!(b.other, ms(3));
        assert_eq!(b.total(), ms(30));
    }

    #[test]
    fn inverted_spans_are_normalised() {
        let mut trace = Trace::new();
        trace.record(
            "x",
            Phase::Exec,
            Nanos::from_millis(5),
            Nanos::from_millis(1),
        );
        assert_eq!(trace.breakdown().exec, Nanos::ZERO);
    }

    #[test]
    fn total_for_filters_by_label() {
        let mut trace = Trace::new();
        let ms = Nanos::from_millis;
        trace.record("io", Phase::Other, ms(0), ms(2));
        trace.record("io", Phase::Other, ms(2), ms(5));
        trace.record("net", Phase::Other, ms(5), ms(6));
        assert_eq!(trace.total_for("io"), ms(5));
    }

    #[test]
    fn merge_combines_components() {
        let a = Breakdown {
            startup: Nanos::from_millis(1),
            exec: Nanos::from_millis(2),
            other: Nanos::from_millis(3),
        };
        let b = a.merge(&a);
        assert_eq!(b.total(), Nanos::from_millis(12));
    }

    #[test]
    fn extend_appends_spans() {
        let mut a = Trace::new();
        a.record("x", Phase::Exec, Nanos::ZERO, Nanos::from_millis(1));
        let mut b = Trace::new();
        b.record("y", Phase::Other, Nanos::ZERO, Nanos::from_millis(2));
        a.extend(&b);
        assert_eq!(a.spans().len(), 2);
    }
}
