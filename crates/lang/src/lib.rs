//! Flame — the guest language of the Fireworks reproduction.
//!
//! The paper's post-JIT snapshot interacts with a *language runtime*: a
//! profiling interpreter that tiers hot functions up to JIT-compiled code,
//! may deoptimise them when type assumptions break, and whose entire
//! execution state (including the JIT code cache) is captured by the VM
//! snapshot. Flame reproduces that machinery end to end:
//!
//! - [`lexer`] / [`parser`]: a small JS/Python-flavoured surface syntax,
//!   including the `@jit` annotation used by the Fireworks code annotator.
//! - [`compiler`]: AST → stack bytecode ([`bytecode::Chunk`]).
//! - [`vm::Vm`]: a tiered virtual machine. Cold functions run in the
//!   profiling interpreter, which records per-site type feedback; hot (or
//!   annotated) functions are *quickened* into type-specialised code with
//!   guards; a failed guard deoptimises back to generic bytecode.
//! - Snapshot/resume: the special host call `fireworks_snapshot()` suspends
//!   the VM mid-program; [`vm::Vm::snapshot_state`] deep-clones the full
//!   execution state (stack, frames, globals, JIT tier state) so a restored
//!   clone resumes exactly after the snapshot point — the paper's Fig. 3.
//!
//! Execution is metered: the VM counts interpreter ops, JIT ops, compile
//! work, and deopts ([`vm::ExecStats`]), which the `fireworks-runtime`
//! crate converts into virtual time under a language-runtime profile.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the NaN-boxed value representation in
// [`tagged`] needs raw-pointer packing and opts in locally; every other
// module stays safe code.
#![deny(unsafe_code)]

pub mod ast;
pub mod bytecode;
pub mod compiler;
pub mod error;
pub mod jit;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod tagged;
pub mod value;
pub mod vm;

pub use error::LangError;
pub use jit::JitConfig;
pub use tagged::TaggedValue;
pub use value::Value;
pub use vm::{ExecStats, Host, IcSummary, JitPolicy, NoopHost, Outcome, Vm};

/// Compiles Flame source text into an executable [`Program`].
///
/// # Examples
///
/// ```
/// use fireworks_lang::{compile, Vm, NoopHost, Outcome, Value};
///
/// let program = compile(
///     r#"
///     fn main(n) {
///         let total = 0;
///         for (let i = 1; i <= n; i = i + 1) { total = total + i; }
///         return total;
///     }
///     "#,
/// )
/// .expect("compiles");
/// let mut vm = Vm::new(program.into());
/// vm.start("main", vec![Value::Int(100)]).expect("entry exists");
/// let out = vm.run(&mut NoopHost).expect("runs");
/// assert_eq!(out, Outcome::Done(Value::Int(5050)));
/// ```
pub fn compile(source: &str) -> Result<Program, LangError> {
    let tokens = lexer::lex(source)?;
    let items = parser::parse(tokens)?;
    compiler::compile_items(&items)
}

pub use compiler::Program;
