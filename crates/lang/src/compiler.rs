//! AST → bytecode compiler.

use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::{BinOp, Expr, FnDecl, Item, Stmt, Target, UnOp};
use crate::bytecode::{Builtin, Chunk, Op};
use crate::error::LangError;
use crate::value::Value;

/// Name of the synthetic function holding top-level statements.
pub const TOPLEVEL: &str = "__toplevel__";

/// A compiled function: immutable bytecode plus its JIT annotation.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// The compiled body. `Rc` so VM snapshots share chunks.
    pub chunk: Rc<Chunk>,
    /// `true` when the source carried `@jit` (used by annotation-driven
    /// JIT policies).
    pub jit_hint: bool,
}

/// A compiled Flame program: the immutable part of a VM, shared by all
/// snapshot clones.
#[derive(Debug, Clone)]
pub struct Program {
    /// Function table. Entry points are looked up by name.
    pub functions: Vec<FuncDef>,
    /// Name → function-table index.
    pub fn_index: HashMap<String, usize>,
    /// Module-level variable names (globals).
    pub global_names: Vec<String>,
}

impl Program {
    /// Looks up a function index by name.
    pub fn function(&self, name: &str) -> Option<usize> {
        self.fn_index.get(name).copied()
    }

    /// Total bytecode ops across all functions (a proxy for code size).
    pub fn total_ops(&self) -> usize {
        self.functions.iter().map(|f| f.chunk.ops.len()).sum()
    }
}

struct LoopCtx {
    /// Jump indices to patch to the loop-exit target.
    breaks: Vec<usize>,
    /// Jump indices to patch to the continue target.
    continues: Vec<usize>,
}

struct FnCompiler<'p> {
    fn_index: &'p HashMap<String, usize>,
    globals: &'p HashMap<String, u16>,
    ops: Vec<Op>,
    consts: Vec<Value>,
    /// Lexical scopes: each is a list of (name, slot).
    scopes: Vec<Vec<(String, u16)>>,
    n_locals: u16,
    loops: Vec<LoopCtx>,
}

impl<'p> FnCompiler<'p> {
    fn add_const(&mut self, v: Value) -> Result<u16, LangError> {
        for (i, existing) in self.consts.iter().enumerate() {
            let same = match (existing, &v) {
                (Value::Int(a), Value::Int(b)) => a == b,
                (Value::Str(a), Value::Str(b)) => a == b,
                (Value::Bool(a), Value::Bool(b)) => a == b,
                (Value::Null, Value::Null) => true,
                (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
                _ => false,
            };
            if same {
                return Ok(i as u16);
            }
        }
        if self.consts.len() > u16::MAX as usize {
            return Err(LangError::compile("too many constants in one function"));
        }
        self.consts.push(v);
        Ok((self.consts.len() - 1) as u16)
    }

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn emit_jump(&mut self, make: fn(u32) -> Op) -> usize {
        self.emit(make(u32::MAX))
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.ops.len() as u32;
        self.patch_jump_to(at, target);
    }

    fn patch_jump_to(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfFalsePeek(t) | Op::JumpIfTruePeek(t) => {
                *t = target;
            }
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn declare_local(&mut self, name: &str) -> Result<u16, LangError> {
        if self.n_locals == u16::MAX {
            return Err(LangError::compile("too many locals"));
        }
        let slot = self.n_locals;
        self.n_locals += 1;
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.to_string(), slot));
        Ok(slot)
    }

    fn resolve_local(&self, name: &str) -> Option<u16> {
        for scope in self.scopes.iter().rev() {
            for (n, slot) in scope.iter().rev() {
                if n == name {
                    return Some(*slot);
                }
            }
        }
        None
    }

    fn compile_block(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        self.scopes.push(Vec::new());
        for stmt in stmts {
            self.compile_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn compile_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Let { name, value } => {
                self.compile_expr(value)?;
                // Top-level `let`s write globals; function-level `let`s
                // declare locals. The globals map is only populated for the
                // synthetic top-level function.
                if let Some(g) = self.globals.get(name).copied() {
                    self.emit(Op::StoreGlobal(g));
                } else {
                    let slot = self.declare_local(name)?;
                    self.emit(Op::StoreLocal(slot));
                }
                Ok(())
            }
            Stmt::Assign { target, value } => match target {
                Target::Var(name) => {
                    self.compile_expr(value)?;
                    if let Some(slot) = self.resolve_local(name) {
                        self.emit(Op::StoreLocal(slot));
                    } else if let Some(g) = self.globals.get(name).copied() {
                        self.emit(Op::StoreGlobal(g));
                    } else {
                        return Err(LangError::compile(format!(
                            "assignment to undeclared variable `{name}`"
                        )));
                    }
                    Ok(())
                }
                Target::Index { base, index } => {
                    // `obj.field = v` sugar parses as an index store with a
                    // literal string key; emit the inline-cached property
                    // store so the site participates in IC profiling.
                    if let Expr::Str(key) = index {
                        self.compile_expr(base)?;
                        self.compile_expr(value)?;
                        let c = self.add_const(Value::str(key))?;
                        self.emit(Op::SetProp(c));
                    } else {
                        self.compile_expr(base)?;
                        self.compile_expr(index)?;
                        self.compile_expr(value)?;
                        self.emit(Op::SetIndex);
                    }
                    Ok(())
                }
            },
            Stmt::Expr(e) => {
                self.compile_expr(e)?;
                self.emit(Op::Pop);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.compile_expr(cond)?;
                let to_else = self.emit_jump(Op::JumpIfFalse);
                self.compile_block(then_body)?;
                if else_body.is_empty() {
                    self.patch_jump(to_else);
                } else {
                    let to_end = self.emit_jump(Op::Jump);
                    self.patch_jump(to_else);
                    self.compile_block(else_body)?;
                    self.patch_jump(to_end);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let loop_start = self.ops.len() as u32;
                self.compile_expr(cond)?;
                let to_end = self.emit_jump(Op::JumpIfFalse);
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.compile_block(body)?;
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                for c in ctx.continues {
                    self.patch_jump_to(c, loop_start);
                }
                self.emit(Op::Jump(loop_start));
                self.patch_jump(to_end);
                for b in ctx.breaks {
                    self.patch_jump(b);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // The induction variable lives in its own scope.
                self.scopes.push(Vec::new());
                self.compile_stmt(init)?;
                let loop_start = self.ops.len() as u32;
                self.compile_expr(cond)?;
                let to_end = self.emit_jump(Op::JumpIfFalse);
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.compile_block(body)?;
                let ctx = self.loops.pop().expect("loop ctx pushed above");
                let step_start = self.ops.len() as u32;
                for c in ctx.continues {
                    self.patch_jump_to(c, step_start);
                }
                self.compile_stmt(step)?;
                self.emit(Op::Jump(loop_start));
                self.patch_jump(to_end);
                for b in ctx.breaks {
                    self.patch_jump(b);
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(value) => {
                match value {
                    Some(e) => self.compile_expr(e)?,
                    None => {
                        let c = self.add_const(Value::Null)?;
                        self.emit(Op::Const(c));
                    }
                }
                self.emit(Op::Return);
                Ok(())
            }
            Stmt::Break => {
                let j = self.emit_jump(Op::Jump);
                match self.loops.last_mut() {
                    Some(ctx) => ctx.breaks.push(j),
                    None => return Err(LangError::compile("`break` outside loop")),
                }
                Ok(())
            }
            Stmt::Continue => {
                let j = self.emit_jump(Op::Jump);
                match self.loops.last_mut() {
                    Some(ctx) => ctx.continues.push(j),
                    None => return Err(LangError::compile("`continue` outside loop")),
                }
                Ok(())
            }
        }
    }

    fn compile_expr(&mut self, expr: &Expr) -> Result<(), LangError> {
        match expr {
            Expr::Int(v) => {
                let c = self.add_const(Value::Int(*v))?;
                self.emit(Op::Const(c));
            }
            Expr::Float(v) => {
                let c = self.add_const(Value::Float(*v))?;
                self.emit(Op::Const(c));
            }
            Expr::Str(s) => {
                let c = self.add_const(Value::str(s))?;
                self.emit(Op::Const(c));
            }
            Expr::Bool(b) => {
                let c = self.add_const(Value::Bool(*b))?;
                self.emit(Op::Const(c));
            }
            Expr::Null => {
                let c = self.add_const(Value::Null)?;
                self.emit(Op::Const(c));
            }
            Expr::Var(name) => {
                if let Some(slot) = self.resolve_local(name) {
                    self.emit(Op::LoadLocal(slot));
                } else if let Some(g) = self.globals.get(name).copied() {
                    self.emit(Op::LoadGlobal(g));
                } else {
                    return Err(LangError::compile(format!("unknown variable `{name}`")));
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                self.compile_expr(lhs)?;
                self.compile_expr(rhs)?;
                self.emit(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::Mod => Op::Mod,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                });
            }
            Expr::And(lhs, rhs) => {
                self.compile_expr(lhs)?;
                let j = self.emit_jump(Op::JumpIfFalsePeek);
                self.emit(Op::Pop);
                self.compile_expr(rhs)?;
                self.patch_jump(j);
            }
            Expr::Or(lhs, rhs) => {
                self.compile_expr(lhs)?;
                let j = self.emit_jump(Op::JumpIfTruePeek);
                self.emit(Op::Pop);
                self.compile_expr(rhs)?;
                self.patch_jump(j);
            }
            Expr::Unary { op, operand } => {
                self.compile_expr(operand)?;
                self.emit(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                });
            }
            Expr::Call { callee, args } => {
                if args.len() > u8::MAX as usize {
                    return Err(LangError::compile("too many call arguments"));
                }
                if callee == "fireworks_snapshot" {
                    if !args.is_empty() {
                        return Err(LangError::compile(
                            "fireworks_snapshot() takes no arguments",
                        ));
                    }
                    self.emit(Op::Snapshot);
                    return Ok(());
                }
                for a in args {
                    self.compile_expr(a)?;
                }
                let argc = args.len() as u8;
                if let Some(func) = self.fn_index.get(callee).copied() {
                    self.emit(Op::Call {
                        func: func as u16,
                        argc,
                    });
                } else if let Some(builtin) = Builtin::from_name(callee) {
                    self.emit(Op::CallBuiltin { builtin, argc });
                } else {
                    // Unknown names become host calls, resolved by the
                    // embedding at runtime (I/O, DB, bus, MMDS, chains).
                    let c = self.add_const(Value::str(callee))?;
                    self.emit(Op::CallHost { name: c, argc });
                }
            }
            Expr::Index { base, index } => {
                // `obj.field` sugar parses as an index load with a literal
                // string key; emit the inline-cached property load.
                if let Expr::Str(key) = &**index {
                    self.compile_expr(base)?;
                    let c = self.add_const(Value::str(key))?;
                    self.emit(Op::GetProp(c));
                } else {
                    self.compile_expr(base)?;
                    self.compile_expr(index)?;
                    self.emit(Op::Index);
                }
            }
            Expr::Array(items) => {
                if items.len() > u16::MAX as usize {
                    return Err(LangError::compile("array literal too large"));
                }
                for item in items {
                    self.compile_expr(item)?;
                }
                self.emit(Op::MakeArray(items.len() as u16));
            }
            Expr::Map(entries) => {
                if entries.len() > u16::MAX as usize {
                    return Err(LangError::compile("map literal too large"));
                }
                for (k, v) in entries {
                    let c = self.add_const(Value::str(k))?;
                    self.emit(Op::Const(c));
                    self.compile_expr(v)?;
                }
                self.emit(Op::MakeMap(entries.len() as u16));
            }
        }
        Ok(())
    }

    fn finish(mut self, name: &str, arity: u8) -> Result<Chunk, LangError> {
        // Implicit `return null` at the end of every body.
        let c = self.add_const(Value::Null)?;
        self.emit(Op::Const(c));
        self.emit(Op::Return);
        Ok(Chunk {
            name: name.to_string(),
            arity,
            n_locals: self.n_locals,
            ops: self.ops,
            consts: self.consts,
        })
    }
}

/// Compiles parsed items into a [`Program`].
///
/// Top-level statements are gathered into a synthetic
/// [`TOPLEVEL`] function (the module body); top-level `let`s become
/// globals visible to every function, mirroring script semantics in
/// Node.js and Python.
pub fn compile_items(items: &[Item]) -> Result<Program, LangError> {
    // Pass 1: function table and globals.
    let mut fn_index: HashMap<String, usize> = HashMap::new();
    let mut decls: Vec<&FnDecl> = Vec::new();
    let mut top_stmts: Vec<&Stmt> = Vec::new();
    let mut global_names: Vec<String> = Vec::new();
    let mut globals: HashMap<String, u16> = HashMap::new();

    for item in items {
        match item {
            Item::Fn(decl) => {
                if fn_index.insert(decl.name.clone(), decls.len()).is_some() {
                    return Err(LangError::compile(format!(
                        "duplicate function `{}`",
                        decl.name
                    )));
                }
                decls.push(decl);
            }
            Item::Stmt(stmt) => {
                if let Stmt::Let { name, .. } = stmt {
                    if !globals.contains_key(name) {
                        if global_names.len() > u16::MAX as usize {
                            return Err(LangError::compile("too many globals"));
                        }
                        globals.insert(name.clone(), global_names.len() as u16);
                        global_names.push(name.clone());
                    }
                }
                top_stmts.push(stmt);
            }
        }
    }
    let has_toplevel = !top_stmts.is_empty();
    if has_toplevel && fn_index.contains_key(TOPLEVEL) {
        return Err(LangError::compile(format!("`{TOPLEVEL}` is reserved")));
    }
    let toplevel_idx = decls.len();
    if has_toplevel {
        fn_index.insert(TOPLEVEL.to_string(), toplevel_idx);
    }

    // Pass 2: compile bodies.
    let mut functions = Vec::with_capacity(decls.len() + usize::from(has_toplevel));
    for decl in &decls {
        if decl.params.len() > u8::MAX as usize {
            return Err(LangError::compile(format!(
                "function `{}` has too many parameters",
                decl.name
            )));
        }
        let mut fc = FnCompiler {
            fn_index: &fn_index,
            globals: &globals,
            ops: Vec::new(),
            consts: Vec::new(),
            scopes: vec![Vec::new()],
            n_locals: 0,
            loops: Vec::new(),
        };
        for p in &decl.params {
            fc.declare_local(p)?;
        }
        for stmt in &decl.body {
            fc.compile_stmt(stmt)?;
        }
        let chunk = fc.finish(&decl.name, decl.params.len() as u8)?;
        functions.push(FuncDef {
            chunk: Rc::new(chunk),
            jit_hint: decl.jit_hint,
        });
    }
    if has_toplevel {
        let mut fc = FnCompiler {
            fn_index: &fn_index,
            globals: &globals,
            ops: Vec::new(),
            consts: Vec::new(),
            scopes: vec![Vec::new()],
            n_locals: 0,
            loops: Vec::new(),
        };
        for stmt in &top_stmts {
            fc.compile_stmt(stmt)?;
        }
        let chunk = fc.finish(TOPLEVEL, 0)?;
        functions.push(FuncDef {
            chunk: Rc::new(chunk),
            jit_hint: false,
        });
    }

    Ok(Program {
        functions,
        fn_index,
        global_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Program {
        compile_items(&parse(lex(src).expect("lexes")).expect("parses")).expect("compiles")
    }

    #[test]
    fn compiles_function_table_and_toplevel() {
        let p = compile_src("let g = 1; fn f(a) { return a; } print(g);");
        assert!(p.function("f").is_some());
        assert!(p.function(TOPLEVEL).is_some());
        assert_eq!(p.global_names, vec!["g"]);
    }

    #[test]
    fn unknown_variable_is_a_compile_error() {
        let items = parse(lex("fn f() { return missing; }").expect("lexes")).expect("parses");
        assert!(matches!(
            compile_items(&items),
            Err(LangError::Compile { .. })
        ));
    }

    #[test]
    fn assignment_to_undeclared_is_an_error() {
        let items = parse(lex("fn f() { x = 1; }").expect("lexes")).expect("parses");
        assert!(compile_items(&items).is_err());
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        let items = parse(lex("fn f() { break; }").expect("lexes")).expect("parses");
        assert!(compile_items(&items).is_err());
    }

    #[test]
    fn duplicate_function_is_an_error() {
        let items = parse(lex("fn f() { } fn f() { }").expect("lexes")).expect("parses");
        assert!(compile_items(&items).is_err());
    }

    #[test]
    fn snapshot_call_compiles_to_snapshot_op() {
        let p = compile_src("fn f() { fireworks_snapshot(); }");
        let chunk = &p.functions[p.function("f").expect("exists")].chunk;
        assert!(chunk.ops.contains(&Op::Snapshot));
    }

    #[test]
    fn snapshot_with_args_is_an_error() {
        let items =
            parse(lex("fn f() { fireworks_snapshot(1); }").expect("lexes")).expect("parses");
        assert!(compile_items(&items).is_err());
    }

    #[test]
    fn unknown_calls_become_host_calls() {
        let p = compile_src("fn f() { return io_read(\"x\", 10); }");
        let chunk = &p.functions[p.function("f").expect("exists")].chunk;
        assert!(chunk
            .ops
            .iter()
            .any(|op| matches!(op, Op::CallHost { argc: 2, .. })));
    }

    #[test]
    fn known_calls_resolve_directly() {
        let p = compile_src("fn g() { } fn f() { g(); len([1]); }");
        let chunk = &p.functions[p.function("f").expect("exists")].chunk;
        assert!(chunk.ops.iter().any(|op| matches!(op, Op::Call { .. })));
        assert!(chunk.ops.iter().any(|op| matches!(
            op,
            Op::CallBuiltin {
                builtin: Builtin::Len,
                ..
            }
        )));
    }

    #[test]
    fn consts_are_deduplicated() {
        let p = compile_src("fn f() { return 1 + 1 + 1; }");
        let chunk = &p.functions[p.function("f").expect("exists")].chunk;
        let ones = chunk
            .consts
            .iter()
            .filter(|c| matches!(c, Value::Int(1)))
            .count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn jit_hint_is_preserved() {
        let p = compile_src("@jit fn hot() { } fn cold() { }");
        assert!(p.functions[p.function("hot").expect("exists")].jit_hint);
        assert!(!p.functions[p.function("cold").expect("exists")].jit_hint);
    }

    #[test]
    fn property_sugar_compiles_to_prop_ops() {
        // `.field` access and assignment must emit the IC-backed
        // GetProp/SetProp ops, not the generic Index/SetIndex path.
        let p = compile_src("fn f(m) { m.count = m.count + 1; return m.total; }");
        let chunk = &p.functions[p.function("f").expect("exists")].chunk;
        let gets = chunk
            .ops
            .iter()
            .filter(|op| matches!(op, Op::GetProp(_)))
            .count();
        let sets = chunk
            .ops
            .iter()
            .filter(|op| matches!(op, Op::SetProp(_)))
            .count();
        assert_eq!(gets, 2, "{}", chunk.disassemble());
        assert_eq!(sets, 1, "{}", chunk.disassemble());
        assert!(!chunk
            .ops
            .iter()
            .any(|op| matches!(op, Op::Index | Op::SetIndex)));
        // The property name lives in the constant pool for the IC site.
        for op in &chunk.ops {
            if let Op::GetProp(c) | Op::SetProp(c) = op {
                assert!(matches!(&chunk.consts[*c as usize], Value::Str(_)));
            }
        }
        // Computed indexing stays on the generic path.
        let p = compile_src("fn g(m, k) { return m[k]; }");
        let chunk = &p.functions[p.function("g").expect("exists")].chunk;
        assert!(chunk.ops.iter().any(|op| matches!(op, Op::Index)));
        assert!(!chunk.ops.iter().any(|op| matches!(op, Op::GetProp(_))));
    }

    #[test]
    fn block_scoping_shadows_and_releases() {
        // The inner `x` shadows; after the block the outer `x` is visible.
        let p = compile_src("fn f() { let x = 1; if (true) { let x = 2; print(x); } return x; }");
        assert!(p.function("f").is_some());
    }
}
