//! JIT configuration carried from the platform down to the guest VM.
//!
//! [`JitConfig`] bundles every knob that shapes what a post-JIT snapshot
//! captures: the tiering policy, the code-cache byte budget (compiled
//! functions are evicted LRU-first and demoted back to the interpreter
//! when the budget overflows), and the inline-cache polymorphism limit
//! (how many shapes a property-access site tolerates before going
//! megamorphic). It replaces the bare `Option<JitPolicy>` that used to be
//! threaded through `GuestRuntime::launch` / `VmManager::launch_runtime`.

use crate::vm::JitPolicy;

/// Guest-JIT configuration (policy + code-cache budget + IC limits).
///
/// `#[non_exhaustive]`: construct via [`JitConfig::default`] (or
/// [`JitConfig::new`]) and refine with the `with_*` builders, so adding
/// knobs later is not a breaking change.
///
/// # Examples
///
/// ```
/// use fireworks_lang::{JitConfig, JitPolicy};
///
/// let jit = JitConfig::new()
///     .with_policy(Some(JitPolicy::AnnotatedEager))
///     .with_code_cache_capacity_bytes(1 << 20)
///     .with_ic_poly_limit(2);
/// assert_eq!(jit.policy, Some(JitPolicy::AnnotatedEager));
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitConfig {
    /// Tiering policy. `None` means "use the language-runtime profile's
    /// default policy" (e.g. hot-spot for Node-like, off for Python-like).
    pub policy: Option<JitPolicy>,
    /// Budget for compiled (quickened/optimised) code, in modelled bytes.
    /// When a new compile would overflow it, least-recently-executed
    /// compiled functions are evicted and demoted to the interpreter.
    pub code_cache_capacity_bytes: u64,
    /// Number of distinct shapes an inline-cache site tracks before it
    /// transitions to the megamorphic state (every access a miss).
    pub ic_poly_limit: u8,
    /// Modelled bytes of machine code per compiled bytecode op, used to
    /// cost functions against the cache budget. Runtimes override this
    /// from their profile (`jit_code_bytes_per_op`).
    pub code_bytes_per_op: u64,
}

impl Default for JitConfig {
    fn default() -> JitConfig {
        JitConfig {
            policy: None,
            code_cache_capacity_bytes: 16 << 20,
            ic_poly_limit: 4,
            code_bytes_per_op: 64,
        }
    }
}

impl JitConfig {
    /// Alias for [`JitConfig::default`], reads better in builder chains.
    pub fn new() -> JitConfig {
        JitConfig::default()
    }

    /// Sets the tiering policy (`None` = runtime-profile default).
    pub fn with_policy(mut self, policy: Option<JitPolicy>) -> JitConfig {
        self.policy = policy;
        self
    }

    /// Sets the compiled-code byte budget.
    pub fn with_code_cache_capacity_bytes(mut self, bytes: u64) -> JitConfig {
        self.code_cache_capacity_bytes = bytes;
        self
    }

    /// Sets the inline-cache polymorphism limit (minimum 1).
    pub fn with_ic_poly_limit(mut self, limit: u8) -> JitConfig {
        self.ic_poly_limit = limit.max(1);
        self
    }

    /// Sets the modelled code bytes per compiled op.
    pub fn with_code_bytes_per_op(mut self, bytes: u64) -> JitConfig {
        self.code_bytes_per_op = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_every_knob() {
        let jit = JitConfig::new()
            .with_policy(Some(JitPolicy::Off))
            .with_code_cache_capacity_bytes(4096)
            .with_ic_poly_limit(2)
            .with_code_bytes_per_op(100);
        assert_eq!(jit.policy, Some(JitPolicy::Off));
        assert_eq!(jit.code_cache_capacity_bytes, 4096);
        assert_eq!(jit.ic_poly_limit, 2);
        assert_eq!(jit.code_bytes_per_op, 100);
    }

    #[test]
    fn poly_limit_clamps_to_one() {
        assert_eq!(JitConfig::new().with_ic_poly_limit(0).ic_poly_limit, 1);
    }

    #[test]
    fn default_leaves_policy_to_the_profile() {
        assert_eq!(JitConfig::default().policy, None);
        assert!(JitConfig::default().code_cache_capacity_bytes > 1 << 20);
    }
}
