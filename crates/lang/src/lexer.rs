//! The Flame lexer.

use crate::error::{LangError, Pos};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Identifier.
    Ident(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// Keywords.
    Fn,
    /// `let`.
    Let,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `while`.
    While,
    /// `for`.
    For,
    /// `return`.
    Return,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `@jit` annotation marker.
    AtJit,
    /// Punctuation and operators.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `:`.
    Colon,
    /// `.`.
    Dot,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source position of the first character.
    pub pos: Pos,
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError::Lex {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, LangError> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).expect("digits are UTF-8");
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| self.err(format!("bad float literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| self.err(format!("bad int literal: {e}")))
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind, LangError> {
        self.bump(); // Opening quote.
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    other => {
                        return Err(self.err(format!(
                            "bad escape: \\{}",
                            other.map(|c| c as char).unwrap_or(' ')
                        )))
                    }
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).expect("ident is UTF-8");
        match text {
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "true" => TokenKind::Bool(true),
            "false" => TokenKind::Bool(false),
            "null" => TokenKind::Null,
            _ => TokenKind::Ident(text.to_string()),
        }
    }
}

/// Lexes Flame source into tokens (with a trailing [`TokenKind::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut lx = Lexer {
        src: source.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    loop {
        lx.skip_trivia()?;
        let pos = lx.pos();
        let Some(c) = lx.peek() else {
            tokens.push(Token {
                kind: TokenKind::Eof,
                pos,
            });
            return Ok(tokens);
        };
        let kind = match c {
            b'0'..=b'9' => lx.lex_number()?,
            b'"' => lx.lex_string()?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => lx.lex_ident(),
            b'@' => {
                lx.bump();
                let ident = lx.lex_ident();
                match ident {
                    TokenKind::Ident(name) if name == "jit" => TokenKind::AtJit,
                    _ => return Err(lx.err("unknown annotation (only @jit is supported)")),
                }
            }
            b'(' => {
                lx.bump();
                TokenKind::LParen
            }
            b')' => {
                lx.bump();
                TokenKind::RParen
            }
            b'{' => {
                lx.bump();
                TokenKind::LBrace
            }
            b'}' => {
                lx.bump();
                TokenKind::RBrace
            }
            b'[' => {
                lx.bump();
                TokenKind::LBracket
            }
            b']' => {
                lx.bump();
                TokenKind::RBracket
            }
            b',' => {
                lx.bump();
                TokenKind::Comma
            }
            b';' => {
                lx.bump();
                TokenKind::Semi
            }
            b':' => {
                lx.bump();
                TokenKind::Colon
            }
            b'.' => {
                lx.bump();
                TokenKind::Dot
            }
            b'+' => {
                lx.bump();
                TokenKind::Plus
            }
            b'-' => {
                lx.bump();
                TokenKind::Minus
            }
            b'*' => {
                lx.bump();
                TokenKind::Star
            }
            b'/' => {
                lx.bump();
                TokenKind::Slash
            }
            b'%' => {
                lx.bump();
                TokenKind::Percent
            }
            b'=' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                lx.bump();
                if lx.peek() == Some(b'&') {
                    lx.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(lx.err("expected `&&`"));
                }
            }
            b'|' => {
                lx.bump();
                if lx.peek() == Some(b'|') {
                    lx.bump();
                    TokenKind::OrOr
                } else {
                    return Err(lx.err("expected `||`"));
                }
            }
            other => return Err(lx.err(format!("unexpected character `{}`", other as char))),
        };
        tokens.push(Token { kind, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_numbers_strings_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"42 3.5 "hi\n" foo"#),
            vec![
                Int(42),
                Float(3.5),
                Str("hi\n".into()),
                Ident("foo".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_literals() {
        use TokenKind::*;
        assert_eq!(
            kinds("fn let if else while for return break continue true false null"),
            vec![
                Fn,
                Let,
                If,
                Else,
                While,
                For,
                Return,
                Break,
                Continue,
                Bool(true),
                Bool(false),
                Null,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("== != <= >= < > = + - * / % && || ! . , ; :"),
            vec![
                EqEq, NotEq, Le, Ge, Lt, Gt, Assign, Plus, Minus, Star, Slash, Percent, AndAnd,
                OrOr, Bang, Dot, Comma, Semi, Colon, Eof
            ]
        );
    }

    #[test]
    fn lexes_jit_annotation() {
        assert_eq!(kinds("@jit"), vec![TokenKind::AtJit, TokenKind::Eof]);
        assert!(lex("@foo").is_err());
    }

    #[test]
    fn skips_comments_both_styles() {
        assert_eq!(
            kinds("1 # hash comment\n// slash comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").expect("lexes");
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(lex("\"oops"), Err(LangError::Lex { .. })));
    }

    #[test]
    fn rejects_lone_ampersand() {
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn float_requires_digit_after_dot() {
        use TokenKind::*;
        // `1.` followed by `foo` is Int, Dot, Ident (member access syntax).
        assert_eq!(kinds("1.foo"), vec![Int(1), Dot, Ident("foo".into()), Eof]);
    }
}
