//! NaN-boxed (tagged) value representation for the VM hot loop.
//!
//! The interpreter's operand stack and globals hold [`TaggedValue`]s: a
//! single `u64` word that is either a real IEEE-754 double or a tagged
//! payload packed into the quiet-NaN space. Heap values (array elements,
//! map entries, constant pools) keep the plain [`Value`] enum, so the
//! compact form lives only where the dispatch loop touches it.
//!
//! Encoding: any bit pattern whose top 13 bits are *not* all ones is a
//! plain double. Tagged values set the sign bit, the full exponent, and
//! the quiet bit (`0xFFF8_...`), leaving bits 48..=50 for a tag and the
//! low 48 bits for a payload:
//!
//! | tag | payload |
//! |-----|---------|
//! | 0 (special) | 1 = `null`, 2 = `false`, 3 = `true` |
//! | 1 (int)     | 48-bit two's-complement integer |
//! | 2 (box)     | thin `Rc<Value>` (strings, out-of-range ints) |
//! | 3 (array)   | thin `Rc<RefCell<Vec<Value>>>` |
//! | 4 (map)     | thin `Rc<RefCell<BTreeMap<String, Value>>>` |
//!
//! Guest floats that are NaN are canonicalised to the positive quiet NaN
//! `0x7FF8_0000_0000_0000` on construction so no guest value can collide
//! with the tag space. Negative zero and every finite/infinite double
//! round-trip bit-exactly.
#![allow(unsafe_code)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

use crate::value::Value;

/// Low 48 bits: payload (small int, special code, or thin pointer).
const PAYLOAD_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;
/// Sign + all-ones exponent + quiet bit: the base of the tag space.
const BOXED_BASE: u64 = 0xFFF8_0000_0000_0000;
/// The canonical (positive, quiet) NaN guest floats collapse to.
const CANONICAL_NAN: u64 = 0x7FF8_0000_0000_0000;

const TAG_SPECIAL: u64 = 0;
const TAG_INT: u64 = 1;
const TAG_BOX: u64 = 2;
const TAG_ARR: u64 = 3;
const TAG_MAP: u64 = 4;

const SPECIAL_NULL: u64 = 1;
const SPECIAL_FALSE: u64 = 2;
const SPECIAL_TRUE: u64 = 3;

const fn encode(tag: u64, payload: u64) -> u64 {
    BOXED_BASE | (tag << 48) | payload
}

/// Smallest integer that fits the inline 48-bit payload.
pub const MIN_INLINE_INT: i64 = -(1 << 47);
/// Largest integer that fits the inline 48-bit payload.
pub const MAX_INLINE_INT: i64 = (1 << 47) - 1;

/// A Flame value packed into one 64-bit word (see module docs).
///
/// Owns one `Rc` strong reference for the pointer tags; `Clone` and
/// `Drop` adjust the count accordingly. Not `Send`/`Sync` (it aliases
/// `Rc` state), which the `PhantomData<Rc<()>>` marker enforces.
pub struct TaggedValue(u64, PhantomData<Rc<()>>);

impl TaggedValue {
    /// The `null` value.
    #[inline]
    pub const fn null() -> TaggedValue {
        TaggedValue(encode(TAG_SPECIAL, SPECIAL_NULL), PhantomData)
    }

    /// A boolean.
    #[inline]
    pub const fn bool(b: bool) -> TaggedValue {
        let payload = if b { SPECIAL_TRUE } else { SPECIAL_FALSE };
        TaggedValue(encode(TAG_SPECIAL, payload), PhantomData)
    }

    /// An integer: inline when it fits 48 bits, boxed otherwise.
    #[inline]
    pub fn int(v: i64) -> TaggedValue {
        if ((v << 16) >> 16) == v {
            TaggedValue(encode(TAG_INT, (v as u64) & PAYLOAD_MASK), PhantomData)
        } else {
            TaggedValue::box_value(Value::Int(v))
        }
    }

    /// A float. NaNs are canonicalised so they cannot alias the tag space.
    #[inline]
    pub fn float(v: f64) -> TaggedValue {
        let bits = if v.is_nan() {
            CANONICAL_NAN
        } else {
            v.to_bits()
        };
        TaggedValue(bits, PhantomData)
    }

    fn box_value(v: Value) -> TaggedValue {
        let ptr = Rc::into_raw(Rc::new(v)) as u64;
        debug_assert_eq!(ptr & !PAYLOAD_MASK, 0, "pointer exceeds 48 bits");
        TaggedValue(encode(TAG_BOX, ptr), PhantomData)
    }

    /// Converts from the enum representation, consuming it. Heap
    /// references (arrays, maps) transfer their `Rc` without cloning
    /// contents, so aliasing is preserved exactly.
    pub fn from_value(v: Value) -> TaggedValue {
        match v {
            Value::Null => TaggedValue::null(),
            Value::Bool(b) => TaggedValue::bool(b),
            Value::Int(i) => TaggedValue::int(i),
            Value::Float(f) => TaggedValue::float(f),
            s @ Value::Str(_) => TaggedValue::box_value(s),
            Value::Array(rc) => {
                let ptr = Rc::into_raw(rc) as u64;
                debug_assert_eq!(ptr & !PAYLOAD_MASK, 0, "pointer exceeds 48 bits");
                TaggedValue(encode(TAG_ARR, ptr), PhantomData)
            }
            Value::Map(rc) => {
                let ptr = Rc::into_raw(rc) as u64;
                debug_assert_eq!(ptr & !PAYLOAD_MASK, 0, "pointer exceeds 48 bits");
                TaggedValue(encode(TAG_MAP, ptr), PhantomData)
            }
        }
    }

    #[inline]
    fn tag(&self) -> u64 {
        (self.0 >> 48) & 0x7
    }

    #[inline]
    fn payload(&self) -> u64 {
        self.0 & PAYLOAD_MASK
    }

    /// True when the word is a plain double (not in the tag space).
    #[inline]
    pub fn is_float(&self) -> bool {
        (self.0 & BOXED_BASE) != BOXED_BASE
    }

    /// The double, if this is a float.
    #[inline]
    pub fn as_float(&self) -> Option<f64> {
        if self.is_float() {
            Some(f64::from_bits(self.0))
        } else {
            None
        }
    }

    /// The integer, if this is an (inline or boxed) int.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        if !self.is_float() {
            if self.tag() == TAG_INT {
                return Some(((self.0 << 16) as i64) >> 16);
            }
            if self.tag() == TAG_BOX {
                if let Value::Int(i) = unsafe { &*(self.payload() as *const Value) } {
                    return Some(*i);
                }
            }
        }
        None
    }

    /// The string contents, if this is a (boxed) string.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        if !self.is_float() && self.tag() == TAG_BOX {
            if let Value::Str(s) = unsafe { &*(self.payload() as *const Value) } {
                return Some(s);
            }
        }
        None
    }

    /// Whether this is an array reference.
    #[inline]
    pub fn is_array(&self) -> bool {
        !self.is_float() && self.tag() == TAG_ARR
    }

    /// Whether this is a map reference.
    #[inline]
    pub fn is_map(&self) -> bool {
        !self.is_float() && self.tag() == TAG_MAP
    }

    /// Numeric view: ints widened to f64, floats as-is.
    #[inline]
    pub fn as_num(&self) -> Option<f64> {
        if let Some(f) = self.as_float() {
            Some(f)
        } else {
            self.as_int().map(|i| i as f64)
        }
    }

    /// Same truthiness rules as [`Value::truthy`].
    pub fn truthy(&self) -> bool {
        if self.is_float() {
            return f64::from_bits(self.0) != 0.0;
        }
        match self.tag() {
            TAG_SPECIAL => self.payload() == SPECIAL_TRUE,
            TAG_INT => self.payload() != 0,
            TAG_BOX => unsafe { &*(self.payload() as *const Value) }.truthy(),
            _ => true, // arrays and maps are always truthy
        }
    }

    /// The type name used in error messages, matching [`Value::type_name`].
    pub fn type_name(&self) -> &'static str {
        if self.is_float() {
            return "float";
        }
        match self.tag() {
            TAG_SPECIAL => {
                if self.payload() == SPECIAL_NULL {
                    "null"
                } else {
                    "bool"
                }
            }
            TAG_INT => "int",
            TAG_BOX => unsafe { &*(self.payload() as *const Value) }.type_name(),
            TAG_ARR => "array",
            _ => "map",
        }
    }

    /// Converts to the enum representation without consuming; heap tags
    /// clone the `Rc` handle (count bump), never the contents.
    pub fn to_value(&self) -> Value {
        if self.is_float() {
            return Value::Float(f64::from_bits(self.0));
        }
        match self.tag() {
            TAG_SPECIAL => match self.payload() {
                SPECIAL_NULL => Value::Null,
                SPECIAL_FALSE => Value::Bool(false),
                _ => Value::Bool(true),
            },
            TAG_INT => Value::Int(((self.0 << 16) as i64) >> 16),
            TAG_BOX => {
                let ptr = self.payload() as *const Value;
                unsafe { &*ptr }.clone()
            }
            TAG_ARR => {
                let ptr = self.payload() as *const RefCell<Vec<Value>>;
                unsafe {
                    Rc::increment_strong_count(ptr);
                    Value::Array(Rc::from_raw(ptr))
                }
            }
            _ => {
                let ptr = self.payload() as *const RefCell<BTreeMap<String, Value>>;
                unsafe {
                    Rc::increment_strong_count(ptr);
                    Value::Map(Rc::from_raw(ptr))
                }
            }
        }
    }

    /// Converts to the enum representation, transferring ownership of the
    /// `Rc` strong reference held by this word (no count change).
    pub fn into_value(self) -> Value {
        let bits = self.0;
        std::mem::forget(self);
        let this = TaggedValue(bits, PhantomData);
        if !this.is_float() {
            match this.tag() {
                TAG_BOX => {
                    let rc = unsafe { Rc::from_raw(this.payload() as *const Value) };
                    std::mem::forget(this);
                    return match Rc::try_unwrap(rc) {
                        Ok(v) => v,
                        Err(rc) => (*rc).clone(),
                    };
                }
                TAG_ARR => {
                    let rc = unsafe { Rc::from_raw(this.payload() as *const RefCell<Vec<Value>>) };
                    std::mem::forget(this);
                    return Value::Array(rc);
                }
                TAG_MAP => {
                    let rc = unsafe {
                        Rc::from_raw(this.payload() as *const RefCell<BTreeMap<String, Value>>)
                    };
                    std::mem::forget(this);
                    return Value::Map(rc);
                }
                _ => {}
            }
        }
        let v = this.to_value();
        std::mem::forget(this);
        v
    }
}

impl From<Value> for TaggedValue {
    fn from(v: Value) -> TaggedValue {
        TaggedValue::from_value(v)
    }
}

impl From<TaggedValue> for Value {
    fn from(v: TaggedValue) -> Value {
        v.into_value()
    }
}

impl Clone for TaggedValue {
    fn clone(&self) -> TaggedValue {
        if !self.is_float() {
            let ptr = self.payload();
            unsafe {
                match self.tag() {
                    TAG_BOX => Rc::increment_strong_count(ptr as *const Value),
                    TAG_ARR => Rc::increment_strong_count(ptr as *const RefCell<Vec<Value>>),
                    TAG_MAP => {
                        Rc::increment_strong_count(ptr as *const RefCell<BTreeMap<String, Value>>)
                    }
                    _ => {}
                }
            }
        }
        TaggedValue(self.0, PhantomData)
    }
}

impl Drop for TaggedValue {
    fn drop(&mut self) {
        if !self.is_float() {
            let ptr = self.payload();
            unsafe {
                match self.tag() {
                    TAG_BOX => drop(Rc::from_raw(ptr as *const Value)),
                    TAG_ARR => drop(Rc::from_raw(ptr as *const RefCell<Vec<Value>>)),
                    TAG_MAP => drop(Rc::from_raw(ptr as *const RefCell<BTreeMap<String, Value>>)),
                    _ => {}
                }
            }
        }
    }
}

impl Default for TaggedValue {
    fn default() -> TaggedValue {
        TaggedValue::null()
    }
}

impl PartialEq for TaggedValue {
    /// Structural equality, same semantics as [`Value::eq_value`].
    fn eq(&self, other: &TaggedValue) -> bool {
        // Identical non-NaN bit patterns are equal without conversion
        // (covers null/bool/inline ints and pointer-identical heaps).
        if self.0 == other.0 && !(self.is_float() && f64::from_bits(self.0).is_nan()) {
            return true;
        }
        self.to_value().eq_value(&other.to_value())
    }
}

impl fmt::Debug for TaggedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tagged({:?})", self.to_value())
    }
}

impl fmt::Display for TaggedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(42),
            Value::Float(1.5),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::str("hello"),
        ] {
            let t = TaggedValue::from_value(v.clone());
            assert!(t.to_value().eq_value(&v), "{v:?}");
            assert_eq!(t.type_name(), v.type_name(), "{v:?}");
            assert_eq!(t.truthy(), v.truthy(), "{v:?}");
        }
    }

    #[test]
    fn negative_zero_is_bit_exact() {
        let t = TaggedValue::float(-0.0);
        let Value::Float(f) = t.to_value() else {
            panic!("expected float");
        };
        assert_eq!(f.to_bits(), (-0.0f64).to_bits());
        assert!(!t.truthy(), "-0.0 is falsy");
    }

    #[test]
    fn nan_is_canonicalised_not_misread() {
        // A hostile NaN whose payload collides with the tag space must
        // not decode as a pointer.
        let evil = f64::from_bits(0xFFF9_DEAD_BEEF_0000);
        assert!(evil.is_nan());
        let t = TaggedValue::float(evil);
        let Value::Float(f) = t.to_value() else {
            panic!("expected float");
        };
        assert!(f.is_nan());
        assert_eq!(f.to_bits(), CANONICAL_NAN);
    }

    #[test]
    fn inline_int_boundaries() {
        for v in [
            MIN_INLINE_INT,
            MIN_INLINE_INT + 1,
            MAX_INLINE_INT,
            MAX_INLINE_INT - 1,
            0,
            -1,
        ] {
            let t = TaggedValue::int(v);
            assert_eq!(t.as_int(), Some(v));
            assert_eq!(t.to_value(), Value::Int(v));
        }
    }

    #[test]
    fn out_of_range_ints_box_and_still_read_as_ints() {
        for v in [MIN_INLINE_INT - 1, MAX_INLINE_INT + 1, i64::MIN, i64::MAX] {
            let t = TaggedValue::int(v);
            assert_eq!(t.as_int(), Some(v), "boxed int must unbox via as_int");
            assert_eq!(t.to_value(), Value::Int(v));
            assert_eq!(t.type_name(), "int");
        }
    }

    #[test]
    fn heap_tags_preserve_aliasing_and_refcounts() {
        let arr = Value::array(vec![Value::Int(1)]);
        let Value::Array(rc) = &arr else {
            panic!("expected array")
        };
        assert_eq!(Rc::strong_count(rc), 1);
        let t = TaggedValue::from_value(arr.clone());
        assert_eq!(Rc::strong_count(rc), 2);
        let t2 = t.clone();
        assert_eq!(Rc::strong_count(rc), 3);
        // Mutations through the tagged handle are visible via the original.
        if let Value::Array(back) = t2.to_value() {
            back.borrow_mut().push(Value::Int(2));
        }
        assert_eq!(rc.borrow().len(), 2);
        drop(t);
        drop(t2);
        assert_eq!(Rc::strong_count(rc), 1);
    }

    #[test]
    fn into_value_transfers_ownership_without_leak() {
        let m = Value::map([("k".to_string(), Value::Int(7))]);
        let Value::Map(rc) = &m else {
            panic!("expected map")
        };
        let t = TaggedValue::from_value(m.clone());
        assert_eq!(Rc::strong_count(rc), 2);
        let back = t.into_value();
        assert_eq!(Rc::strong_count(rc), 2);
        let Value::Map(rc2) = &back else {
            panic!("expected map")
        };
        assert!(Rc::ptr_eq(rc, rc2));
        drop(back);
        assert_eq!(Rc::strong_count(rc), 1);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(TaggedValue::int(3).as_num(), Some(3.0));
        assert_eq!(TaggedValue::float(2.5).as_num(), Some(2.5));
        assert_eq!(TaggedValue::float(2.5).as_int(), None);
        assert_eq!(TaggedValue::null().as_num(), None);
        assert_eq!(TaggedValue::bool(true).as_num(), None);
    }

    #[test]
    fn equality_matches_value_semantics() {
        assert_eq!(TaggedValue::int(3), TaggedValue::float(3.0));
        assert_ne!(
            TaggedValue::float(f64::NAN),
            TaggedValue::float(f64::NAN),
            "NaN != NaN"
        );
        let a = TaggedValue::from_value(Value::str("abc"));
        let b = TaggedValue::from_value(Value::str("abc"));
        assert_eq!(a, b);
    }
}
