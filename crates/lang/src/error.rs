//! Error types for every stage of the Flame pipeline.

use std::fmt;

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced while lexing, parsing, compiling, or running Flame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error (bad character, unterminated string, ...).
    Lex {
        /// Where the error occurred.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Where the error occurred.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// Semantic/compile error (unknown variable, duplicate function, ...).
    Compile {
        /// What went wrong.
        message: String,
    },
    /// Runtime error (type error, missing key, arity mismatch, ...).
    Runtime {
        /// What went wrong.
        message: String,
    },
    /// The execution budget (fuel) was exhausted — the serverless
    /// platform's invocation timeout.
    Timeout {
        /// Ops retired before the budget ran out.
        ops: u64,
    },
}

impl LangError {
    /// Builds a runtime error from a message.
    pub fn runtime(message: impl Into<String>) -> Self {
        LangError::Runtime {
            message: message.into(),
        }
    }

    /// Builds a compile error from a message.
    pub fn compile(message: impl Into<String>) -> Self {
        LangError::Compile {
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::Compile { message } => write!(f, "compile error: {message}"),
            LangError::Runtime { message } => write!(f, "runtime error: {message}"),
            LangError::Timeout { ops } => {
                write!(f, "execution budget exhausted after {ops} ops")
            }
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_position() {
        let e = LangError::Lex {
            pos: Pos { line: 3, col: 7 },
            message: "bad char".into(),
        };
        assert_eq!(e.to_string(), "lex error at 3:7: bad char");
        assert_eq!(
            LangError::runtime("boom").to_string(),
            "runtime error: boom"
        );
    }
}
