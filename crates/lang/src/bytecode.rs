//! Stack bytecode for the Flame VM.
//!
//! The instruction set has *generic* ops (emitted by the compiler) and
//! *quickened* ops (emitted by the JIT from type feedback). Quickening is
//! 1:1 — a quickened function body has exactly one op per original op, at
//! the same index — so jump targets stay valid and a failed type guard can
//! deoptimise by re-dispatching the same index in the generic code.

use std::fmt;

use crate::value::Value;

/// Built-in pure functions executed directly by the VM.
///
/// I/O-flavoured calls (file, network, database, message bus) are *not*
/// builtins: they compile to [`Op::CallHost`] and are served by the
/// embedding [`crate::vm::Host`], which is where sandbox I/O-path costs are
/// charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `len(x)` — length of a string, array, or map.
    Len,
    /// `push(arr, v)` — appends to an array, returns the array.
    Push,
    /// `pop(arr)` — removes and returns the last element.
    Pop,
    /// `keys(map)` — array of keys in deterministic order.
    Keys,
    /// `has(map, key)` / `has(arr, value)` — membership test.
    Has,
    /// `remove(map, key)` — removes a key, returns the removed value.
    Remove,
    /// `str(x)` — string conversion.
    Str,
    /// `int(x)` — integer conversion.
    Int,
    /// `float(x)` — float conversion.
    Float,
    /// `floor(x)`.
    Floor,
    /// `sqrt(x)`.
    Sqrt,
    /// `abs(x)`.
    Abs,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// `split(s, sep)`.
    Split,
    /// `join(arr, sep)`.
    Join,
    /// `substr(s, start, len)`.
    Substr,
    /// `type(x)` — type name as a string.
    Type,
    /// `print(x)` — writes to the host's stdout.
    Print,
}

impl Builtin {
    /// Looks up a builtin by its source-level name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "len" => Builtin::Len,
            "push" => Builtin::Push,
            "pop" => Builtin::Pop,
            "keys" => Builtin::Keys,
            "has" => Builtin::Has,
            "remove" => Builtin::Remove,
            "str" => Builtin::Str,
            "int" => Builtin::Int,
            "float" => Builtin::Float,
            "floor" => Builtin::Floor,
            "sqrt" => Builtin::Sqrt,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "split" => Builtin::Split,
            "join" => Builtin::Join,
            "substr" => Builtin::Substr,
            "type" => Builtin::Type,
            "print" => Builtin::Print,
            _ => return None,
        })
    }
}

/// One VM instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push constant `consts[i]`.
    Const(u16),
    /// Push local slot `i`.
    LoadLocal(u16),
    /// Pop into local slot `i`.
    StoreLocal(u16),
    /// Push global variable `globals[i]` (module-level binding).
    LoadGlobal(u16),
    /// Pop into global variable `globals[i]`.
    StoreGlobal(u16),

    /// Generic arithmetic / comparison (dynamic dispatch on operand types).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Mod,
    /// Numeric negation.
    Neg,
    /// Boolean not (truthiness).
    Not,
    /// Structural equality.
    Eq,
    /// Structural inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,

    /// Unconditional jump to absolute index.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// Jump when top-of-stack is falsy, keeping it (for `&&`).
    JumpIfFalsePeek(u32),
    /// Jump when top-of-stack is truthy, keeping it (for `||`).
    JumpIfTruePeek(u32),

    /// Call program function `i` with `argc` arguments.
    Call {
        /// Function table index.
        func: u16,
        /// Argument count.
        argc: u8,
    },
    /// Call pure builtin with `argc` arguments.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Argument count.
        argc: u8,
    },
    /// Call the embedding host: `consts[name]` is the call name.
    CallHost {
        /// Constant-pool index of the host-call name.
        name: u16,
        /// Argument count.
        argc: u8,
    },
    /// The Fireworks snapshot point: pushes `null` as its result and
    /// suspends the VM.
    Snapshot,
    /// Return from the current frame (value on top of stack).
    Return,
    /// Discard top of stack.
    Pop,
    /// Build an array from the top `n` stack values.
    MakeArray(u16),
    /// Build a map from the top `2n` stack values (key/value pairs).
    MakeMap(u16),
    /// Generic index load: `base[index]`.
    Index,
    /// Generic index store: stack is `base, index, value`.
    SetIndex,
    /// Property load `base.name` (`consts[i]` is the property name).
    /// Runs through the per-site inline cache: the base map's shape is
    /// matched against the site's mono/poly shape list, and a shape miss
    /// in compiled code deoptimises the function.
    GetProp(u16),
    /// Property store `base.name = v`; stack is `base, value`.
    /// Shares the inline-cache machinery with [`Op::GetProp`].
    SetProp(u16),

    // ---- Quickened (JIT) ops: type-specialised with guards. -------------
    /// `int + int` with guard.
    AddII,
    /// `int - int` with guard.
    SubII,
    /// `int * int` with guard.
    MulII,
    /// `int % int` with guard.
    ModII,
    /// `int / int` with guard.
    DivII,
    /// `float + float` (accepts int operands by promotion) with guard.
    AddFF,
    /// `float - float` with guard.
    SubFF,
    /// `float * float` with guard.
    MulFF,
    /// `float / float` with guard.
    DivFF,
    /// `int < int` with guard.
    LtII,
    /// `int <= int` with guard.
    LeII,
    /// `int > int` with guard.
    GtII,
    /// `int >= int` with guard.
    GeII,
    /// String concatenation with guard.
    AddSS,
    /// `array[int]` load with guard.
    IndexArrI,
    /// `map[str]` load with guard.
    IndexMapS,
    /// `array[int] = v` store with guard.
    SetIndexArrI,
}

impl Op {
    /// Whether this op is a quickened (JIT-specialised) instruction.
    pub fn is_quickened(&self) -> bool {
        matches!(
            self,
            Op::AddII
                | Op::SubII
                | Op::MulII
                | Op::ModII
                | Op::DivII
                | Op::AddFF
                | Op::SubFF
                | Op::MulFF
                | Op::DivFF
                | Op::LtII
                | Op::LeII
                | Op::GtII
                | Op::GeII
                | Op::AddSS
                | Op::IndexArrI
                | Op::IndexMapS
                | Op::SetIndexArrI
        )
    }
}

/// The compiled body of one function.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Function name (for errors and disassembly).
    pub name: String,
    /// Number of parameters.
    pub arity: u8,
    /// Number of local slots (parameters included).
    pub n_locals: u16,
    /// Instructions.
    pub ops: Vec<Op>,
    /// Constant pool.
    pub consts: Vec<Value>,
}

impl Chunk {
    /// Renders a human-readable disassembly.
    pub fn disassemble(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fn {}/{} ({} locals, {} ops)",
            self.name,
            self.arity,
            self.n_locals,
            self.ops.len()
        );
        for (i, op) in self.ops.iter().enumerate() {
            let detail = match op {
                Op::Const(c) | Op::CallHost { name: c, .. } | Op::GetProp(c) | Op::SetProp(c) => {
                    format!("  ; {}", self.consts[*c as usize])
                }
                _ => String::new(),
            };
            let _ = writeln!(out, "  {i:4}: {op:?}{detail}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup_round_trips() {
        for (name, b) in [
            ("len", Builtin::Len),
            ("sqrt", Builtin::Sqrt),
            ("print", Builtin::Print),
            ("substr", Builtin::Substr),
        ] {
            assert_eq!(Builtin::from_name(name), Some(b));
        }
        assert_eq!(Builtin::from_name("io_read"), None);
        assert_eq!(Builtin::from_name("nonsense"), None);
    }

    #[test]
    fn quickened_classification() {
        assert!(Op::AddII.is_quickened());
        assert!(Op::IndexArrI.is_quickened());
        assert!(!Op::Add.is_quickened());
        assert!(!Op::Snapshot.is_quickened());
    }

    #[test]
    fn disassembly_includes_consts() {
        let chunk = Chunk {
            name: "f".into(),
            arity: 0,
            n_locals: 1,
            ops: vec![Op::Const(0), Op::Return],
            consts: vec![Value::Int(42)],
        };
        let text = chunk.disassemble();
        assert!(text.contains("Const(0)"));
        assert!(text.contains("; 42"));
    }
}
