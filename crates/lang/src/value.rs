//! Flame runtime values.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

/// A Flame value.
///
/// Arrays and maps are reference types (`Rc<RefCell<..>>`), matching the
/// aliasing semantics of JavaScript objects and Python lists/dicts. Maps
/// use a `BTreeMap` so iteration order (and thus simulation output) is
/// deterministic.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Mutable array.
    Array(Rc<RefCell<Vec<Value>>>),
    /// Mutable string-keyed map.
    Map(Rc<RefCell<BTreeMap<String, Value>>>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Builds an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// Builds a map value.
    pub fn map(entries: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Map(Rc::new(RefCell::new(entries.into_iter().collect())))
    }

    /// Truthiness: `null`, `false`, `0`, `0.0`, and `""` are falsy;
    /// everything else (including empty containers) is truthy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Array(_) | Value::Map(_) => true,
        }
    }

    /// The type name used in error messages and type feedback.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
        }
    }

    /// Structural equality (`==` in Flame). Numbers compare across
    /// int/float; containers compare by contents.
    pub fn eq_value(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.eq_value(y))
            }
            (Value::Map(a), Value::Map(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.eq_value(vb))
            }
            _ => false,
        }
    }

    /// Deep-clones a value, preserving aliasing: if the same array/map
    /// occurs twice in the input graph, the output contains one clone
    /// referenced twice. Used by VM snapshots so restored clones share no
    /// mutable state with the original.
    ///
    /// Cyclic structures are handled via the identity map.
    pub fn deep_clone(&self) -> Value {
        let mut seen: HashMap<usize, Value> = HashMap::new();
        self.deep_clone_inner(&mut seen)
    }

    fn deep_clone_inner(&self, seen: &mut HashMap<usize, Value>) -> Value {
        match self {
            Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Str(_) => {
                self.clone()
            }
            Value::Array(rc) => {
                let key = Rc::as_ptr(rc) as usize;
                if let Some(existing) = seen.get(&key) {
                    return existing.clone();
                }
                let new_rc = Rc::new(RefCell::new(Vec::new()));
                seen.insert(key, Value::Array(new_rc.clone()));
                let cloned: Vec<Value> = rc
                    .borrow()
                    .iter()
                    .map(|v| v.deep_clone_inner(seen))
                    .collect();
                *new_rc.borrow_mut() = cloned;
                Value::Array(new_rc)
            }
            Value::Map(rc) => {
                let key = Rc::as_ptr(rc) as usize;
                if let Some(existing) = seen.get(&key) {
                    return existing.clone();
                }
                let new_rc = Rc::new(RefCell::new(BTreeMap::new()));
                seen.insert(key, Value::Map(new_rc.clone()));
                let cloned: BTreeMap<String, Value> = rc
                    .borrow()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.deep_clone_inner(seen)))
                    .collect();
                *new_rc.borrow_mut() = cloned;
                Value::Map(new_rc)
            }
        }
    }

    /// A rough heap-size estimate in bytes, used by the runtime memory
    /// model to size the execution-state region.
    pub fn heap_estimate(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) => 16,
            Value::Str(s) => 24 + s.len(),
            Value::Array(a) => 32 + a.borrow().iter().map(Value::heap_estimate).sum::<usize>(),
            Value::Map(m) => {
                48 + m
                    .borrow()
                    .iter()
                    .map(|(k, v)| 24 + k.len() + v.heap_estimate())
                    .sum::<usize>()
            }
        }
    }
}

impl PartialEq for Value {
    /// Structural equality, same as [`Value::eq_value`].
    fn eq(&self, other: &Value) -> bool {
        self.eq_value(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_dynamic_languages() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::Int(-1).truthy());
        assert!(Value::array(vec![]).truthy());
        assert!(Value::map([]).truthy());
    }

    #[test]
    fn equality_is_structural_and_numeric_cross_type() {
        assert!(Value::Int(3).eq_value(&Value::Float(3.0)));
        assert!(!Value::Int(3).eq_value(&Value::str("3")));
        let a = Value::array(vec![Value::Int(1), Value::str("x")]);
        let b = Value::array(vec![Value::Int(1), Value::str("x")]);
        assert!(a.eq_value(&b));
        let m1 = Value::map([("k".to_string(), Value::Int(1))]);
        let m2 = Value::map([("k".to_string(), Value::Int(1))]);
        assert!(m1.eq_value(&m2));
    }

    #[test]
    fn deep_clone_severs_aliasing_with_original() {
        let inner = Value::array(vec![Value::Int(1)]);
        let outer = Value::array(vec![inner.clone(), inner.clone()]);
        let cloned = outer.deep_clone();
        // Mutate the original inner array.
        if let Value::Array(rc) = &inner {
            rc.borrow_mut().push(Value::Int(2));
        }
        // The clone must not see the mutation.
        if let Value::Array(rc) = &cloned {
            let items = rc.borrow();
            if let Value::Array(first) = &items[0] {
                assert_eq!(first.borrow().len(), 1);
            } else {
                panic!("expected array");
            }
        } else {
            panic!("expected array");
        }
    }

    #[test]
    fn deep_clone_preserves_internal_aliasing() {
        let shared = Value::array(vec![Value::Int(7)]);
        let outer = Value::array(vec![shared.clone(), shared.clone()]);
        let cloned = outer.deep_clone();
        let Value::Array(rc) = &cloned else {
            panic!("expected array")
        };
        let items = rc.borrow();
        let (Value::Array(a), Value::Array(b)) = (&items[0], &items[1]) else {
            panic!("expected arrays")
        };
        assert!(Rc::ptr_eq(a, b), "shared substructure must stay shared");
    }

    #[test]
    fn deep_clone_handles_cycles() {
        let arr = Rc::new(RefCell::new(vec![Value::Int(1)]));
        arr.borrow_mut().push(Value::Array(arr.clone()));
        let v = Value::Array(arr);
        let cloned = v.deep_clone();
        let Value::Array(rc) = &cloned else {
            panic!("expected array")
        };
        let items = rc.borrow();
        let Value::Array(inner) = &items[1] else {
            panic!("expected array")
        };
        assert!(Rc::ptr_eq(rc, inner), "cycle must be reproduced");
    }

    #[test]
    fn display_formats_containers() {
        let v = Value::array(vec![
            Value::Int(1),
            Value::str("a"),
            Value::map([("k".to_string(), Value::Float(2.0))]),
        ]);
        assert_eq!(v.to_string(), "[1, a, {k: 2.0}]");
    }

    #[test]
    fn heap_estimate_grows_with_contents() {
        let small = Value::array(vec![Value::Int(1)]);
        let big = Value::array(vec![Value::str("x".repeat(1000))]);
        assert!(big.heap_estimate() > small.heap_estimate() + 900);
    }
}
