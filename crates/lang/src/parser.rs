//! Recursive-descent parser for Flame.

use crate::ast::{BinOp, Expr, FnDecl, Item, Stmt, Target, UnOp};
use crate::error::{LangError, Pos};
use crate::lexer::{Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.i].kind.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> LangError {
        LangError::Parse {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), LangError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    // ---- items ----------------------------------------------------------

    fn items(&mut self) -> Result<Vec<Item>, LangError> {
        let mut items = Vec::new();
        while *self.peek() != TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(items)
    }

    fn item(&mut self) -> Result<Item, LangError> {
        let jit_hint = self.eat(&TokenKind::AtJit);
        if *self.peek() == TokenKind::Fn {
            return Ok(Item::Fn(self.fn_decl(jit_hint)?));
        }
        if jit_hint {
            return Err(self.err("@jit must precede a function declaration"));
        }
        Ok(Item::Stmt(self.stmt()?))
    }

    fn fn_decl(&mut self, jit_hint: bool) -> Result<FnDecl, LangError> {
        self.expect(&TokenKind::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.ident("parameter name")?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma, "`,`")?;
            }
        }
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            body,
            jit_hint,
        })
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.err("unclosed block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek() {
            TokenKind::Let => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(&TokenKind::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Let { name, value })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                self.bump();
                if self.eat(&TokenKind::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi, "`;`")?;
                    Ok(Stmt::Return(Some(value)))
                }
            }
            TokenKind::Break => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Break)
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let stmt = self.simple_stmt()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(stmt)
            }
        }
    }

    /// An expression or assignment statement, without the trailing `;`
    /// (shared by regular statements and `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, LangError> {
        let expr = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let value = self.expr()?;
            let target = match expr {
                Expr::Var(name) => Target::Var(name),
                Expr::Index { base, index } => Target::Index {
                    base: *base,
                    index: *index,
                },
                _ => return Err(self.err("invalid assignment target")),
            };
            Ok(Stmt::Assign { target, value })
        } else {
            Ok(Stmt::Expr(expr))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect(&TokenKind::If, "`if`")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let then_body = self.block()?;
        let else_body = if self.eat(&TokenKind::Else) {
            if *self.peek() == TokenKind::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect(&TokenKind::For, "`for`")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let init = if *self.peek() == TokenKind::Let {
            self.bump();
            let name = self.ident("variable name")?;
            self.expect(&TokenKind::Assign, "`=`")?;
            let value = self.expr()?;
            Stmt::Let { name, value }
        } else {
            self.simple_stmt()?
        };
        self.expect(&TokenKind::Semi, "`;`")?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Semi, "`;`")?;
        let step = self.simple_stmt()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let body = self.block()?;
        Ok(Stmt::For {
            init: Box::new(init),
            cond,
            step: Box::new(step),
            body,
        })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.equality()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.comparison()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.comparison()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn comparison(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn term(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn factor(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(self.unary()?),
                })
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(self.unary()?),
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket, "`]`")?;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                TokenKind::Dot => {
                    self.bump();
                    let field = self.ident("field name")?;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(Expr::Str(field)),
                    };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Float(v) => Ok(Expr::Float(v)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Bool(b) => Ok(Expr::Bool(b)),
            TokenKind::Null => Ok(Expr::Null),
            TokenKind::Ident(name) => {
                if *self.peek() == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(&TokenKind::Comma, "`,`")?;
                        }
                    }
                    Ok(Expr::Call { callee: name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if self.eat(&TokenKind::RBracket) {
                            break;
                        }
                        self.expect(&TokenKind::Comma, "`,`")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            TokenKind::LBrace => {
                let mut entries = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        let key = match self.bump() {
                            TokenKind::Str(s) => s,
                            TokenKind::Ident(s) => s,
                            other => {
                                return Err(self.err(format!("expected map key, found {other:?}")))
                            }
                        };
                        self.expect(&TokenKind::Colon, "`:`")?;
                        let value = self.expr()?;
                        entries.push((key, value));
                        if self.eat(&TokenKind::RBrace) {
                            break;
                        }
                        self.expect(&TokenKind::Comma, "`,`")?;
                    }
                }
                Ok(Expr::Map(entries))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a token stream into top-level items.
pub fn parse(tokens: Vec<Token>) -> Result<Vec<Item>, LangError> {
    assert!(
        matches!(tokens.last(), Some(t) if t.kind == TokenKind::Eof),
        "token stream must end with Eof"
    );
    let mut p = Parser { tokens, i: 0 };
    p.items()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Vec<Item> {
        parse(lex(src).expect("lexes")).expect("parses")
    }

    #[test]
    fn parses_function_with_params() {
        let items = parse_src("fn add(a, b) { return a + b; }");
        let Item::Fn(f) = &items[0] else {
            panic!("expected fn")
        };
        assert_eq!(f.name, "add");
        assert_eq!(f.params, vec!["a", "b"]);
        assert!(!f.jit_hint);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_jit_annotation() {
        let items = parse_src("@jit fn hot() { return 1; }");
        let Item::Fn(f) = &items[0] else {
            panic!("expected fn")
        };
        assert!(f.jit_hint);
    }

    #[test]
    fn jit_annotation_requires_fn() {
        let toks = lex("@jit let x = 1;").expect("lexes");
        assert!(parse(toks).is_err());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let items = parse_src("let x = 1 + 2 * 3;");
        let Item::Stmt(Stmt::Let { value, .. }) = &items[0] else {
            panic!("expected let")
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("expected add at top, got {value:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_binds_looser_than_arithmetic() {
        let items = parse_src("let x = a + 1 < b * 2;");
        let Item::Stmt(Stmt::Let { value, .. }) = &items[0] else {
            panic!("expected let")
        };
        assert!(matches!(value, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn logical_operators_short_circuit_shape() {
        let items = parse_src("let x = a && b || c;");
        let Item::Stmt(Stmt::Let { value, .. }) = &items[0] else {
            panic!("expected let")
        };
        assert!(matches!(value, Expr::Or(..)));
    }

    #[test]
    fn member_access_desugars_to_index() {
        let items = parse_src("let x = obj.field;");
        let Item::Stmt(Stmt::Let { value, .. }) = &items[0] else {
            panic!("expected let")
        };
        let Expr::Index { index, .. } = value else {
            panic!("expected index")
        };
        assert_eq!(**index, Expr::Str("field".into()));
    }

    #[test]
    fn parses_for_loop() {
        let items = parse_src("for (let i = 0; i < 10; i = i + 1) { print(i); }");
        assert!(matches!(items[0], Item::Stmt(Stmt::For { .. })));
    }

    #[test]
    fn parses_if_else_if_chain() {
        let items = parse_src("if (a) { } else if (b) { } else { let c = 1; }");
        let Item::Stmt(Stmt::If { else_body, .. }) = &items[0] else {
            panic!("expected if")
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_array_and_map_literals() {
        let items = parse_src(r#"let x = [1, 2, [3]]; let y = { a: 1, "b c": 2 };"#);
        assert_eq!(items.len(), 2);
        let Item::Stmt(Stmt::Let { value, .. }) = &items[1] else {
            panic!("expected let")
        };
        let Expr::Map(entries) = value else {
            panic!("expected map")
        };
        assert_eq!(entries[1].0, "b c");
    }

    #[test]
    fn parses_index_assignment() {
        let items = parse_src("m[\"k\"] = 5;");
        assert!(matches!(
            items[0],
            Item::Stmt(Stmt::Assign {
                target: Target::Index { .. },
                ..
            })
        ));
    }

    #[test]
    fn rejects_invalid_assignment_target() {
        let toks = lex("1 + 2 = 3;").expect("lexes");
        assert!(parse(toks).is_err());
    }

    #[test]
    fn rejects_unclosed_block() {
        let toks = lex("fn f() { let x = 1;").expect("lexes");
        assert!(parse(toks).is_err());
    }

    #[test]
    fn return_without_value() {
        let items = parse_src("fn f() { return; }");
        let Item::Fn(f) = &items[0] else {
            panic!("expected fn")
        };
        assert_eq!(f.body[0], Stmt::Return(None));
    }
}
