//! Pretty-printer: AST → Flame source.
//!
//! Used by the Fireworks code annotator, which is source-to-source like the
//! paper's (§3.2): parse → transform → print → reinstall.

use std::fmt::Write as _;

use crate::ast::{BinOp, Expr, FnDecl, Item, Stmt, Target, UnOp};

/// Renders a list of top-level items as Flame source.
pub fn print_items(items: &[Item]) -> String {
    let mut out = String::new();
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Fn(decl) => print_fn(&mut out, decl),
            Item::Stmt(stmt) => print_stmt(&mut out, stmt, 0),
        }
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_fn(out: &mut String, decl: &FnDecl) {
    if decl.jit_hint {
        out.push_str("@jit\n");
    }
    let _ = writeln!(out, "fn {}({}) {{", decl.name, decl.params.join(", "));
    for stmt in &decl.body {
        print_stmt(out, stmt, 1);
    }
    out.push_str("}\n");
}

fn print_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match stmt {
        Stmt::Let { name, value } => {
            let _ = writeln!(out, "let {name} = {};", print_expr(value));
        }
        Stmt::Assign { target, value } => match target {
            Target::Var(name) => {
                let _ = writeln!(out, "{name} = {};", print_expr(value));
            }
            Target::Index { base, index } => {
                let _ = writeln!(
                    out,
                    "{}[{}] = {};",
                    print_expr(base),
                    print_expr(index),
                    print_expr(value)
                );
            }
        },
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for s in then_body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_body {
                    print_stmt(out, s, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let init_str = print_inline_stmt(init);
            let step_str = print_inline_stmt(step);
            let _ = writeln!(out, "for ({init_str}; {}; {step_str}) {{", print_expr(cond));
            for s in body {
                print_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", print_expr(e));
        }
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
    }
}

/// Prints a statement without indentation or trailing `;\n` (for `for`
/// headers). Only `let`/assign/expr are legal there.
fn print_inline_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Let { name, value } => format!("let {name} = {}", print_expr(value)),
        Stmt::Assign {
            target: Target::Var(name),
            value,
        } => format!("{name} = {}", print_expr(value)),
        Stmt::Assign {
            target: Target::Index { base, index },
            value,
        } => format!(
            "{}[{}] = {}",
            print_expr(base),
            print_expr(index),
            print_expr(value)
        ),
        Stmt::Expr(e) => print_expr(e),
        other => unreachable!("not expressible in a for header: {other:?}"),
    }
}

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Prints an expression, parenthesising conservatively (every compound
/// sub-expression gets parens, so precedence never changes meaning).
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Str(s) => format!("\"{}\"", escape(s)),
        Expr::Bool(b) => b.to_string(),
        Expr::Null => "null".to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Binary { op, lhs, rhs } => {
            format!(
                "({} {} {})",
                print_expr(lhs),
                bin_op_str(*op),
                print_expr(rhs)
            )
        }
        Expr::And(l, r) => format!("({} && {})", print_expr(l), print_expr(r)),
        Expr::Or(l, r) => format!("({} || {})", print_expr(l), print_expr(r)),
        Expr::Unary { op, operand } => match op {
            UnOp::Neg => format!("(-{})", print_expr(operand)),
            UnOp::Not => format!("(!{})", print_expr(operand)),
        },
        Expr::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{callee}({})", args.join(", "))
        }
        Expr::Index { base, index } => {
            format!("{}[{}]", print_expr(base), print_expr(index))
        }
        Expr::Array(items) => {
            let items: Vec<String> = items.iter().map(print_expr).collect();
            format!("[{}]", items.join(", "))
        }
        Expr::Map(entries) => {
            let entries: Vec<String> = entries
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", escape(k), print_expr(v)))
                .collect();
            format!("{{ {} }}", entries.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn round_trip(src: &str) -> Vec<Item> {
        let items = parse(lex(src).expect("lexes")).expect("parses");
        let printed = print_items(&items);
        parse(lex(&printed).unwrap_or_else(|e| panic!("re-lex {e}: {printed}")))
            .unwrap_or_else(|e| panic!("re-parse {e}: {printed}"))
    }

    #[test]
    fn print_parse_round_trip_preserves_ast() {
        let src = r#"
            @jit
            fn work(n, m) {
                let t = 0.5;
                for (let i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0 && n > 3 || m < 0) { t = t + 1; } else { continue; }
                }
                while (!(t > 100.0)) { t = t * 2.0; break; }
                return [t, { "a b": "x\ny", c: null }, -n];
            }
            fn main(p) {
                work(p["n"], p.m);
                io_write("f", 10);
                return true;
            }
            let g = "top";
            print(g);
        "#;
        let original = parse(lex(src).expect("lexes")).expect("parses");
        let reparsed = round_trip(src);
        assert_eq!(original, reparsed);
    }

    #[test]
    fn conservative_parens_do_not_change_meaning() {
        let src = "fn main(x) { return 1 + 2 * 3 - 4 % 5; }";
        let original = parse(lex(src).expect("lexes")).expect("parses");
        let reparsed = round_trip(src);
        assert_eq!(original, reparsed);
    }

    #[test]
    fn string_escapes_survive() {
        let src = r#"fn main(x) { return "a\"b\\c\nd\te"; }"#;
        let original = parse(lex(src).expect("lexes")).expect("parses");
        assert_eq!(original, round_trip(src));
    }
}
