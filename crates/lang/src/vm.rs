//! The tiered Flame virtual machine.
//!
//! Cold functions run in a profiling interpreter that records per-site type
//! feedback. Depending on the [`JitPolicy`], hot or `@jit`-annotated
//! functions are *quickened*: every bytecode op whose feedback is
//! monomorphic is replaced 1:1 by a type-specialised op with a guard.
//! A failed guard deoptimises the whole function back to generic bytecode
//! (recording the polymorphic site so re-compilation won't repeat the
//! mistake), mirroring speculative optimisation in V8 and annotation-driven
//! compilation in Numba.
//!
//! The VM is resumable: executing the `fireworks_snapshot()` host op
//! suspends it with [`Outcome::Snapshot`]; [`Vm::snapshot_state`] then
//! deep-clones the complete execution state so any number of clones can be
//! created with [`Vm::from_snapshot`], each resuming right after the
//! snapshot point.

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::bytecode::{Builtin, Chunk, Op};
use crate::compiler::Program;
use crate::error::LangError;
use crate::jit::JitConfig;
use crate::tagged::TaggedValue;
use crate::value::Value;

/// Type-feedback bits recorded per op site.
mod feedback {
    /// Both operands int (or `arr[int]` for index sites).
    pub const INT_INT: u8 = 1;
    /// Numeric with at least one float.
    pub const FLOAT_NUM: u8 = 2;
    /// Both operands strings.
    pub const STR_STR: u8 = 4;
    /// Array indexed by int.
    pub const ARR_INT: u8 = 8;
    /// Map indexed by string.
    pub const MAP_STR: u8 = 16;
    /// Anything else, or a site that caused a deopt.
    pub const OTHER: u8 = 128;
}

/// Maximum recompilations of one function before JIT gives up on it.
const MAX_COMPILES: u32 = 3;

/// When to JIT-compile functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitPolicy {
    /// Never compile — a pure interpreter (the CPython profile).
    Off,
    /// Compile when a function gets hot (the V8 profile).
    HotSpot {
        /// Calls before a function is compiled.
        call_threshold: u32,
        /// Loop back-edges before a function is compiled (enables
        /// on-stack replacement at the back edge).
        loop_threshold: u32,
    },
    /// Compile `@jit`-annotated functions eagerly and nothing else (the
    /// Numba `@jit(cache=True)` profile). The first call runs in the
    /// interpreter to gather type information (the analogue of Numba's
    /// argument-type inference); compilation happens at the second call.
    AnnotatedEager,
}

impl Default for JitPolicy {
    fn default() -> Self {
        JitPolicy::HotSpot {
            call_threshold: 8,
            loop_threshold: 64,
        }
    }
}

/// Execution counters, the currency the runtime crate converts into
/// virtual time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Ops retired in the interpreter tier.
    pub interp_ops: u64,
    /// Ops retired in a compiled tier (quickened *or* optimized).
    pub jit_ops: u64,
    /// Ops retired in the top (optimized) tier — a subset of `jit_ops`.
    pub opt_ops: u64,
    /// Functions compiled (including recompilations).
    pub compiles: u64,
    /// Total bytecode ops fed to the JIT compiler (compile-cost proxy).
    pub compile_ops: u64,
    /// Deoptimisations taken.
    pub deopts: u64,
    /// Function calls dispatched.
    pub calls: u64,
    /// Host calls dispatched (I/O, DB, bus, ...).
    pub host_calls: u64,
    /// Builtin calls dispatched.
    pub builtin_calls: u64,
    /// Inline-cache hits (property access matched a cached shape).
    pub ic_hits: u64,
    /// Inline-cache misses (first observation, shape change, or a
    /// megamorphic site — each pays the slow lookup path).
    pub ic_misses: u64,
    /// Compiled functions evicted from the code cache to fit the budget
    /// (each eviction demotes the function back to the interpreter).
    pub code_evictions: u64,
}

impl ExecStats {
    /// Total ops retired in either tier.
    pub fn total_ops(&self) -> u64 {
        self.interp_ops + self.jit_ops
    }

    /// Component-wise sum.
    pub fn merge(&self, other: &ExecStats) -> ExecStats {
        ExecStats {
            interp_ops: self.interp_ops + other.interp_ops,
            jit_ops: self.jit_ops + other.jit_ops,
            opt_ops: self.opt_ops + other.opt_ops,
            compiles: self.compiles + other.compiles,
            compile_ops: self.compile_ops + other.compile_ops,
            deopts: self.deopts + other.deopts,
            calls: self.calls + other.calls,
            host_calls: self.host_calls + other.host_calls,
            builtin_calls: self.builtin_calls + other.builtin_calls,
            ic_hits: self.ic_hits + other.ic_hits,
            ic_misses: self.ic_misses + other.ic_misses,
            code_evictions: self.code_evictions + other.code_evictions,
        }
    }
}

/// Why [`Vm::run`] returned.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The entry function returned this value.
    Done(Value),
    /// `fireworks_snapshot()` was executed; the VM is suspended and can be
    /// snapshotted and/or resumed with another [`Vm::run`] call.
    Snapshot,
}

/// The embedding environment of a VM.
///
/// All I/O-shaped calls in guest code (`io_read`, `db_put`,
/// `bus_consume`, `mmds_get`, `invoke`, ...) compile to host calls and are
/// served here, which is where sandboxes charge their I/O path costs.
pub trait Host {
    /// Serves `print(...)` output.
    fn print(&mut self, text: &str);

    /// Serves a named host call.
    fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, LangError>;
}

/// A host that discards prints and rejects host calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHost;

impl Host for NoopHost {
    fn print(&mut self, _text: &str) {}

    fn host_call(&mut self, name: &str, _args: &[Value]) -> Result<Value, LangError> {
        Err(LangError::runtime(format!(
            "host call `{name}` not available in this environment"
        )))
    }
}

/// JIT tier of one function: interpreter → quickened (baseline compiled,
/// type-specialised) → optimized (the top tier, reached under sustained
/// heat or by forced annotation — V8's TurboFan, Numba's nopython mode).
#[derive(Debug, Clone)]
enum Tier {
    Interp,
    Quick(Rc<Vec<Op>>),
    Opt(Rc<Vec<Op>>),
}

/// Compilation target chosen by the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TargetTier {
    Quick,
    Opt,
}

/// How much more compile work the optimizing tier does per bytecode op.
const OPT_COMPILE_FACTOR: u64 = 3;
/// Multiplier on the hot-spot thresholds before a quickened function is
/// promoted to the optimized tier. High enough that one or two serverless
/// invocations do not organically reach the top tier — only forced
/// annotation or sustained traffic does.
const OPT_PROMOTE_FACTOR: u32 = 25;

/// One property-access site's inline-cache state: monomorphic after the
/// first observed shape, polymorphic up to the configured limit, then
/// megamorphic (every access a miss) — the V8/SpiderMonkey ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
enum IcState {
    Uninit,
    Mono(u32),
    Poly(Vec<u32>),
    Mega,
}

/// Per-site inline cache with hit/miss counters.
#[derive(Debug, Clone)]
struct IcSite {
    state: IcState,
    hits: u64,
    misses: u64,
}

impl IcSite {
    fn new() -> IcSite {
        IcSite {
            state: IcState::Uninit,
            hits: 0,
            misses: 0,
        }
    }
}

/// Aggregate inline-cache telemetry, exported as `vm.ic.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcSummary {
    /// Property-access sites that have been executed at least once.
    pub sites: u64,
    /// Sites currently monomorphic (one cached shape).
    pub mono: u64,
    /// Sites currently polymorphic (several cached shapes).
    pub poly: u64,
    /// Sites that went megamorphic (cache disabled, every access slow).
    pub mega: u64,
    /// Total hits across all sites (lifetime, survives snapshots).
    pub hits: u64,
    /// Total misses across all sites (lifetime, survives snapshots).
    pub misses: u64,
}

/// Interns content-based map shapes to dense ids.
///
/// A shape is the FNV-1a hash of a map's key list; ids are assigned in
/// first-seen order, so — execution being single-threaded and
/// deterministic — shape ids are reproducible across runs (no pointer
/// identity, which would break byte-identical benchmark output).
#[derive(Debug, Clone, Default)]
struct ShapeTable {
    ids: HashMap<u64, u32>,
}

impl ShapeTable {
    fn intern(&mut self, hash: u64) -> u32 {
        let next = self.ids.len() as u32 + 1;
        *self.ids.entry(hash).or_insert(next)
    }
}

/// FNV-1a over a map's key list (values do not affect shape).
fn shape_hash(map: &BTreeMap<String, Value>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for k in map.keys() {
        for b in k.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Mutable per-function state (profiling counters, tier, feedback,
/// inline caches, code-cache accounting).
#[derive(Debug, Clone)]
struct FnState {
    calls: u32,
    back_edges: u32,
    tier: Tier,
    feedback: Vec<u8>,
    compiles: u32,
    banned: bool,
    /// Inline caches keyed by op index (only property-access sites).
    ics: BTreeMap<u32, IcSite>,
    /// Last execution tick (call dispatch or back-edge) — the LRU key
    /// for code-cache eviction.
    last_exec: u64,
    /// Modelled code bytes this function holds in the code cache
    /// (0 while interpreted).
    code_bytes: u64,
}

impl FnState {
    fn new() -> Self {
        FnState {
            calls: 0,
            back_edges: 0,
            tier: Tier::Interp,
            feedback: Vec::new(),
            compiles: 0,
            banned: false,
            ics: BTreeMap::new(),
            last_exec: 0,
            code_bytes: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: usize,
    ip: usize,
    base: usize,
}

/// A deep-cloned, immutable image of a suspended VM.
///
/// The [`Program`], chunks, and JIT code are shared by `Rc` (immutable);
/// globals and the value stack are deep clones, so restored VMs share no
/// mutable state with the original or each other.
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    program: Rc<Program>,
    fn_states: Vec<FnState>,
    globals: Vec<Value>,
    stack: Vec<Value>,
    frames: Vec<Frame>,
    policy: JitPolicy,
    jit: JitConfig,
    shapes: ShapeTable,
    code_bytes_used: u64,
    exec_tick: u64,
}

impl VmSnapshot {
    /// Number of compiled ops resident in the snapshot's JIT code cache.
    pub fn jit_code_ops(&self) -> usize {
        self.fn_states
            .iter()
            .map(|s| match &s.tier {
                Tier::Quick(code) | Tier::Opt(code) => code.len(),
                Tier::Interp => 0,
            })
            .sum()
    }

    /// Modelled code-cache occupancy captured in the snapshot, in bytes.
    pub fn code_cache_used_bytes(&self) -> u64 {
        self.code_bytes_used
    }
}

/// The Flame virtual machine.
#[derive(Debug)]
pub struct Vm {
    program: Rc<Program>,
    fn_states: Vec<FnState>,
    globals: Vec<TaggedValue>,
    stack: Vec<TaggedValue>,
    frames: Vec<Frame>,
    stats: ExecStats,
    policy: JitPolicy,
    /// Code-cache budget, IC limits, and code-size model.
    jit: JitConfig,
    /// Content-based map-shape interner shared by all IC sites.
    shapes: ShapeTable,
    /// Modelled bytes of compiled code currently resident.
    code_bytes_used: u64,
    /// Monotonic execution clock (call dispatches and back-edges), the
    /// LRU time base for code-cache eviction.
    exec_tick: u64,
    /// Remaining op budget; `None` is unlimited. Exhaustion aborts the
    /// run with [`LangError::Timeout`] (the platform invocation timeout).
    fuel: Option<u64>,
}

impl Vm {
    /// Creates a VM for a program with the default (HotSpot) JIT policy.
    pub fn new(program: Rc<Program>) -> Self {
        Vm::with_policy(program, JitPolicy::default())
    }

    /// Creates a VM with an explicit JIT policy and default [`JitConfig`]
    /// limits (generous code-cache budget, poly limit 4).
    pub fn with_policy(program: Rc<Program>, policy: JitPolicy) -> Self {
        Vm::with_config(program, JitConfig::default().with_policy(Some(policy)))
    }

    /// Creates a VM with a full [`JitConfig`]. A `None` policy in the
    /// config falls back to [`JitPolicy::default`] (embedders that carry
    /// a runtime profile resolve `None` to the profile's policy first).
    pub fn with_config(program: Rc<Program>, jit: JitConfig) -> Self {
        let n_funcs = program.functions.len();
        let n_globals = program.global_names.len();
        Vm {
            program,
            fn_states: (0..n_funcs).map(|_| FnState::new()).collect(),
            globals: vec![TaggedValue::null(); n_globals],
            stack: Vec::with_capacity(256),
            frames: Vec::with_capacity(16),
            stats: ExecStats::default(),
            policy: jit.policy.unwrap_or_default(),
            jit,
            shapes: ShapeTable::default(),
            code_bytes_used: 0,
            exec_tick: 0,
            fuel: None,
        }
    }

    /// Rebuilds a VM from a snapshot. The clone resumes exactly where the
    /// snapshot was taken (right after the `fireworks_snapshot()` call),
    /// carrying the warmed JIT state: tiers, inline caches, shape table,
    /// and code-cache occupancy.
    pub fn from_snapshot(snapshot: &VmSnapshot) -> Self {
        let mut seen = HashMap::new();
        let globals = deep_clone_values(&snapshot.globals, &mut seen);
        let stack = deep_clone_values(&snapshot.stack, &mut seen);
        Vm {
            program: snapshot.program.clone(),
            fn_states: snapshot.fn_states.clone(),
            globals: globals.into_iter().map(TaggedValue::from_value).collect(),
            stack: stack.into_iter().map(TaggedValue::from_value).collect(),
            frames: snapshot.frames.clone(),
            stats: ExecStats::default(),
            policy: snapshot.policy,
            jit: snapshot.jit,
            shapes: snapshot.shapes.clone(),
            code_bytes_used: snapshot.code_bytes_used,
            exec_tick: snapshot.exec_tick,
            fuel: None,
        }
    }

    /// Sets the op budget for subsequent execution; `None` is unlimited.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.fuel = fuel;
    }

    /// Remaining op budget, if one is set.
    pub fn fuel(&self) -> Option<u64> {
        self.fuel
    }

    /// Captures a deep-cloned snapshot of the current execution state.
    pub fn snapshot_state(&self) -> VmSnapshot {
        let mut seen = HashMap::new();
        // Unbox through one shared identity map so aliasing between
        // globals and stack survives both the untagging and the clone.
        let globals: Vec<Value> = self.globals.iter().map(TaggedValue::to_value).collect();
        let stack: Vec<Value> = self.stack.iter().map(TaggedValue::to_value).collect();
        VmSnapshot {
            program: self.program.clone(),
            fn_states: self.fn_states.clone(),
            globals: deep_clone_values(&globals, &mut seen),
            stack: deep_clone_values(&stack, &mut seen),
            frames: self.frames.clone(),
            policy: self.policy,
            jit: self.jit,
            shapes: self.shapes.clone(),
            code_bytes_used: self.code_bytes_used,
            exec_tick: self.exec_tick,
        }
    }

    /// The program this VM executes.
    pub fn program(&self) -> &Rc<Program> {
        &self.program
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Returns the counters and resets them.
    pub fn take_stats(&mut self) -> ExecStats {
        std::mem::take(&mut self.stats)
    }

    /// Whether the named function is currently JIT-compiled (either
    /// compiled tier).
    pub fn is_jitted(&self, name: &str) -> bool {
        self.program
            .function(name)
            .map(|i| matches!(self.fn_states[i].tier, Tier::Quick(_) | Tier::Opt(_)))
            .unwrap_or(false)
    }

    /// Whether the named function is in the top (optimized) tier.
    pub fn is_optimized(&self, name: &str) -> bool {
        self.program
            .function(name)
            .map(|i| matches!(self.fn_states[i].tier, Tier::Opt(_)))
            .unwrap_or(false)
    }

    /// Total compiled ops resident in the JIT code cache.
    pub fn jit_code_ops(&self) -> usize {
        self.fn_states
            .iter()
            .map(|s| match &s.tier {
                Tier::Quick(code) | Tier::Opt(code) => code.len(),
                Tier::Interp => 0,
            })
            .sum()
    }

    /// The JIT configuration this VM runs under.
    pub fn jit_config(&self) -> JitConfig {
        self.jit
    }

    /// Modelled code-cache occupancy in bytes (always within the
    /// configured `code_cache_capacity_bytes` budget).
    pub fn code_cache_used_bytes(&self) -> u64 {
        self.code_bytes_used
    }

    /// Aggregates inline-cache state across all functions.
    pub fn ic_summary(&self) -> IcSummary {
        let mut out = IcSummary::default();
        for st in &self.fn_states {
            for site in st.ics.values() {
                out.sites += 1;
                out.hits += site.hits;
                out.misses += site.misses;
                match &site.state {
                    IcState::Uninit => {}
                    IcState::Mono(_) => out.mono += 1,
                    IcState::Poly(_) => out.poly += 1,
                    IcState::Mega => out.mega += 1,
                }
            }
        }
        out
    }

    /// Reads a global by name (for tests and embedders).
    pub fn global(&self, name: &str) -> Option<Value> {
        let i = self.program.global_names.iter().position(|g| g == name)?;
        Some(self.globals[i].to_value())
    }

    /// Whether the VM has a suspended call stack (is mid-execution).
    pub fn is_suspended(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Rough heap footprint of live guest values in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.globals
            .iter()
            .chain(self.stack.iter())
            .map(|v| v.to_value().heap_estimate())
            .sum()
    }

    /// Prepares the VM to run `entry(args...)`. Fails if the function is
    /// unknown or the arity does not match.
    pub fn start(&mut self, entry: &str, args: Vec<Value>) -> Result<(), LangError> {
        assert!(
            self.frames.is_empty(),
            "start() on a VM that is already running"
        );
        let func = self
            .program
            .function(entry)
            .ok_or_else(|| LangError::runtime(format!("unknown function `{entry}`")))?;
        let chunk = self.chunk(func);
        if chunk.arity as usize != args.len() {
            return Err(LangError::runtime(format!(
                "`{entry}` expects {} arguments, got {}",
                chunk.arity,
                args.len()
            )));
        }
        let n_locals = chunk.n_locals;
        let base = self.stack.len();
        self.stack
            .extend(args.into_iter().map(TaggedValue::from_value));
        for _ in self.stack.len() - base..n_locals as usize {
            self.stack.push(TaggedValue::null());
        }
        self.exec_tick += 1;
        let st = &mut self.fn_states[func];
        st.last_exec = self.exec_tick;
        st.calls += 1;
        self.maybe_tier_up(func);
        self.frames.push(Frame { func, ip: 0, base });
        Ok(())
    }

    fn chunk(&self, func: usize) -> &Rc<Chunk> {
        &self.program.functions[func].chunk
    }

    // ---- JIT machinery ---------------------------------------------------

    fn should_compile(&self, func: usize) -> Option<TargetTier> {
        let st = &self.fn_states[func];
        if st.banned || matches!(st.tier, Tier::Opt(_)) {
            return None;
        }
        match self.policy {
            JitPolicy::Off => None,
            JitPolicy::HotSpot {
                call_threshold,
                loop_threshold,
            } => match st.tier {
                // Interpreter → quickened at the base thresholds.
                Tier::Interp if st.calls >= call_threshold || st.back_edges >= loop_threshold => {
                    Some(TargetTier::Quick)
                }
                // Quickened → optimized only under sustained heat — one
                // warm benchmark run typically does not get there, which
                // is why forced post-JIT code still beats warm starts.
                Tier::Quick(_)
                    if st.calls >= call_threshold.saturating_mul(OPT_PROMOTE_FACTOR)
                        || st.back_edges >= loop_threshold.saturating_mul(OPT_PROMOTE_FACTOR) =>
                {
                    Some(TargetTier::Opt)
                }
                _ => None,
            },
            // Annotation forces the top tier directly (Numba nopython /
            // explicitly triggered V8 optimization), once type feedback
            // from the first call exists.
            JitPolicy::AnnotatedEager => {
                if self.program.functions[func].jit_hint
                    && !matches!(st.tier, Tier::Opt(_))
                    && (st.calls >= 2 || st.back_edges >= 1)
                {
                    Some(TargetTier::Opt)
                } else {
                    None
                }
            }
        }
    }

    fn maybe_tier_up(&mut self, func: usize) {
        let Some(target) = self.should_compile(func) else {
            return;
        };
        let chunk = self.chunk(func).clone();
        // Budgeted code cache: compiled code costs modelled bytes; a
        // compile that does not fit evicts least-recently-executed
        // functions first (demoting them to the interpreter), and a
        // function bigger than the whole budget is never compiled.
        let cost = chunk.ops.len() as u64 * self.jit.code_bytes_per_op;
        let capacity = self.jit.code_cache_capacity_bytes;
        if cost > capacity {
            return;
        }
        // Re-tiering replaces this function's resident code, so its own
        // bytes are freed by the same transaction.
        let already = self.fn_states[func].code_bytes;
        while self.code_bytes_used - already + cost > capacity {
            if !self.evict_coldest(func) {
                return;
            }
        }
        let quick = quicken(&chunk, &self.fn_states[func].feedback);
        self.stats.compiles += 1;
        self.code_bytes_used = self.code_bytes_used - already + cost;
        let st = &mut self.fn_states[func];
        st.compiles += 1;
        st.code_bytes = cost;
        match target {
            TargetTier::Quick => {
                self.stats.compile_ops += chunk.ops.len() as u64;
                st.tier = Tier::Quick(Rc::new(quick));
            }
            TargetTier::Opt => {
                self.stats.compile_ops += chunk.ops.len() as u64 * OPT_COMPILE_FACTOR;
                st.tier = Tier::Opt(Rc::new(quick));
            }
        }
    }

    /// Evicts the least-recently-executed compiled function (other than
    /// `protect`), demoting it to the interpreter and resetting its heat
    /// so it must re-earn compilation. Ties break on the lowest function
    /// index, keeping eviction order deterministic.
    fn evict_coldest(&mut self, protect: usize) -> bool {
        let victim = self
            .fn_states
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != protect && s.code_bytes > 0)
            .min_by_key(|(i, s)| (s.last_exec, *i))
            .map(|(i, _)| i);
        let Some(i) = victim else {
            return false;
        };
        let st = &mut self.fn_states[i];
        self.code_bytes_used -= st.code_bytes;
        st.code_bytes = 0;
        st.tier = Tier::Interp;
        // Reset heat (but keep type feedback) so the next compile of
        // this function is driven by fresh traffic, not stale counters.
        st.calls = 0;
        st.back_edges = 0;
        self.stats.code_evictions += 1;
        true
    }

    /// Deoptimises `func`: back to the interpreter, release its code
    /// bytes, poison the site, and ban the function after too many
    /// recompilations.
    fn deopt(&mut self, func: usize, site: usize) {
        self.stats.deopts += 1;
        let ops_len = self.chunk(func).ops.len();
        let st = &mut self.fn_states[func];
        self.code_bytes_used -= st.code_bytes;
        st.code_bytes = 0;
        st.tier = Tier::Interp;
        if st.feedback.is_empty() {
            st.feedback = vec![0; ops_len];
        }
        st.feedback[site] |= feedback::OTHER;
        if st.compiles >= MAX_COMPILES {
            st.banned = true;
        }
    }

    /// Advances one property-access site's inline cache for an observed
    /// map shape. Returns `true` when the access must deoptimise: a
    /// monomorphic site compiled on one shape just saw another while
    /// running compiled code (the paper's restore-side deopt hazard).
    fn ic_access(&mut self, func: usize, site: usize, in_jit: bool, shape: u32) -> bool {
        let limit = usize::from(self.jit.ic_poly_limit.max(1));
        let ic = self.fn_states[func]
            .ics
            .entry(site as u32)
            .or_insert_with(IcSite::new);
        let mut hit = false;
        let mut deopt_now = false;
        let state = std::mem::replace(&mut ic.state, IcState::Uninit);
        ic.state = match state {
            IcState::Uninit => IcState::Mono(shape),
            IcState::Mono(s) if s == shape => {
                hit = true;
                IcState::Mono(s)
            }
            IcState::Mono(s) => {
                deopt_now = in_jit;
                if limit >= 2 {
                    IcState::Poly(vec![s, shape])
                } else {
                    IcState::Mega
                }
            }
            IcState::Poly(shapes) if shapes.contains(&shape) => {
                hit = true;
                IcState::Poly(shapes)
            }
            IcState::Poly(mut shapes) => {
                if shapes.len() < limit {
                    shapes.push(shape);
                    IcState::Poly(shapes)
                } else {
                    IcState::Mega
                }
            }
            IcState::Mega => IcState::Mega,
        };
        if hit {
            ic.hits += 1;
            self.stats.ic_hits += 1;
        } else {
            ic.misses += 1;
            self.stats.ic_misses += 1;
        }
        deopt_now
    }

    fn record_feedback(&mut self, func: usize, site: usize, mask: u8) {
        let ops_len = self.chunk(func).ops.len();
        let st = &mut self.fn_states[func];
        if st.feedback.is_empty() {
            st.feedback = vec![0; ops_len];
        }
        st.feedback[site] |= mask;
    }

    // ---- stack helpers ---------------------------------------------------

    fn pop(&mut self) -> TaggedValue {
        self.stack.pop().expect("stack underflow is a compiler bug")
    }

    fn pop_value(&mut self) -> Value {
        self.pop().into_value()
    }

    fn push_value(&mut self, v: Value) {
        self.stack.push(TaggedValue::from_value(v));
    }

    fn peek(&self, depth: usize) -> &TaggedValue {
        &self.stack[self.stack.len() - 1 - depth]
    }

    // ---- the dispatch loop -------------------------------------------------

    /// Runs until the entry function returns or the VM hits a snapshot
    /// point. Call [`Vm::start`] first; call `run` again after
    /// [`Outcome::Snapshot`] to resume.
    pub fn run(&mut self, host: &mut dyn Host) -> Result<Outcome, LangError> {
        assert!(
            !self.frames.is_empty(),
            "run() without start() or after completion"
        );
        loop {
            let frame = *self.frames.last().expect("frame stack non-empty");
            let func = frame.func;
            let (op, in_jit) = match &self.fn_states[func].tier {
                Tier::Quick(code) => (code[frame.ip], true),
                Tier::Opt(code) => {
                    self.stats.opt_ops += 1;
                    (code[frame.ip], true)
                }
                Tier::Interp => (self.chunk(func).ops[frame.ip], false),
            };
            if in_jit {
                self.stats.jit_ops += 1;
            } else {
                self.stats.interp_ops += 1;
            }
            if let Some(fuel) = &mut self.fuel {
                if *fuel == 0 {
                    return Err(LangError::Timeout {
                        ops: self.stats.total_ops(),
                    });
                }
                *fuel -= 1;
            }
            let site = frame.ip;
            self.frames.last_mut().expect("frame stack non-empty").ip += 1;

            match op {
                Op::Const(c) => {
                    let v = self.chunk(func).consts[c as usize].clone();
                    self.push_value(v);
                }
                Op::LoadLocal(slot) => {
                    let v = self.stack[frame.base + slot as usize].clone();
                    self.stack.push(v);
                }
                Op::StoreLocal(slot) => {
                    let v = self.pop();
                    self.stack[frame.base + slot as usize] = v;
                }
                Op::LoadGlobal(g) => {
                    self.stack.push(self.globals[g as usize].clone());
                }
                Op::StoreGlobal(g) => {
                    let v = self.pop();
                    self.globals[g as usize] = v;
                }

                Op::Add => self.binary_generic(func, site, in_jit, BinKind::Add)?,
                Op::Sub => self.binary_generic(func, site, in_jit, BinKind::Sub)?,
                Op::Mul => self.binary_generic(func, site, in_jit, BinKind::Mul)?,
                Op::Div => self.binary_generic(func, site, in_jit, BinKind::Div)?,
                Op::Mod => self.binary_generic(func, site, in_jit, BinKind::Mod)?,
                Op::Eq => {
                    let r = self.pop();
                    let l = self.pop();
                    self.stack.push(TaggedValue::bool(l == r));
                }
                Op::Ne => {
                    let r = self.pop();
                    let l = self.pop();
                    self.stack.push(TaggedValue::bool(l != r));
                }
                Op::Lt => self.binary_generic(func, site, in_jit, BinKind::Lt)?,
                Op::Le => self.binary_generic(func, site, in_jit, BinKind::Le)?,
                Op::Gt => self.binary_generic(func, site, in_jit, BinKind::Gt)?,
                Op::Ge => self.binary_generic(func, site, in_jit, BinKind::Ge)?,

                Op::Neg => {
                    let v = self.pop();
                    let out = if let Some(i) = v.as_int() {
                        TaggedValue::int(i.wrapping_neg())
                    } else if let Some(f) = v.as_float() {
                        TaggedValue::float(-f)
                    } else {
                        return Err(LangError::runtime(format!(
                            "cannot negate {}",
                            v.type_name()
                        )));
                    };
                    self.stack.push(out);
                }
                Op::Not => {
                    let v = self.pop();
                    self.stack.push(TaggedValue::bool(!v.truthy()));
                }

                Op::Jump(target) => {
                    let t = target as usize;
                    if t <= site {
                        // Loop back-edge: profile, maybe tier up (OSR —
                        // safe because quickening is 1:1 on op indices).
                        self.exec_tick += 1;
                        let st = &mut self.fn_states[func];
                        st.last_exec = self.exec_tick;
                        st.back_edges += 1;
                        self.maybe_tier_up(func);
                    }
                    self.frames.last_mut().expect("frame stack non-empty").ip = t;
                }
                Op::JumpIfFalse(target) => {
                    let v = self.pop();
                    if !v.truthy() {
                        self.frames.last_mut().expect("frame stack non-empty").ip = target as usize;
                    }
                }
                Op::JumpIfFalsePeek(target) => {
                    if !self.peek(0).truthy() {
                        self.frames.last_mut().expect("frame stack non-empty").ip = target as usize;
                    }
                }
                Op::JumpIfTruePeek(target) => {
                    if self.peek(0).truthy() {
                        self.frames.last_mut().expect("frame stack non-empty").ip = target as usize;
                    }
                }

                Op::Call { func: callee, argc } => {
                    self.stats.calls += 1;
                    let callee = callee as usize;
                    let chunk = self.chunk(callee).clone();
                    if chunk.arity != argc {
                        return Err(LangError::runtime(format!(
                            "`{}` expects {} arguments, got {argc}",
                            chunk.name, chunk.arity
                        )));
                    }
                    let base = self.stack.len() - argc as usize;
                    for _ in argc as u16..chunk.n_locals {
                        self.stack.push(TaggedValue::null());
                    }
                    self.exec_tick += 1;
                    let st = &mut self.fn_states[callee];
                    st.last_exec = self.exec_tick;
                    st.calls += 1;
                    self.maybe_tier_up(callee);
                    self.frames.push(Frame {
                        func: callee,
                        ip: 0,
                        base,
                    });
                }
                Op::CallBuiltin { builtin, argc } => {
                    self.stats.builtin_calls += 1;
                    self.call_builtin(builtin, argc, host)?;
                }
                Op::CallHost { name, argc } => {
                    self.stats.host_calls += 1;
                    let name = match &self.chunk(func).consts[name as usize] {
                        Value::Str(s) => s.clone(),
                        other => {
                            return Err(LangError::runtime(format!(
                                "host-call name must be a string, got {}",
                                other.type_name()
                            )))
                        }
                    };
                    let at = self.stack.len() - argc as usize;
                    let args: Vec<Value> = self
                        .stack
                        .split_off(at)
                        .into_iter()
                        .map(TaggedValue::into_value)
                        .collect();
                    let result = host.host_call(&name, &args)?;
                    self.push_value(result);
                }
                Op::Snapshot => {
                    // The call's result (null) is pushed *before*
                    // suspending so the captured state resumes cleanly.
                    self.stack.push(TaggedValue::null());
                    return Ok(Outcome::Snapshot);
                }
                Op::Return => {
                    let value = self.pop();
                    let frame = self.frames.pop().expect("frame stack non-empty");
                    self.stack.truncate(frame.base);
                    if self.frames.is_empty() {
                        return Ok(Outcome::Done(value.into_value()));
                    }
                    self.stack.push(value);
                }
                Op::Pop => {
                    let _ = self.pop();
                }
                Op::MakeArray(n) => {
                    let at = self.stack.len() - n as usize;
                    let items: Vec<Value> = self
                        .stack
                        .split_off(at)
                        .into_iter()
                        .map(TaggedValue::into_value)
                        .collect();
                    self.push_value(Value::array(items));
                }
                Op::MakeMap(n) => {
                    let at = self.stack.len() - 2 * n as usize;
                    let mut flat: Vec<Value> = self
                        .stack
                        .split_off(at)
                        .into_iter()
                        .map(TaggedValue::into_value)
                        .collect();
                    let mut entries = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        let v = flat.pop().expect("compiler pushed 2n values");
                        let k = flat.pop().expect("compiler pushed 2n values");
                        let Value::Str(k) = k else {
                            return Err(LangError::runtime("map keys must be strings"));
                        };
                        entries.push((k.to_string(), v));
                    }
                    entries.reverse();
                    self.push_value(Value::map(entries));
                }
                Op::Index => self.index_generic(func, site, in_jit)?,
                Op::SetIndex => self.set_index_generic(func, site, in_jit)?,
                Op::GetProp(c) => self.get_prop(func, site, in_jit, c)?,
                Op::SetProp(c) => self.set_prop(func, site, in_jit, c)?,

                // ---- quickened ops ----------------------------------------
                Op::AddII | Op::SubII | Op::MulII | Op::ModII | Op::DivII => {
                    if let (Some(l), Some(r)) = (self.peek(1).as_int(), self.peek(0).as_int()) {
                        self.pop();
                        self.pop();
                        let out = match op {
                            Op::AddII => TaggedValue::int(l.wrapping_add(r)),
                            Op::SubII => TaggedValue::int(l.wrapping_sub(r)),
                            Op::MulII => TaggedValue::int(l.wrapping_mul(r)),
                            Op::ModII => {
                                if r == 0 {
                                    return Err(LangError::runtime("modulo by zero"));
                                }
                                TaggedValue::int(l.wrapping_rem(r))
                            }
                            Op::DivII => {
                                if r == 0 {
                                    return Err(LangError::runtime("division by zero"));
                                }
                                TaggedValue::int(l.wrapping_div(r))
                            }
                            _ => unreachable!(),
                        };
                        self.stack.push(out);
                    } else {
                        self.deopt(func, site);
                        let kind = match op {
                            Op::AddII => BinKind::Add,
                            Op::SubII => BinKind::Sub,
                            Op::MulII => BinKind::Mul,
                            Op::ModII => BinKind::Mod,
                            Op::DivII => BinKind::Div,
                            _ => unreachable!(),
                        };
                        self.binary_generic(func, site, false, kind)?;
                    }
                }
                Op::AddFF | Op::SubFF | Op::MulFF | Op::DivFF => {
                    if let (Some(l), Some(r)) = (self.peek(1).as_num(), self.peek(0).as_num()) {
                        self.pop();
                        self.pop();
                        let out = match op {
                            Op::AddFF => l + r,
                            Op::SubFF => l - r,
                            Op::MulFF => l * r,
                            Op::DivFF => l / r,
                            _ => unreachable!(),
                        };
                        self.stack.push(TaggedValue::float(out));
                    } else {
                        self.deopt(func, site);
                        let kind = match op {
                            Op::AddFF => BinKind::Add,
                            Op::SubFF => BinKind::Sub,
                            Op::MulFF => BinKind::Mul,
                            Op::DivFF => BinKind::Div,
                            _ => unreachable!(),
                        };
                        self.binary_generic(func, site, false, kind)?;
                    }
                }
                Op::LtII | Op::LeII | Op::GtII | Op::GeII => {
                    if let (Some(l), Some(r)) = (self.peek(1).as_int(), self.peek(0).as_int()) {
                        self.pop();
                        self.pop();
                        let out = match op {
                            Op::LtII => l < r,
                            Op::LeII => l <= r,
                            Op::GtII => l > r,
                            Op::GeII => l >= r,
                            _ => unreachable!(),
                        };
                        self.stack.push(TaggedValue::bool(out));
                    } else {
                        self.deopt(func, site);
                        let kind = match op {
                            Op::LtII => BinKind::Lt,
                            Op::LeII => BinKind::Le,
                            Op::GtII => BinKind::Gt,
                            Op::GeII => BinKind::Ge,
                            _ => unreachable!(),
                        };
                        self.binary_generic(func, site, false, kind)?;
                    }
                }
                Op::AddSS => {
                    if self.peek(1).as_str().is_some() && self.peek(0).as_str().is_some() {
                        let r = self.pop_value();
                        let l = self.pop_value();
                        let (Value::Str(l), Value::Str(r)) = (l, r) else {
                            unreachable!("guard checked strings")
                        };
                        let mut s = String::with_capacity(l.len() + r.len());
                        s.push_str(&l);
                        s.push_str(&r);
                        self.push_value(Value::str(s));
                    } else {
                        self.deopt(func, site);
                        self.binary_generic(func, site, false, BinKind::Add)?;
                    }
                }
                Op::IndexArrI => {
                    if self.peek(1).is_array() && self.peek(0).as_int().is_some() {
                        let i = self.pop().as_int().expect("guard checked int");
                        let Value::Array(a) = self.pop_value() else {
                            unreachable!("guard checked array")
                        };
                        let a = a.borrow();
                        let item = usize::try_from(i)
                            .ok()
                            .and_then(|i| a.get(i).cloned())
                            .ok_or_else(|| {
                                LangError::runtime(format!(
                                    "array index {i} out of bounds (len {})",
                                    a.len()
                                ))
                            })?;
                        drop(a);
                        self.push_value(item);
                    } else {
                        self.deopt(func, site);
                        self.index_generic(func, site, false)?;
                    }
                }
                Op::IndexMapS => {
                    if self.peek(1).is_map() && self.peek(0).as_str().is_some() {
                        let Value::Str(k) = self.pop_value() else {
                            unreachable!("guard checked string")
                        };
                        let Value::Map(m) = self.pop_value() else {
                            unreachable!("guard checked map")
                        };
                        let v = m.borrow().get(&*k).cloned().unwrap_or(Value::Null);
                        self.push_value(v);
                    } else {
                        self.deopt(func, site);
                        self.index_generic(func, site, false)?;
                    }
                }
                Op::SetIndexArrI => {
                    if self.peek(2).is_array() && self.peek(1).as_int().is_some() {
                        let v = self.pop_value();
                        let i = self.pop().as_int().expect("guard checked int");
                        let Value::Array(a) = self.pop_value() else {
                            unreachable!("guard checked array")
                        };
                        let mut a = a.borrow_mut();
                        let len = a.len();
                        let slot = usize::try_from(i)
                            .ok()
                            .and_then(|i| a.get_mut(i))
                            .ok_or_else(|| {
                                LangError::runtime(format!(
                                    "array index {i} out of bounds (len {len})"
                                ))
                            })?;
                        *slot = v;
                    } else {
                        self.deopt(func, site);
                        self.set_index_generic(func, site, false)?;
                    }
                }
            }
        }
    }

    // ---- generic operators -------------------------------------------------

    fn binary_generic(
        &mut self,
        func: usize,
        site: usize,
        in_jit: bool,
        kind: BinKind,
    ) -> Result<(), LangError> {
        let r = self.pop_value();
        let l = self.pop_value();
        if !in_jit {
            let mask = classify_pair(&l, &r);
            self.record_feedback(func, site, mask);
        }
        let out = apply_binary(kind, l, r)?;
        self.push_value(out);
        Ok(())
    }

    fn index_generic(&mut self, func: usize, site: usize, in_jit: bool) -> Result<(), LangError> {
        let index = self.pop_value();
        let base = self.pop_value();
        if !in_jit {
            let mask = match (&base, &index) {
                (Value::Array(_), Value::Int(_)) => feedback::ARR_INT,
                (Value::Map(_), Value::Str(_)) => feedback::MAP_STR,
                _ => feedback::OTHER,
            };
            self.record_feedback(func, site, mask);
        }
        let out = match (&base, &index) {
            (Value::Array(a), Value::Int(i)) => {
                let a = a.borrow();
                usize::try_from(*i)
                    .ok()
                    .and_then(|i| a.get(i).cloned())
                    .ok_or_else(|| {
                        LangError::runtime(format!(
                            "array index {i} out of bounds (len {})",
                            a.len()
                        ))
                    })?
            }
            (Value::Map(m), Value::Str(k)) => m.borrow().get(&**k).cloned().unwrap_or(Value::Null),
            (Value::Str(s), Value::Int(i)) => {
                let chars: Vec<char> = s.chars().collect();
                usize::try_from(*i)
                    .ok()
                    .and_then(|i| chars.get(i))
                    .map(|c| Value::str(c.to_string()))
                    .ok_or_else(|| {
                        LangError::runtime(format!(
                            "string index {i} out of bounds (len {})",
                            chars.len()
                        ))
                    })?
            }
            _ => {
                return Err(LangError::runtime(format!(
                    "cannot index {} with {}",
                    base.type_name(),
                    index.type_name()
                )))
            }
        };
        self.push_value(out);
        Ok(())
    }

    fn set_index_generic(
        &mut self,
        func: usize,
        site: usize,
        in_jit: bool,
    ) -> Result<(), LangError> {
        let value = self.pop_value();
        let index = self.pop_value();
        let base = self.pop_value();
        if !in_jit {
            let mask = match (&base, &index) {
                (Value::Array(_), Value::Int(_)) => feedback::ARR_INT,
                _ => feedback::OTHER,
            };
            self.record_feedback(func, site, mask);
        }
        match (&base, &index) {
            (Value::Array(a), Value::Int(i)) => {
                let mut a = a.borrow_mut();
                let len = a.len();
                let slot = usize::try_from(*i)
                    .ok()
                    .and_then(|i| a.get_mut(i))
                    .ok_or_else(|| {
                        LangError::runtime(format!("array index {i} out of bounds (len {len})"))
                    })?;
                *slot = value;
            }
            (Value::Map(m), Value::Str(k)) => {
                m.borrow_mut().insert(k.to_string(), value);
            }
            _ => {
                return Err(LangError::runtime(format!(
                    "cannot assign into {} with {} index",
                    base.type_name(),
                    index.type_name()
                )))
            }
        }
        Ok(())
    }

    /// `base.name` through the site's inline cache. Lookup semantics are
    /// identical to `base["name"]`; the IC only shapes the cost model
    /// (hit/miss counters, deopt on shape change in compiled code).
    fn get_prop(
        &mut self,
        func: usize,
        site: usize,
        in_jit: bool,
        key_const: u16,
    ) -> Result<(), LangError> {
        let key = match &self.chunk(func).consts[key_const as usize] {
            Value::Str(s) => s.clone(),
            other => {
                return Err(LangError::runtime(format!(
                    "property name must be a string, got {}",
                    other.type_name()
                )))
            }
        };
        let base = self.pop_value();
        match &base {
            Value::Map(m) => {
                let hash = shape_hash(&m.borrow());
                let shape = self.shapes.intern(hash);
                if self.ic_access(func, site, in_jit, shape) {
                    self.deopt(func, site);
                }
                let v = m.borrow().get(&*key).cloned().unwrap_or(Value::Null);
                self.push_value(v);
                Ok(())
            }
            other => Err(LangError::runtime(format!(
                "cannot index {} with string",
                other.type_name()
            ))),
        }
    }

    /// `base.name = value` through the site's inline cache. The shape is
    /// observed *before* the insert, so a store that adds a new key is a
    /// transition: the next access at this site sees the grown shape.
    fn set_prop(
        &mut self,
        func: usize,
        site: usize,
        in_jit: bool,
        key_const: u16,
    ) -> Result<(), LangError> {
        let key = match &self.chunk(func).consts[key_const as usize] {
            Value::Str(s) => s.clone(),
            other => {
                return Err(LangError::runtime(format!(
                    "property name must be a string, got {}",
                    other.type_name()
                )))
            }
        };
        let value = self.pop_value();
        let base = self.pop_value();
        match &base {
            Value::Map(m) => {
                let hash = shape_hash(&m.borrow());
                let shape = self.shapes.intern(hash);
                if self.ic_access(func, site, in_jit, shape) {
                    self.deopt(func, site);
                }
                m.borrow_mut().insert(key.to_string(), value);
                Ok(())
            }
            other => Err(LangError::runtime(format!(
                "cannot assign into {} with string index",
                other.type_name()
            ))),
        }
    }

    fn call_builtin(
        &mut self,
        builtin: Builtin,
        argc: u8,
        host: &mut dyn Host,
    ) -> Result<(), LangError> {
        let at = self.stack.len() - argc as usize;
        let args: Vec<Value> = self
            .stack
            .split_off(at)
            .into_iter()
            .map(TaggedValue::into_value)
            .collect();
        let result = eval_builtin(builtin, args, host)?;
        self.push_value(result);
        Ok(())
    }
}

fn deep_clone_values(values: &[Value], seen: &mut HashMap<usize, Value>) -> Vec<Value> {
    // Clone through one shared identity map so aliasing *between* globals
    // and stack values is preserved in the clone.
    values
        .iter()
        .map(|v| {
            // `Value::deep_clone` uses a fresh map; inline the recursive
            // step with the shared one.
            clone_with(v, seen)
        })
        .collect()
}

fn clone_with(v: &Value, seen: &mut HashMap<usize, Value>) -> Value {
    match v {
        Value::Array(rc) => {
            let key = Rc::as_ptr(rc) as usize;
            if let Some(existing) = seen.get(&key) {
                return existing.clone();
            }
            let new_rc = Rc::new(std::cell::RefCell::new(Vec::new()));
            seen.insert(key, Value::Array(new_rc.clone()));
            let cloned: Vec<Value> = rc.borrow().iter().map(|x| clone_with(x, seen)).collect();
            *new_rc.borrow_mut() = cloned;
            Value::Array(new_rc)
        }
        Value::Map(rc) => {
            let key = Rc::as_ptr(rc) as usize;
            if let Some(existing) = seen.get(&key) {
                return existing.clone();
            }
            let new_rc = Rc::new(std::cell::RefCell::new(std::collections::BTreeMap::new()));
            seen.insert(key, Value::Map(new_rc.clone()));
            let cloned: std::collections::BTreeMap<String, Value> = rc
                .borrow()
                .iter()
                .map(|(k, x)| (k.clone(), clone_with(x, seen)))
                .collect();
            *new_rc.borrow_mut() = cloned;
            Value::Map(new_rc)
        }
        other => other.clone(),
    }
}

#[derive(Debug, Clone, Copy)]
enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        _ => unreachable!("guard checked numeric"),
    }
}

fn classify_pair(l: &Value, r: &Value) -> u8 {
    match (l, r) {
        (Value::Int(_), Value::Int(_)) => feedback::INT_INT,
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => feedback::FLOAT_NUM,
        (Value::Str(_), Value::Str(_)) => feedback::STR_STR,
        _ => feedback::OTHER,
    }
}

fn apply_binary(kind: BinKind, l: Value, r: Value) -> Result<Value, LangError> {
    use BinKind::*;
    let type_err = |what: &str, l: &Value, r: &Value| {
        LangError::runtime(format!(
            "cannot {what} {} and {}",
            l.type_name(),
            r.type_name()
        ))
    };
    Ok(match (kind, &l, &r) {
        (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
        (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
        (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
        (Div, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                return Err(LangError::runtime("division by zero"));
            }
            Value::Int(a.wrapping_div(*b))
        }
        (Mod, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                return Err(LangError::runtime("modulo by zero"));
            }
            Value::Int(a.wrapping_rem(*b))
        }
        (Add, Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            Value::Float(as_f64(&l) + as_f64(&r))
        }
        (Sub, Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            Value::Float(as_f64(&l) - as_f64(&r))
        }
        (Mul, Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            Value::Float(as_f64(&l) * as_f64(&r))
        }
        (Div, Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            Value::Float(as_f64(&l) / as_f64(&r))
        }
        (Mod, Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            Value::Float(as_f64(&l) % as_f64(&r))
        }
        (Add, Value::Str(a), _) => {
            let mut s = a.to_string();
            s.push_str(&r.to_string());
            Value::str(s)
        }
        (Add, _, Value::Str(b)) => {
            let mut s = l.to_string();
            s.push_str(b);
            Value::str(s)
        }
        (Add, Value::Array(a), Value::Array(b)) => {
            let mut out = a.borrow().clone();
            out.extend(b.borrow().iter().cloned());
            Value::array(out)
        }
        (Lt | Le | Gt | Ge, Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            let (a, b) = (as_f64(&l), as_f64(&r));
            Value::Bool(match kind {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            })
        }
        (Lt | Le | Gt | Ge, Value::Str(a), Value::Str(b)) => Value::Bool(match kind {
            Lt => a < b,
            Le => a <= b,
            Gt => a > b,
            Ge => a >= b,
            _ => unreachable!(),
        }),
        (Add, _, _) => return Err(type_err("add", &l, &r)),
        (Sub, _, _) => return Err(type_err("subtract", &l, &r)),
        (Mul, _, _) => return Err(type_err("multiply", &l, &r)),
        (Div, _, _) => return Err(type_err("divide", &l, &r)),
        (Mod, _, _) => return Err(type_err("mod", &l, &r)),
        (Lt | Le | Gt | Ge, _, _) => return Err(type_err("compare", &l, &r)),
    })
}

fn eval_builtin(
    builtin: Builtin,
    args: Vec<Value>,
    host: &mut dyn Host,
) -> Result<Value, LangError> {
    let arity_err =
        |want: &str| LangError::runtime(format!("builtin {builtin:?} expects {want} arguments"));
    Ok(match builtin {
        Builtin::Len => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            match v {
                Value::Str(s) => Value::Int(s.chars().count() as i64),
                Value::Array(a) => Value::Int(a.borrow().len() as i64),
                Value::Map(m) => Value::Int(m.borrow().len() as i64),
                other => {
                    return Err(LangError::runtime(format!(
                        "len() of {}",
                        other.type_name()
                    )))
                }
            }
        }
        Builtin::Push => {
            let [arr, v] = take::<2>(args).map_err(|_| arity_err("2"))?;
            let Value::Array(a) = &arr else {
                return Err(LangError::runtime("push() needs an array"));
            };
            a.borrow_mut().push(v);
            arr
        }
        Builtin::Pop => {
            let [arr] = take::<1>(args).map_err(|_| arity_err("1"))?;
            let Value::Array(a) = &arr else {
                return Err(LangError::runtime("pop() needs an array"));
            };
            let out = a.borrow_mut().pop();
            out.ok_or_else(|| LangError::runtime("pop() from empty array"))?
        }
        Builtin::Keys => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            let Value::Map(m) = v else {
                return Err(LangError::runtime("keys() needs a map"));
            };
            let keys: Vec<Value> = m.borrow().keys().map(Value::str).collect();
            Value::array(keys)
        }
        Builtin::Has => {
            let [c, needle] = take::<2>(args).map_err(|_| arity_err("2"))?;
            match c {
                Value::Map(m) => {
                    let Value::Str(k) = &needle else {
                        return Err(LangError::runtime("has() on a map needs a string key"));
                    };
                    Value::Bool(m.borrow().contains_key(&**k))
                }
                Value::Array(a) => Value::Bool(a.borrow().iter().any(|x| x.eq_value(&needle))),
                Value::Str(s) => {
                    let Value::Str(sub) = &needle else {
                        return Err(LangError::runtime("has() on a string needs a string"));
                    };
                    Value::Bool(s.contains(&**sub))
                }
                other => {
                    return Err(LangError::runtime(format!(
                        "has() of {}",
                        other.type_name()
                    )))
                }
            }
        }
        Builtin::Remove => {
            let [m, k] = take::<2>(args).map_err(|_| arity_err("2"))?;
            let (Value::Map(m), Value::Str(k)) = (&m, &k) else {
                return Err(LangError::runtime("remove() needs a map and a string key"));
            };
            let removed = m.borrow_mut().remove(&**k);
            removed.unwrap_or(Value::Null)
        }
        Builtin::Str => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            Value::str(v.to_string())
        }
        Builtin::Int => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            match v {
                Value::Int(i) => Value::Int(i),
                Value::Float(f) => Value::Int(f as i64),
                Value::Bool(b) => Value::Int(i64::from(b)),
                Value::Str(s) => Value::Int(
                    s.trim()
                        .parse::<i64>()
                        .map_err(|_| LangError::runtime(format!("int() cannot parse `{s}`")))?,
                ),
                other => {
                    return Err(LangError::runtime(format!(
                        "int() of {}",
                        other.type_name()
                    )))
                }
            }
        }
        Builtin::Float => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            match v {
                Value::Int(i) => Value::Float(i as f64),
                Value::Float(f) => Value::Float(f),
                Value::Str(s) => Value::Float(
                    s.trim()
                        .parse::<f64>()
                        .map_err(|_| LangError::runtime(format!("float() cannot parse `{s}`")))?,
                ),
                other => {
                    return Err(LangError::runtime(format!(
                        "float() of {}",
                        other.type_name()
                    )))
                }
            }
        }
        Builtin::Floor => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            match v {
                Value::Int(i) => Value::Int(i),
                Value::Float(f) => Value::Int(f.floor() as i64),
                other => {
                    return Err(LangError::runtime(format!(
                        "floor() of {}",
                        other.type_name()
                    )))
                }
            }
        }
        Builtin::Sqrt => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            let f = match v {
                Value::Int(i) => i as f64,
                Value::Float(f) => f,
                other => {
                    return Err(LangError::runtime(format!(
                        "sqrt() of {}",
                        other.type_name()
                    )))
                }
            };
            Value::Float(f.sqrt())
        }
        Builtin::Abs => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            match v {
                Value::Int(i) => Value::Int(i.wrapping_abs()),
                Value::Float(f) => Value::Float(f.abs()),
                other => {
                    return Err(LangError::runtime(format!(
                        "abs() of {}",
                        other.type_name()
                    )))
                }
            }
        }
        Builtin::Min | Builtin::Max => {
            let [a, b] = take::<2>(args).map_err(|_| arity_err("2"))?;
            let (x, y) = match (&a, &b) {
                (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                    (as_f64(&a), as_f64(&b))
                }
                _ => return Err(LangError::runtime("min()/max() need numbers")),
            };
            let pick_a = if builtin == Builtin::Min {
                x <= y
            } else {
                x >= y
            };
            if pick_a {
                a
            } else {
                b
            }
        }
        Builtin::Split => {
            let [s, sep] = take::<2>(args).map_err(|_| arity_err("2"))?;
            let (Value::Str(s), Value::Str(sep)) = (&s, &sep) else {
                return Err(LangError::runtime("split() needs two strings"));
            };
            let parts: Vec<Value> = if sep.is_empty() {
                s.chars().map(|c| Value::str(c.to_string())).collect()
            } else {
                s.split(&**sep).map(Value::str).collect()
            };
            Value::array(parts)
        }
        Builtin::Join => {
            let [arr, sep] = take::<2>(args).map_err(|_| arity_err("2"))?;
            let (Value::Array(a), Value::Str(sep)) = (&arr, &sep) else {
                return Err(LangError::runtime("join() needs an array and a string"));
            };
            let joined = a
                .borrow()
                .iter()
                .map(Value::to_string)
                .collect::<Vec<_>>()
                .join(sep);
            Value::str(joined)
        }
        Builtin::Substr => {
            let [s, start, len] = take::<3>(args).map_err(|_| arity_err("3"))?;
            let (Value::Str(s), Value::Int(start), Value::Int(len)) = (&s, &start, &len) else {
                return Err(LangError::runtime("substr() needs (string, int, int)"));
            };
            let chars: Vec<char> = s.chars().collect();
            let start = (*start).max(0) as usize;
            let len = (*len).max(0) as usize;
            let out: String = chars.iter().skip(start).take(len).collect();
            Value::str(out)
        }
        Builtin::Type => {
            let [v] = take::<1>(args).map_err(|_| arity_err("1"))?;
            Value::str(v.type_name())
        }
        Builtin::Print => {
            let text = args
                .iter()
                .map(Value::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            host.print(&text);
            Value::Null
        }
    })
}

fn take<const N: usize>(args: Vec<Value>) -> Result<[Value; N], ()> {
    args.try_into().map_err(|_| ())
}

/// Quickens a chunk: each op with monomorphic feedback becomes its
/// specialised form, everything else stays generic. Output length equals
/// input length, so jump targets and deopt indices remain valid.
fn quicken(chunk: &Chunk, fb: &[u8]) -> Vec<Op> {
    chunk
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let mask = fb.get(i).copied().unwrap_or(0);
            if mask & feedback::OTHER != 0 {
                return *op;
            }
            match (op, mask) {
                (Op::Add, m) if m == feedback::INT_INT => Op::AddII,
                (Op::Add, m) if m == feedback::FLOAT_NUM => Op::AddFF,
                (Op::Add, m) if m == feedback::STR_STR => Op::AddSS,
                (Op::Sub, m) if m == feedback::INT_INT => Op::SubII,
                (Op::Sub, m) if m == feedback::FLOAT_NUM => Op::SubFF,
                (Op::Mul, m) if m == feedback::INT_INT => Op::MulII,
                (Op::Mul, m) if m == feedback::FLOAT_NUM => Op::MulFF,
                (Op::Div, m) if m == feedback::INT_INT => Op::DivII,
                (Op::Div, m) if m == feedback::FLOAT_NUM => Op::DivFF,
                (Op::Mod, m) if m == feedback::INT_INT => Op::ModII,
                (Op::Lt, m) if m == feedback::INT_INT => Op::LtII,
                (Op::Le, m) if m == feedback::INT_INT => Op::LeII,
                (Op::Gt, m) if m == feedback::INT_INT => Op::GtII,
                (Op::Ge, m) if m == feedback::INT_INT => Op::GeII,
                (Op::Index, m) if m == feedback::ARR_INT => Op::IndexArrI,
                (Op::Index, m) if m == feedback::MAP_STR => Op::IndexMapS,
                (Op::SetIndex, m) if m == feedback::ARR_INT => Op::SetIndexArrI,
                _ => *op,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    /// A host that records prints and serves a couple of host calls.
    #[derive(Default)]
    struct TestHost {
        printed: Vec<String>,
        host_calls: Vec<String>,
    }

    impl Host for TestHost {
        fn print(&mut self, text: &str) {
            self.printed.push(text.to_string());
        }

        fn host_call(&mut self, name: &str, args: &[Value]) -> Result<Value, LangError> {
            self.host_calls.push(name.to_string());
            match name {
                "give_seven" => Ok(Value::Int(7)),
                "echo" => Ok(args[0].clone()),
                other => Err(LangError::runtime(format!("unknown host call `{other}`"))),
            }
        }
    }

    fn run_main(src: &str, args: Vec<Value>) -> Value {
        run_main_with(src, args, JitPolicy::default()).0
    }

    fn run_main_with(src: &str, args: Vec<Value>, policy: JitPolicy) -> (Value, ExecStats) {
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::with_policy(program, policy);
        vm.start("main", args).expect("starts");
        let out = vm.run(&mut TestHost::default()).expect("runs");
        let Outcome::Done(v) = out else {
            panic!("expected completion, got {out:?}")
        };
        (v, vm.stats())
    }

    #[test]
    fn arithmetic_and_loops() {
        let v = run_main(
            "fn main(n) { let t = 0; for (let i = 1; i <= n; i = i + 1) { t = t + i * i; } return t; }",
            vec![Value::Int(10)],
        );
        assert_eq!(v, Value::Int(385));
    }

    #[test]
    fn recursion_works() {
        let v = run_main(
            "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
             fn main(n) { return fib(n); }",
            vec![Value::Int(15)],
        );
        assert!(v.eq_value(&Value::Int(610)));
    }

    #[test]
    fn while_with_break_and_continue() {
        let v = run_main(
            "fn main(x) {
                let sum = 0;
                let i = 0;
                while (true) {
                    i = i + 1;
                    if (i > 100) { break; }
                    if (i % 2 == 0) { continue; }
                    sum = sum + i;
                }
                return sum;
            }",
            vec![Value::Int(0)],
        );
        // Sum of odd numbers 1..=99 = 2500.
        assert!(v.eq_value(&Value::Int(2500)));
    }

    #[test]
    fn arrays_maps_and_builtins() {
        let v = run_main(
            r#"fn main(x) {
                let a = [1, 2, 3];
                push(a, 4);
                let m = { count: len(a), name: "fw" };
                m["extra"] = a[3];
                return str(m.count) + "-" + m.name + "-" + str(m.extra);
            }"#,
            vec![Value::Int(0)],
        );
        assert!(v.eq_value(&Value::str("4-fw-4")));
    }

    #[test]
    fn string_builtins() {
        let v = run_main(
            r#"fn main(x) {
                let parts = split("a,b,c", ",");
                return join(parts, "|") + ":" + substr("hello", 1, 3);
            }"#,
            vec![Value::Int(0)],
        );
        assert!(v.eq_value(&Value::str("a|b|c:ell")));
    }

    #[test]
    fn globals_are_shared_across_functions() {
        let program = Rc::new(
            compile(
                "let counter = 0;
                 fn bump() { counter = counter + 1; return counter; }
                 fn main(x) { bump(); bump(); return bump(); }",
            )
            .expect("compiles"),
        );
        let mut vm = Vm::new(program.clone());
        // Run the module body first (defines globals), then main.
        vm.start(crate::compiler::TOPLEVEL, vec![]).expect("starts");
        let out = vm.run(&mut TestHost::default()).expect("runs");
        assert!(matches!(out, Outcome::Done(_)));
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done");
        };
        assert!(v.eq_value(&Value::Int(3)));
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        let mut host = TestHost::default();
        let program = Rc::new(
            compile("fn main(x) { let v = false && give_seven(); return v; }").expect("compiles"),
        );
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut host).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Bool(false)));
        assert!(host.host_calls.is_empty(), "rhs must not run");
    }

    #[test]
    fn host_calls_route_to_host() {
        let mut host = TestHost::default();
        let program =
            Rc::new(compile("fn main(x) { return give_seven() + echo(x); }").expect("compiles"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(5)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut host).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(12)));
        assert_eq!(host.host_calls, vec!["give_seven", "echo"]);
        assert_eq!(vm.stats().host_calls, 2);
    }

    #[test]
    fn print_goes_to_host() {
        let mut host = TestHost::default();
        let program =
            Rc::new(compile(r#"fn main(x) { print("hello", x); return null; }"#).expect("ok"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(3)]).expect("starts");
        vm.run(&mut host).expect("runs");
        assert_eq!(host.printed, vec!["hello 3"]);
    }

    #[test]
    fn hotspot_policy_tiers_up_loops() {
        let (_, stats) = run_main_with(
            "fn main(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }",
            vec![Value::Int(10_000)],
            JitPolicy::default(),
        );
        assert!(stats.compiles >= 1, "hot loop should tier up");
        assert!(
            stats.jit_ops > stats.interp_ops,
            "most ops should retire in the JIT tier: {stats:?}"
        );
        assert_eq!(stats.deopts, 0);
    }

    #[test]
    fn off_policy_never_compiles() {
        let (_, stats) = run_main_with(
            "fn main(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }",
            vec![Value::Int(10_000)],
            JitPolicy::Off,
        );
        assert_eq!(stats.compiles, 0);
        assert_eq!(stats.jit_ops, 0);
    }

    #[test]
    fn annotated_eager_compiles_only_hinted() {
        let program = Rc::new(
            compile(
                "@jit fn hot(n) { return n * 2; }
                 fn cold(n) { return n + 1; }
                 fn main(n) { hot(n); cold(n); return hot(n) + cold(n); }",
            )
            .expect("compiles"),
        );
        let mut vm = Vm::with_policy(program, JitPolicy::AnnotatedEager);
        vm.start("main", vec![Value::Int(10)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(31)));
        assert!(vm.is_jitted("hot"));
        assert!(!vm.is_jitted("cold"));
        assert!(!vm.is_jitted("main"));
    }

    #[test]
    fn jit_results_match_interpreter_results() {
        let src = "fn work(n) {
            let acc = 0.0;
            for (let i = 1; i <= n; i = i + 1) {
                acc = acc + sqrt(float(i)) * 1.5;
                if (i % 7 == 0) { acc = acc - 1.0; }
            }
            return acc;
        }
        fn main(n) { return work(n); }";
        let (jit, s1) = run_main_with(src, vec![Value::Int(5_000)], JitPolicy::default());
        let (interp, s2) = run_main_with(src, vec![Value::Int(5_000)], JitPolicy::Off);
        assert!(jit.eq_value(&interp), "{jit} != {interp}");
        assert!(s1.compiles > 0 && s2.compiles == 0);
    }

    #[test]
    fn type_change_triggers_deopt_and_correct_result() {
        // Warm up `add` with ints so it quickens to AddII, then call it
        // with strings: the guard must fail, deopt, and still produce the
        // right answer.
        let src = r#"
            fn add(a, b) { return a + b; }
            fn main(x) {
                let t = 0;
                for (let i = 0; i < 200; i = i + 1) { t = add(t, 1); }
                return add("a", "b") + str(t);
            }"#;
        let (v, stats) = run_main_with(src, vec![Value::Int(0)], JitPolicy::default());
        assert!(v.eq_value(&Value::str("ab200")));
        assert!(stats.deopts >= 1, "expected a deopt: {stats:?}");
    }

    #[test]
    fn repeated_deopts_ban_function() {
        let src = r#"
            fn add(a, b) { return a + b; }
            fn main(x) {
                let t = 0;
                // Alternate hot int phases with type changes to force
                // repeated recompile + deopt cycles.
                for (let round = 0; round < 6; round = round + 1) {
                    for (let i = 0; i < 100; i = i + 1) { t = add(t, 1); }
                    let s = add("x", "y");
                }
                return t;
            }"#;
        let (v, stats) = run_main_with(src, vec![Value::Int(0)], JitPolicy::default());
        assert!(v.eq_value(&Value::Int(600)));
        // Compiles are bounded by the ban (each function may tier up twice
        // — quickened then optimized — per recompile allowance).
        assert!(
            stats.compiles <= 2 * (u64::from(MAX_COMPILES) + 1),
            "{stats:?}"
        );
    }

    #[test]
    fn snapshot_suspends_and_resumes() {
        let src = "fn main(x) {
            let a = 1;
            fireworks_snapshot();
            return a + x;
        }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(10)]).expect("starts");
        let out = vm.run(&mut TestHost::default()).expect("runs");
        assert_eq!(out, Outcome::Snapshot);
        assert!(vm.is_suspended());
        let out = vm.run(&mut TestHost::default()).expect("resumes");
        let Outcome::Done(v) = out else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(11)));
    }

    #[test]
    fn snapshot_clones_resume_independently() {
        let src = "fn main(x) {
            let log = [];
            push(log, \"pre\");
            fireworks_snapshot();
            push(log, str(x));
            return join(log, \",\");
        }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(1)]).expect("starts");
        assert_eq!(
            vm.run(&mut TestHost::default()).expect("runs"),
            Outcome::Snapshot
        );
        let snap = vm.snapshot_state();

        // Two clones resume from the same snapshot. The argument `x` is
        // frozen in the snapshot — exactly the paper's problem that the
        // parameter passer solves at a higher layer.
        let mut a = Vm::from_snapshot(&snap);
        let mut b = Vm::from_snapshot(&snap);
        let Outcome::Done(va) = a.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        let Outcome::Done(vb) = b.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(va.eq_value(&Value::str("pre,1")));
        assert!(vb.eq_value(&Value::str("pre,1")));

        // And the original can still finish, unaffected by the clones.
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::str("pre,1")));
    }

    #[test]
    fn snapshot_preserves_jit_tier() {
        let src = "
            fn hot(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }
            fn main(x) {
                hot(1000);
                fireworks_snapshot();
                return hot(100);
            }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        assert_eq!(
            vm.run(&mut TestHost::default()).expect("runs"),
            Outcome::Snapshot
        );
        assert!(vm.is_jitted("hot"));
        let snap = vm.snapshot_state();
        assert!(snap.jit_code_ops() > 0);

        let mut clone = Vm::from_snapshot(&snap);
        assert!(clone.is_jitted("hot"), "JIT code must survive the snapshot");
        let Outcome::Done(v) = clone.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(4950)));
        let stats = clone.stats();
        // The resumed run executes `hot` in the JIT tier without paying
        // any compile cost — the post-JIT benefit.
        assert_eq!(stats.compiles, 0);
        assert!(stats.jit_ops > 0);
    }

    #[test]
    fn snapshot_clone_mutations_do_not_leak() {
        let src = "
            let state = { n: 0 };
            fn main(x) {
                state.n = state.n + 1;
                return state.n;
            }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::new(program);
        vm.start(crate::compiler::TOPLEVEL, vec![]).expect("starts");
        vm.run(&mut TestHost::default()).expect("runs");
        let snap = vm.snapshot_state();

        for _ in 0..3 {
            let mut clone = Vm::from_snapshot(&snap);
            clone.start("main", vec![Value::Int(0)]).expect("starts");
            let Outcome::Done(v) = clone.run(&mut TestHost::default()).expect("runs") else {
                panic!("expected done")
            };
            // Every clone starts from n = 0: no cross-clone leakage.
            assert!(v.eq_value(&Value::Int(1)));
        }
    }

    #[test]
    fn arity_mismatch_is_a_runtime_error() {
        let program = Rc::new(compile("fn f(a) { } fn main(x) { return x; }").expect("ok"));
        let mut vm = Vm::new(program);
        assert!(vm.start("main", vec![]).is_err());
        assert!(vm.start("nonexistent", vec![]).is_err());
    }

    #[test]
    fn division_by_zero_is_reported() {
        let program = Rc::new(compile("fn main(x) { return 1 / x; }").expect("ok"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        assert!(vm.run(&mut TestHost::default()).is_err());
    }

    #[test]
    fn quickened_division_by_zero_is_reported() {
        let src = "fn d(a, b) { return a / b; }
                   fn main(x) {
                       let t = 0;
                       for (let i = 1; i < 200; i = i + 1) { t = t + d(100, i); }
                       return d(1, x);
                   }";
        let program = Rc::new(compile(src).expect("ok"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        assert!(vm.run(&mut TestHost::default()).is_err());
    }

    #[test]
    fn out_of_bounds_index_is_reported() {
        let program = Rc::new(compile("fn main(x) { let a = [1]; return a[x]; }").expect("ok"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(5)]).expect("starts");
        assert!(vm.run(&mut TestHost::default()).is_err());
    }

    #[test]
    fn missing_map_key_yields_null() {
        let v = run_main(
            "fn main(x) { let m = { a: 1 }; return m[\"missing\"]; }",
            vec![Value::Int(0)],
        );
        assert!(v.eq_value(&Value::Null));
    }

    #[test]
    fn annotation_reaches_top_tier_but_organic_heat_only_quickens() {
        let src = "
            @jit fn hot(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }
            fn main(n) { hot(n); return hot(n); }";
        // Forced annotation: straight to the optimized tier.
        let program = Rc::new(compile(src).expect("ok"));
        let mut vm = Vm::with_policy(program.clone(), JitPolicy::AnnotatedEager);
        vm.start("main", vec![Value::Int(100)]).expect("starts");
        vm.run(&mut TestHost::default()).expect("runs");
        assert!(vm.is_optimized("hot"), "annotation forces the top tier");
        assert!(vm.stats().opt_ops > 0);

        // Organic heat at serverless scale: quickened, not optimized.
        let mut vm = Vm::with_policy(
            program,
            JitPolicy::HotSpot {
                call_threshold: 1,
                loop_threshold: 10,
            },
        );
        vm.start("main", vec![Value::Int(100)]).expect("starts");
        vm.run(&mut TestHost::default()).expect("runs");
        assert!(vm.is_jitted("hot"));
        assert!(
            !vm.is_optimized("hot"),
            "two invocations' heat must not reach the top tier"
        );
    }

    #[test]
    fn sustained_heat_promotes_to_top_tier() {
        let src = "fn hot(n) { return n + 1; }
                   fn main(reps) {
                       let t = 0;
                       for (let i = 0; i < reps; i = i + 1) { t = hot(t); }
                       return t;
                   }";
        let program = Rc::new(compile(src).expect("ok"));
        let mut vm = Vm::with_policy(
            program,
            JitPolicy::HotSpot {
                call_threshold: 4,
                loop_threshold: 1_000_000,
            },
        );
        // 4 × 25 (promote factor) = 100 calls needed; run well past it.
        vm.start("main", vec![Value::Int(500)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(500)));
        assert!(
            vm.is_optimized("hot"),
            "sustained traffic reaches the top tier"
        );
    }

    #[test]
    fn fuel_limits_execution() {
        let program = Rc::new(
            compile("fn main(x) { let i = 0; while (true) { i = i + 1; } return i; }").expect("ok"),
        );
        let mut vm = Vm::new(program);
        vm.set_fuel(Some(10_000));
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        let err = vm.run(&mut TestHost::default());
        assert!(matches!(err, Err(LangError::Timeout { ops }) if ops >= 10_000));
    }

    #[test]
    fn sufficient_fuel_completes_and_decrements() {
        let program = Rc::new(
            compile("fn main(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }")
                .expect("ok"),
        );
        let mut vm = Vm::new(program);
        vm.set_fuel(Some(1_000_000));
        vm.start("main", vec![Value::Int(100)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(4950)));
        let remaining = vm.fuel().expect("fuel still set");
        assert!(remaining < 1_000_000 && remaining > 0);
    }

    #[test]
    fn no_fuel_means_unlimited() {
        let program = Rc::new(compile("fn main(n) { return n; }").expect("ok"));
        let vm = Vm::new(program);
        assert_eq!(vm.fuel(), None);
    }

    #[test]
    fn property_sites_go_monomorphic_and_hit() {
        let src = "fn main(n) {
            let p = { x: 1, y: 2 };
            let t = 0;
            for (let i = 0; i < n; i = i + 1) { t = t + p.x + p.y; }
            return t;
        }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::with_policy(program, JitPolicy::Off);
        vm.start("main", vec![Value::Int(100)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(300)));
        let ic = vm.ic_summary();
        assert_eq!(ic.mono, 2, "both access sites stay monomorphic: {ic:?}");
        assert_eq!(ic.mega, 0);
        // One miss per site (first observation), hits for the other 99.
        assert_eq!(vm.stats().ic_misses, 2);
        assert_eq!(vm.stats().ic_hits, 2 * 100 - 2);
    }

    #[test]
    fn ic_transitions_mono_to_poly_to_mega() {
        // One access site (`read`) sees four distinct map shapes. With a
        // poly limit of 2 the ladder is: mono(a) → poly(a,b) → mega.
        let src = "
            fn read(m) { return m.k; }
            fn main(x) {
                let a = { k: 1 };
                let b = { k: 2, extra: 0 };
                let c = { k: 3, other: 0 };
                let d = { k: 4, more: 0, yet: 1 };
                return read(a) + read(a) + read(b) + read(c) + read(d);
            }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::with_config(
            program,
            JitConfig::default()
                .with_policy(Some(JitPolicy::Off))
                .with_ic_poly_limit(2),
        );
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(11)));
        let ic = vm.ic_summary();
        assert_eq!(ic.sites, 1, "{ic:?}");
        assert_eq!(ic.mega, 1, "site must end megamorphic: {ic:?}");
        // Misses: first sight of a, then b (poly), c (to mega), d (mega).
        assert_eq!(vm.stats().ic_misses, 4);
        assert_eq!(vm.stats().ic_hits, 1, "second read(a) hits");
    }

    #[test]
    fn mono_shape_miss_in_compiled_code_deopts() {
        // Warm `read` on one shape until it compiles, then feed it a
        // different shape: the mono IC misses inside compiled code and
        // the function deoptimises (the restore-side hazard).
        let src = "
            fn read(m) { return m.k; }
            fn main(x) {
                let a = { k: 1 };
                let t = 0;
                for (let i = 0; i < 50; i = i + 1) { t = t + read(a); }
                let b = { k: 10, extra: 0 };
                return t + read(b);
            }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::with_config(
            program,
            JitConfig::default().with_policy(Some(JitPolicy::HotSpot {
                call_threshold: 4,
                loop_threshold: 1_000_000,
            })),
        );
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(60)));
        assert!(
            vm.stats().deopts >= 1,
            "shape miss must deopt: {:?}",
            vm.stats()
        );
        assert!(!vm.is_jitted("read"), "deopt demotes to the interpreter");
        assert_eq!(
            vm.ic_summary().poly,
            1,
            "site is polymorphic after the miss"
        );
    }

    #[test]
    fn code_cache_budget_evicts_lru_and_stays_within_budget() {
        // Two hot functions, a budget that fits only one compiled body:
        // compiling the second evicts the first (LRU), and occupancy
        // never exceeds the budget.
        let src = "
            fn f(n) { return n + 1; }
            fn g(n) { return n + 2; }
            fn main(x) {
                let t = 0;
                for (let i = 0; i < 40; i = i + 1) { t = f(t); }
                for (let i = 0; i < 40; i = i + 1) { t = g(t); }
                return t;
            }";
        let program = Rc::new(compile(src).expect("compiles"));
        let f_ops = program.functions[program.function("f").expect("f")]
            .chunk
            .ops
            .len();
        let g_ops = program.functions[program.function("g").expect("g")]
            .chunk
            .ops
            .len();
        let per_op = 8u64;
        // Enough for the larger of the two, not for both.
        let budget = per_op * f_ops.max(g_ops) as u64 + per_op;
        let mut vm = Vm::with_config(
            program,
            JitConfig::default()
                .with_policy(Some(JitPolicy::HotSpot {
                    call_threshold: 4,
                    loop_threshold: 1_000_000,
                }))
                .with_code_cache_capacity_bytes(budget)
                .with_code_bytes_per_op(per_op),
        );
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(120)));
        let stats = vm.stats();
        assert!(stats.code_evictions >= 1, "g must evict f: {stats:?}");
        assert!(vm.code_cache_used_bytes() <= budget);
        assert!(!vm.is_jitted("f"), "f was evicted and demoted");
        assert!(vm.is_jitted("g"), "g holds the cache at the end");
    }

    #[test]
    fn function_larger_than_budget_never_compiles() {
        let src =
            "fn main(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::with_config(
            program,
            JitConfig::default()
                .with_policy(Some(JitPolicy::default()))
                .with_code_cache_capacity_bytes(4),
        );
        vm.start("main", vec![Value::Int(10_000)]).expect("starts");
        vm.run(&mut TestHost::default()).expect("runs");
        let stats = vm.stats();
        assert_eq!(stats.compiles, 0, "{stats:?}");
        assert_eq!(stats.jit_ops, 0);
        assert_eq!(vm.code_cache_used_bytes(), 0);
    }

    #[test]
    fn eviction_keeps_tier_accounting_consistent() {
        // The eviction bugfix invariant: total retired ops are identical
        // whether functions thrash in and out of the code cache or the
        // JIT is off entirely — demoted functions retire their ops in
        // the interpreter, never double-counted in `jit_ops`.
        let src = "
            fn f(n) { return n + 1; }
            fn g(n) { return n + 2; }
            fn main(x) {
                let t = 0;
                for (let i = 0; i < 30; i = i + 1) { t = f(t); t = g(t); }
                return t;
            }";
        let program = Rc::new(compile(src).expect("compiles"));
        let hot = JitPolicy::HotSpot {
            call_threshold: 2,
            loop_threshold: 1_000_000,
        };
        let run = |jit: JitConfig| {
            let mut vm = Vm::with_config(Rc::new(compile(src).expect("compiles")), jit);
            vm.start("main", vec![Value::Int(0)]).expect("starts");
            let Outcome::Done(v) = vm.run(&mut TestHost::default()).expect("runs") else {
                panic!("expected done")
            };
            (v, vm.stats())
        };
        let _ = program;
        let (v_off, s_off) = run(JitConfig::default().with_policy(Some(JitPolicy::Off)));
        let (v_thrash, s_thrash) = run(JitConfig::default()
            .with_policy(Some(hot))
            // Budget fits one tiny function at a time → constant
            // evictions as f and g alternate.
            .with_code_cache_capacity_bytes(80)
            .with_code_bytes_per_op(8));
        assert!(v_off.eq_value(&v_thrash));
        assert!(s_thrash.code_evictions > 0, "{s_thrash:?}");
        assert_eq!(
            s_off.total_ops(),
            s_thrash.total_ops(),
            "eviction must not double-count retired ops: {s_off:?} vs {s_thrash:?}"
        );
        assert_eq!(s_thrash.jit_ops + s_thrash.interp_ops, s_thrash.total_ops());
        assert!(s_thrash.opt_ops <= s_thrash.jit_ops);
    }

    #[test]
    fn snapshot_carries_ic_state_and_code_cache() {
        let src = "
            fn read(m) { return m.k; }
            fn hot(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }
            fn main(x) {
                let a = { k: 7 };
                let t = 0;
                for (let i = 0; i < 50; i = i + 1) { t = t + read(a); }
                hot(1000);
                fireworks_snapshot();
                for (let i = 0; i < 50; i = i + 1) { t = t + read(a); }
                return t + hot(100);
            }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        assert_eq!(
            vm.run(&mut TestHost::default()).expect("runs"),
            Outcome::Snapshot
        );
        let warm_ic = vm.ic_summary();
        assert!(warm_ic.mono >= 1);
        assert!(vm.code_cache_used_bytes() > 0);
        let snap = vm.snapshot_state();
        assert_eq!(snap.code_cache_used_bytes(), vm.code_cache_used_bytes());

        let mut clone = Vm::from_snapshot(&snap);
        assert_eq!(
            clone.ic_summary(),
            warm_ic,
            "IC state survives the snapshot"
        );
        assert_eq!(clone.code_cache_used_bytes(), vm.code_cache_used_bytes());
        let Outcome::Done(v) = clone.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(700 + 4950)));
        let stats = clone.stats();
        // The warmed mono IC keeps hitting after restore: no misses and
        // no deopts — the post-JIT snapshot benefit. (Tier *promotions*
        // may still happen; what must not recur is warmup-from-cold.)
        assert_eq!(stats.ic_misses, 0, "{stats:?}");
        assert!(stats.ic_hits >= 50);
        assert_eq!(stats.deopts, 0);
    }

    #[test]
    fn restored_clone_deopts_when_traffic_changes_shape() {
        // Snapshot warmed on shape A; the clone serves shape B — it
        // must deopt after restore and still produce correct results.
        let src = "
            fn read(m) { return m.k; }
            let req = null;
            fn main(x) {
                let a = { k: 1 };
                let t = 0;
                for (let i = 0; i < 50; i = i + 1) { t = t + read(a); }
                fireworks_snapshot();
                return read(req);
            }";
        let program = Rc::new(compile(src).expect("compiles"));
        let mut vm = Vm::with_policy(
            program.clone(),
            JitPolicy::HotSpot {
                call_threshold: 4,
                loop_threshold: 1_000_000,
            },
        );
        vm.start(crate::compiler::TOPLEVEL, vec![]).expect("starts");
        vm.run(&mut TestHost::default()).expect("runs");
        vm.start("main", vec![Value::Int(0)]).expect("starts");
        assert_eq!(
            vm.run(&mut TestHost::default()).expect("runs"),
            Outcome::Snapshot
        );
        assert!(vm.is_jitted("read"));
        let snap = vm.snapshot_state();

        let mut clone = Vm::from_snapshot(&snap);
        // Inject a different-shaped request into the clone's global.
        let g = clone
            .program
            .global_names
            .iter()
            .position(|g| g == "req")
            .expect("global exists");
        clone.globals[g] = TaggedValue::from_value(Value::map([
            ("k".to_string(), Value::Int(99)),
            ("trace".to_string(), Value::Null),
        ]));
        let Outcome::Done(v) = clone.run(&mut TestHost::default()).expect("runs") else {
            panic!("expected done")
        };
        assert!(v.eq_value(&Value::Int(99)));
        let stats = clone.stats();
        assert!(
            stats.deopts >= 1,
            "restore-side shape change deopts: {stats:?}"
        );
        assert!(stats.ic_misses >= 1);
    }

    #[test]
    fn heap_bytes_reflects_live_values() {
        let program = Rc::new(
            compile("let big = null; fn main(n) { big = []; for (let i = 0; i < n; i = i + 1) { push(big, \"xxxxxxxxxx\"); } return len(big); }")
                .expect("ok"),
        );
        let mut vm = Vm::new(program);
        vm.start(crate::compiler::TOPLEVEL, vec![]).expect("starts");
        vm.run(&mut TestHost::default()).expect("runs");
        let before = vm.heap_bytes();
        vm.start("main", vec![Value::Int(1000)]).expect("starts");
        vm.run(&mut TestHost::default()).expect("runs");
        assert!(vm.heap_bytes() > before + 10_000);
    }
}
