//! The Flame abstract syntax tree.

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string/array concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Short-circuit `&&`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    Or(Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Function or builtin call: `callee(args...)`.
    Call {
        /// Called function name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Indexing: `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Array literal.
    Array(Vec<Expr>),
    /// Map literal: `{ "k": v, ... }` (keys are string literals or idents).
    Map(Vec<(String, Expr)>),
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Plain variable.
    Var(String),
    /// Indexed location: `base[index] = ...`.
    Index {
        /// Indexed expression.
        base: Expr,
        /// Index expression.
        index: Expr,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`.
    Let {
        /// Variable name.
        name: String,
        /// Initialiser.
        value: Expr,
    },
    /// `target = expr;`.
    Assign {
        /// Assignment target.
        target: Target,
        /// New value.
        value: Expr,
    },
    /// Expression statement (value discarded).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { .. }` — desugared by the parser into a
    /// scoped `init` + `while`.
    For {
        /// Initialiser statement.
        init: Box<Stmt>,
        /// Condition.
        cond: Expr,
        /// Step statement.
        step: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr;` (or `return;` which yields `null`).
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
}

/// A top-level function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Whether the declaration carries the `@jit` annotation (added by the
    /// Fireworks code annotator, honoured by annotation-driven JIT
    /// policies like the Numba-style Python profile).
    pub jit_hint: bool,
}

/// A top-level item. Flame programs are a list of function declarations
/// plus optional top-level statements (run in order as the module body,
/// like a Python script).
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function declaration.
    Fn(FnDecl),
    /// A top-level statement.
    Stmt(Stmt),
}
