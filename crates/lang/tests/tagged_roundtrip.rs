//! Property tests for the NaN-boxed [`TaggedValue`] encoding: every
//! [`Value`] variant must round-trip bit-faithfully through the tagged
//! representation, including the encoding's own edge cases (NaN payloads
//! that collide with the box space, negative zero, the i48 inline-integer
//! boundaries) and heap aliasing.

use std::rc::Rc;

use fireworks_lang::{TaggedValue, Value};
use proptest::prelude::*;

/// Generates an arbitrary scalar `Value` (no heap aggregates). Floats are
/// drawn from a finite pool plus specials so equality is well-defined.
fn scalar_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Exercise both inline (i48) and boxed integer paths explicitly.
        ((-1i64 << 47)..(1i64 << 47)).prop_map(Value::Int),
        any::<i64>().prop_map(|b| Value::Float(f64::from_bits(b as u64))),
        (-1_000_000i64..1_000_000).prop_map(|n| Value::Float(n as f64 / 128.0)),
        "[a-z]{0,12}".prop_map(Value::str),
    ]
}

/// Generates a `Value` of any variant, nesting arrays and maps two deep.
fn value_strategy() -> impl Strategy<Value = Value> {
    scalar_strategy().prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::array),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(Value::map),
        ]
    })
}

/// Structural equality that, unlike `eq_value`, treats NaN as equal to
/// NaN and distinguishes `-0.0` from `0.0` — i.e. bit-level faithfulness
/// for floats, structural elsewhere.
fn bit_faithful_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            // The encoding canonicalises NaN payloads (any NaN in, the
            // canonical quiet NaN out) — NaN-ness must survive, the
            // payload need not. Every non-NaN float is bit-exact.
            if x.is_nan() || y.is_nan() {
                x.is_nan() && y.is_nan()
            } else {
                x.to_bits() == y.to_bits()
            }
        }
        (Value::Array(x), Value::Array(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| bit_faithful_eq(a, b))
        }
        (Value::Map(x), Value::Map(y)) => {
            let (x, y) = (x.borrow(), y.borrow());
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && bit_faithful_eq(va, vb))
        }
        _ => a.eq_value(b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any `Value` survives `from_value` → `to_value` unchanged.
    #[test]
    fn value_round_trips_through_tagged(v in value_strategy()) {
        let tagged = TaggedValue::from_value(v.clone());
        let back = tagged.to_value();
        prop_assert!(
            bit_faithful_eq(&v, &back),
            "round-trip changed the value: {v:?} -> {back:?}"
        );
    }

    /// `into_value` (the ownership-transferring path) agrees with
    /// `to_value` (the borrowing path).
    #[test]
    fn into_value_agrees_with_to_value(v in value_strategy()) {
        let borrowed = TaggedValue::from_value(v.clone()).to_value();
        let owned = TaggedValue::from_value(v).into_value();
        prop_assert!(bit_faithful_eq(&borrowed, &owned));
    }

    /// Every bit pattern interpreted as a float round-trips: in
    /// particular hostile NaN payloads that land inside the box-tag
    /// space must come back as NaN, never be misread as pointers.
    #[test]
    fn arbitrary_float_bits_round_trip(bits in any::<i64>()) {
        let f = f64::from_bits(bits as u64);
        let back = TaggedValue::float(f).to_value();
        match back {
            Value::Float(g) => {
                if f.is_nan() {
                    prop_assert!(g.is_nan());
                } else {
                    prop_assert_eq!(f.to_bits(), g.to_bits());
                }
            }
            other => prop_assert!(false, "float decoded as {other:?}"),
        }
    }

    /// Integers on both sides of the i48 inline window round-trip, and
    /// `as_int` reads them back whether inline or boxed.
    #[test]
    fn int_boundaries_round_trip(delta in 0i64..8, sign in any::<bool>()) {
        let boundary = 1i64 << 47;
        let candidates = [
            boundary - 1 - delta,
            boundary + delta,
            -boundary + delta,
            -boundary - 1 - delta,
            i64::MAX - delta,
            i64::MIN + delta,
            if sign { delta } else { -delta },
        ];
        for n in candidates {
            let tagged = TaggedValue::int(n);
            prop_assert_eq!(tagged.as_int(), Some(n), "as_int lost {}", n);
            match tagged.to_value() {
                Value::Int(m) => prop_assert_eq!(m, n),
                other => prop_assert!(false, "int decoded as {other:?}"),
            }
        }
    }
}

#[test]
fn negative_zero_round_trips_bit_exactly() {
    let back = TaggedValue::float(-0.0).to_value();
    let Value::Float(f) = back else {
        panic!("decoded as non-float")
    };
    assert_eq!(f.to_bits(), (-0.0f64).to_bits());
    assert!(f.is_sign_negative());
}

#[test]
fn heap_round_trip_preserves_aliasing() {
    // Tagging a heap value must not clone the heap cell: mutations made
    // through the round-tripped handle are visible through the original.
    let arr = Value::array(vec![Value::Int(1)]);
    let tagged = TaggedValue::from_value(arr.clone());
    let back = tagged.to_value();
    let (Value::Array(a), Value::Array(b)) = (&arr, &back) else {
        panic!("expected arrays")
    };
    assert!(Rc::ptr_eq(a, b), "round-trip must preserve identity");
    b.borrow_mut().push(Value::Int(2));
    assert!(arr.heap_estimate() > 0);
    assert!(a.borrow().len() == 2);
}
