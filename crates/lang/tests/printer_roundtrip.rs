//! Property test: printing any AST and re-parsing it yields the same AST
//! (`parse ∘ print = id`), over randomly generated Flame programs.

use fireworks_lang::ast::{BinOp, Expr, FnDecl, Item, Stmt, Target, UnOp};
use fireworks_lang::{lexer, parser, printer};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    // Avoid keywords and reserved names.
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "fn" | "let"
                | "if"
                | "else"
                | "while"
                | "for"
                | "return"
                | "break"
                | "continue"
                | "true"
                | "false"
                | "null"
        )
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Non-negative only: the parser never produces negative literals
        // (unary minus parses as `Unary { Neg, .. }`).
        (0i64..i64::MAX).prop_map(Expr::Int),
        // Floats restricted to values that survive text round-trips
        // exactly and are not negative (unary minus parses as Unary).
        (0u32..10_000).prop_map(|v| Expr::Float(f64::from(v) / 8.0)),
        "[ -~&&[^\"\\\\]]{0,12}".prop_map(Expr::Str),
        any::<bool>().prop_map(Expr::Bool),
        Just(Expr::Null),
        ident_strategy().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 40, 4, |inner| {
        let bin_op = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Mod),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
        ];
        prop_oneof![
            (bin_op, inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Or(Box::new(l), Box::new(r))),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone()).prop_map(
                |(op, operand)| Expr::Unary {
                    op,
                    operand: Box::new(operand),
                }
            ),
            (
                ident_strategy(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(callee, args)| Expr::Call { callee, args }),
            (inner.clone(), inner.clone()).prop_map(|(base, index)| Expr::Index {
                base: Box::new(base),
                index: Box::new(index),
            }),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Expr::Array),
            proptest::collection::vec(("[a-z]{1,6}".prop_map(String::from), inner), 0..3)
                .prop_map(Expr::Map),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (ident_strategy(), expr_strategy()).prop_map(|(name, value)| Stmt::Let { name, value }),
        (ident_strategy(), expr_strategy()).prop_map(|(name, value)| Stmt::Assign {
            target: Target::Var(name),
            value,
        }),
        (expr_strategy(), expr_strategy(), expr_strategy()).prop_map(|(base, index, value)| {
            Stmt::Assign {
                target: Target::Index { base, index },
                value,
            }
        }),
        expr_strategy().prop_map(Stmt::Expr),
        proptest::option::of(expr_strategy()).prop_map(Stmt::Return),
    ];
    leaf.prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(cond, then_body, else_body)| Stmt::If {
                    cond,
                    then_body,
                    else_body,
                }),
            (
                expr_strategy(),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(cond, body)| Stmt::While { cond, body }),
            (
                (ident_strategy(), expr_strategy()),
                expr_strategy(),
                (ident_strategy(), expr_strategy()),
                proptest::collection::vec(inner, 0..2)
            )
                .prop_map(|((iname, ival), cond, (sname, sval), body)| Stmt::For {
                    init: Box::new(Stmt::Let {
                        name: iname,
                        value: ival,
                    }),
                    cond,
                    step: Box::new(Stmt::Assign {
                        target: Target::Var(sname),
                        value: sval,
                    }),
                    body,
                }),
        ]
    })
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        (
            ident_strategy(),
            proptest::collection::vec(ident_strategy(), 0..3),
            proptest::collection::vec(stmt_strategy(), 0..4),
            any::<bool>()
        )
            .prop_map(|(name, params, body, jit_hint)| Item::Fn(FnDecl {
                name,
                params,
                body,
                jit_hint,
            })),
        stmt_strategy().prop_map(Item::Stmt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_then_parse_is_identity(items in proptest::collection::vec(item_strategy(), 1..5)) {
        let printed = printer::print_items(&items);
        let tokens = lexer::lex(&printed)
            .unwrap_or_else(|e| panic!("printed source must lex: {e}\n{printed}"));
        let reparsed = parser::parse(tokens)
            .unwrap_or_else(|e| panic!("printed source must parse: {e}\n{printed}"));
        prop_assert_eq!(&items, &reparsed, "round trip changed the AST:\n{}", printed);
    }
}
