//! Differential property tests: the JIT tier must be observationally
//! equivalent to the interpreter on randomly generated programs.

use std::rc::Rc;

use fireworks_lang::{compile, JitPolicy, NoopHost, Outcome, Value, Vm};
use proptest::prelude::*;

/// Generates a small arithmetic expression over locals `a`, `b`, `c`.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(|v| v.to_string()),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(str::to_string),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (
            inner.clone(),
            prop_oneof![Just("+"), Just("-"), Just("*")].prop_map(str::to_string),
            inner,
        )
            .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
    })
}

fn run(src: &str, arg: i64, policy: JitPolicy) -> Result<Value, String> {
    let program = Rc::new(compile(src).map_err(|e| e.to_string())?);
    let mut vm = Vm::with_policy(program, policy);
    vm.start("main", vec![Value::Int(arg)])
        .map_err(|e| e.to_string())?;
    // Resume through any snapshot points until completion.
    loop {
        match vm.run(&mut NoopHost).map_err(|e| e.to_string())? {
            Outcome::Done(v) => return Ok(v),
            Outcome::Snapshot => continue,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A hot loop over a random expression gives identical results with
    /// the JIT on (low thresholds) and off.
    #[test]
    fn jit_matches_interpreter(expr in expr_strategy(), n in 50i64..400, seed in 0i64..50) {
        let src = format!(
            "fn body(a, b, c) {{ return {expr}; }}
             fn main(n) {{
                 let t = 0;
                 for (let i = 0; i < n; i = i + 1) {{
                     t = t + body(i, i % 7, {seed});
                 }}
                 return t;
             }}"
        );
        let jit = run(
            &src,
            n,
            JitPolicy::HotSpot { call_threshold: 2, loop_threshold: 4 },
        );
        let interp = run(&src, n, JitPolicy::Off);
        prop_assert_eq!(jit, interp);
    }

    /// Snapshot/resume in the middle of a computation never changes the
    /// final result, for original and clone alike.
    #[test]
    fn snapshot_resume_is_transparent(expr in expr_strategy(), n in 10i64..120) {
        let src = format!(
            "fn body(a, b, c) {{ return {expr}; }}
             fn main(n) {{
                 let t = 0;
                 for (let i = 0; i < n; i = i + 1) {{ t = t + body(i, i, i); }}
                 fireworks_snapshot();
                 for (let i = 0; i < n; i = i + 1) {{ t = t + body(i, i, i); }}
                 return t;
             }}"
        );
        // Straight-through reference run (snapshot op is a no-op value-wise).
        let reference = run(&src, n, JitPolicy::Off).expect("reference runs");

        let program = Rc::new(compile(&src).expect("compiles"));
        let mut vm = Vm::with_policy(
            program,
            JitPolicy::HotSpot { call_threshold: 2, loop_threshold: 4 },
        );
        vm.start("main", vec![Value::Int(n)]).expect("starts");
        let out = vm.run(&mut NoopHost).expect("runs to snapshot");
        prop_assert_eq!(out, Outcome::Snapshot);
        let snap = vm.snapshot_state();

        let mut clone = Vm::from_snapshot(&snap);
        let Outcome::Done(from_clone) = clone.run(&mut NoopHost).expect("clone runs") else {
            panic!("clone must finish");
        };
        let Outcome::Done(from_original) = vm.run(&mut NoopHost).expect("original runs") else {
            panic!("original must finish");
        };
        prop_assert_eq!(&from_clone, &reference);
        prop_assert_eq!(&from_original, &reference);
    }

    /// Deopt storms (argument types flipping between int and string per
    /// call) still produce correct results.
    #[test]
    fn deopt_preserves_semantics(n in 20i64..200) {
        let src = "
            fn add(a, b) { return a + b; }
            fn main(n) {
                let ints = 0;
                let strs = \"\";
                for (let i = 0; i < n; i = i + 1) {
                    if (i % 3 == 0) {
                        strs = add(strs, \"x\");
                    } else {
                        ints = add(ints, i);
                    }
                }
                return str(ints) + \":\" + str(len(strs));
            }";
        let jit = run(src, n, JitPolicy::HotSpot { call_threshold: 2, loop_threshold: 4 });
        let interp = run(src, n, JitPolicy::Off);
        prop_assert_eq!(jit, interp);
    }
}
