//! An offline, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against upstream proptest,
//! but the build environment has no registry access, so this crate
//! re-implements the API subset those tests use: strategies (ranges,
//! `Just`, tuples, `prop_oneof!`, `prop_recursive`, collection/option
//! combinators, a tiny regex-class generator for string strategies), the
//! `proptest!` runner macro, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! - Generation only — no shrinking. A failing case reports the generated
//!   values and panics.
//! - Deterministic: the RNG seed is derived from the test's module path,
//!   name, and case index, so failures reproduce bit-identically.
//! - The regex-literal string strategy supports character classes with
//!   ranges, `&&[^...]` subtraction, and `{m,n}` repetition — exactly the
//!   forms used by this workspace's tests.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::rc::Rc;

/// Deterministic RNG used by every strategy (a SplitMix64 core, kept
/// private to avoid a dependency on the simulation crates).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an arbitrary byte string plus a case index.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::*;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chooses a follow-up strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        /// Builds a recursive strategy: `self` is the leaf, and `branch`
        /// maps a strategy for depth `d` to one for depth `d + 1`. The
        /// `_desired_size`/`_branch_size` hints are accepted for API
        /// compatibility but unused (no shrinking here).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Lean towards leaves so expected size stays bounded.
                strat = Union::new(vec![(2, leaf.clone()), (1, branch(strat).boxed())]).boxed();
            }
            strat
        }

        /// Type-erases this strategy behind a clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn ObjectStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    trait ObjectStrategy<T> {
        fn generate_obj(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ObjectStrategy<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A strategy producing one fixed (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union over same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> Union<T> {
        /// A union of `(weight, strategy)` arms. At least one arm, all
        /// weights non-zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_below(self.total);
            for (w, arm) in &self.arms {
                if pick < u64::from(*w) {
                    return arm.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights summed above")
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1024 candidates", self.whence)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// String generation from a regex-class literal: a sequence of
    /// character classes, each optionally followed by `{m,n}`/`{m}`.
    /// Classes support ranges (`a-z`), literals, escapes, and one
    /// `&&[^...]` subtraction.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let units = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &units {
                assert!(!chars.is_empty(), "empty character class in {self:?}");
                let n = *lo + rng.next_below((*hi - *lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(chars[rng.next_below(chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// Parses a pattern into `(allowed characters, min reps, max reps)`
    /// units.
    fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
        let chars: Vec<char> = pat.chars().collect();
        let mut units = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            assert_eq!(chars[i], '[', "unsupported pattern syntax in {pat:?}");
            let (mut allowed, next) = parse_class(&chars, i + 1, pat);
            i = next;
            // Optional `&&[^...]` subtraction.
            if chars.get(i) == Some(&'&') && chars.get(i + 1) == Some(&'&') {
                assert_eq!(chars.get(i + 2), Some(&'['), "bad subtraction in {pat:?}");
                assert_eq!(chars.get(i + 3), Some(&'^'), "bad subtraction in {pat:?}");
                let (banned, next) = parse_class(&chars, i + 4, pat);
                allowed.retain(|c| !banned.contains(c));
                i = next;
                assert_eq!(chars.get(i), Some(&']'), "unclosed class in {pat:?}");
                i += 1;
            }
            // Optional `{m}` / `{m,n}` repetition.
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repetition in {pat:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repetition lower bound"),
                        hi.parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            units.push((allowed, lo, hi));
        }
        units
    }

    /// Parses a class body starting after `[` (or `[^`); returns the
    /// characters and the index one past the closing `]`.
    fn parse_class(chars: &[char], mut i: usize, pat: &str) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            // Stop before a `&&` subtraction inside the class.
            if chars[i] == '&' && chars.get(i + 1) == Some(&'&') {
                return (set, i);
            }
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            // Range `c-d` (a trailing `-` is a literal).
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&d| d != ']') {
                let mut end = chars[i + 2];
                if end == '\\' {
                    i += 1;
                    end = chars[i + 2];
                }
                for code in (c as u32)..=(end as u32) {
                    set.push(char::from_u32(code).expect("valid class range"));
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unclosed character class in {pat:?}");
        (set, i + 1)
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for primitive types.

    use super::*;
    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// See [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;
    use crate::strategy::Strategy;

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::*;
    use crate::strategy::Strategy;

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Number of cases per property (the only knob this shim honours).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many generated cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! Everything the property tests import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test]` functions whose arguments are `name in strategy`
/// bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __pt_name = concat!(module_path!(), "::", stringify!($name));
                $( let $arg = $strat; )+
                for __pt_case in 0..__pt_cfg.cases {
                    let mut __pt_rng = $crate::TestRng::for_case(__pt_name, __pt_case);
                    $( let $arg =
                        $crate::strategy::Strategy::generate(&$arg, &mut __pt_rng); )+
                    let __pt_vals = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __pt_result = (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__pt_msg) = __pt_result {
                        panic!(
                            "property '{}' failed on case {}:\n  {}\n  with {}",
                            __pt_name, __pt_case, __pt_msg, __pt_vals
                        );
                    }
                }
            }
        )*
    };
}

/// A weighted or unweighted union of strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $w:literal => $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($w as u32, $crate::strategy::Strategy::boxed($s)) ),+
        ])
    };
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($s)) ),+
        ])
    };
}

/// Fails the enclosing property case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __pt_l = $a;
        let __pt_r = $b;
        if !(__pt_l == __pt_r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                stringify!($a),
                stringify!($b),
                __pt_l,
                __pt_r
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __pt_l = $a;
        let __pt_r = $b;
        if !(__pt_l == __pt_r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                __pt_l,
                __pt_r
            ));
        }
    }};
}
