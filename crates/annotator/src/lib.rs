//! The Fireworks code annotator (paper §3.2, Fig. 3).
//!
//! Given a user's serverless function source, the annotator produces a
//! transformed program that drives the Fireworks install/invoke protocol:
//!
//! 1. every user function gets the `@jit` annotation (so
//!    annotation-driven runtimes compile them — Numba's
//!    `@jit(cache=True)`, and the V8 profile's equivalent);
//! 2. a generated `__fireworks_jit()` warms the entry function with
//!    default parameters, triggering JIT compilation of the whole call
//!    graph;
//! 3. a generated `__fireworks_main()` calls `__fireworks_jit()`, then
//!    `fireworks_snapshot()` (the VM-snapshot request to the host), and —
//!    after the snapshot point, i.e. on every restore — reads the microVM
//!    id from MMDS, fetches the invocation parameters from the per-
//!    instance message-bus topic, and enters the user's function.
//!
//! The transformation is source-to-source like the paper's annotator: it
//! parses Flame, rewrites the AST, and prints Flame back out.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use fireworks_lang::ast::{Expr, FnDecl, Item, Stmt};
use fireworks_lang::error::LangError;
use fireworks_lang::{lexer, parser, printer};

/// Name of the generated installer/invoker entry point.
pub const FIREWORKS_MAIN: &str = "__fireworks_main";
/// Name of the generated JIT-warming function.
pub const FIREWORKS_JIT: &str = "__fireworks_jit";
/// Host call that returns representative default parameters for warm-up.
pub const DEFAULT_PARAMS_CALL: &str = "default_params";
/// Host call that reads a key from the microVM metadata service.
pub const MMDS_CALL: &str = "mmds_get";
/// Host call that consumes one record from a message-bus topic.
pub const BUS_CONSUME_CALL: &str = "bus_consume";

/// Configuration for one annotation run.
#[derive(Debug, Clone)]
pub struct AnnotationConfig {
    /// The user's entry function (must exist and take one parameter).
    pub entry: String,
    /// Prefix of the per-instance parameter topic; the instance id from
    /// MMDS is appended.
    pub topic_prefix: String,
    /// Warm-up calls made by `__fireworks_jit()`. Two are needed so that
    /// annotation-driven compilation sees type feedback from the first
    /// call (the analogue of Numba's type inference).
    pub warmup_calls: u32,
}

impl Default for AnnotationConfig {
    fn default() -> Self {
        AnnotationConfig {
            entry: "main".to_string(),
            topic_prefix: "params-".to_string(),
            warmup_calls: 2,
        }
    }
}

/// The annotated program.
#[derive(Debug, Clone)]
pub struct Annotated {
    /// Transformed source text.
    pub source: String,
    /// Entry point to run at install time ([`FIREWORKS_MAIN`]).
    pub entry: String,
    /// Number of user functions that received the `@jit` annotation.
    pub annotated_functions: usize,
}

/// Annotates user source for the Fireworks protocol.
///
/// # Errors
///
/// Fails if the source does not parse, the entry function is missing or
/// does not take exactly one parameter, or the source already defines
/// reserved `__fireworks_*` names.
///
/// # Examples
///
/// ```
/// use fireworks_annotator::{annotate, AnnotationConfig};
///
/// let user = r#"fn main(params) { return params["n"]; }"#;
/// let out = annotate(user, &AnnotationConfig::default()).expect("annotates");
/// assert!(out.source.contains("@jit"));
/// assert!(out.source.contains("fireworks_snapshot()"));
/// assert_eq!(out.entry, "__fireworks_main");
/// ```
pub fn annotate(source: &str, config: &AnnotationConfig) -> Result<Annotated, LangError> {
    let tokens = lexer::lex(source)?;
    let mut items = parser::parse(tokens)?;

    let mut annotated_functions = 0;
    let mut entry_found = false;
    for item in &mut items {
        if let Item::Fn(decl) = item {
            if decl.name.starts_with("__fireworks") {
                return Err(LangError::compile(format!(
                    "`{}` uses a reserved Fireworks name",
                    decl.name
                )));
            }
            if decl.name == config.entry {
                entry_found = true;
                if decl.params.len() != 1 {
                    return Err(LangError::compile(format!(
                        "entry `{}` must take exactly one parameter (the request), has {}",
                        decl.name,
                        decl.params.len()
                    )));
                }
            }
            decl.jit_hint = true;
            annotated_functions += 1;
        }
    }
    if !entry_found {
        return Err(LangError::compile(format!(
            "entry function `{}` not found",
            config.entry
        )));
    }

    items.push(Item::Fn(make_jit_warmer(config)));
    items.push(Item::Fn(make_fireworks_main(config)));

    Ok(Annotated {
        source: printer::print_items(&items),
        entry: FIREWORKS_MAIN.to_string(),
        annotated_functions,
    })
}

/// Builds `__fireworks_jit()`: warm-up calls of the entry with default
/// parameters (Fig. 3, lines 7–8).
fn make_jit_warmer(config: &AnnotationConfig) -> FnDecl {
    let call_entry = Stmt::Expr(Expr::Call {
        callee: config.entry.clone(),
        args: vec![Expr::Call {
            callee: DEFAULT_PARAMS_CALL.to_string(),
            args: vec![],
        }],
    });
    // `let w = 0; while (w < warmup) { entry(default_params()); w = w + 1; }`
    let body = vec![
        Stmt::Let {
            name: "w".to_string(),
            value: Expr::Int(0),
        },
        Stmt::While {
            cond: Expr::Binary {
                op: fireworks_lang::ast::BinOp::Lt,
                lhs: Box::new(Expr::Var("w".to_string())),
                rhs: Box::new(Expr::Int(i64::from(config.warmup_calls))),
            },
            body: vec![
                call_entry,
                Stmt::Assign {
                    target: fireworks_lang::ast::Target::Var("w".to_string()),
                    value: Expr::Binary {
                        op: fireworks_lang::ast::BinOp::Add,
                        lhs: Box::new(Expr::Var("w".to_string())),
                        rhs: Box::new(Expr::Int(1)),
                    },
                },
            ],
        },
    ];
    FnDecl {
        name: FIREWORKS_JIT.to_string(),
        params: vec![],
        body,
        jit_hint: false,
    }
}

/// Builds `__fireworks_main()` (Fig. 3, lines 17–29).
fn make_fireworks_main(config: &AnnotationConfig) -> FnDecl {
    let body = vec![
        // First it performs JIT compilation.
        Stmt::Expr(Expr::Call {
            callee: FIREWORKS_JIT.to_string(),
            args: vec![],
        }),
        // Then it creates a VM snapshot. Execution resumes here on every
        // restore.
        Stmt::Expr(Expr::Call {
            callee: "fireworks_snapshot".to_string(),
            args: vec![],
        }),
        // Upon invocation, it first gets its instance id and parameters.
        Stmt::Let {
            name: "fc_id".to_string(),
            value: Expr::Call {
                callee: MMDS_CALL.to_string(),
                args: vec![Expr::Str("instance-id".to_string())],
            },
        },
        Stmt::Let {
            name: "user_params".to_string(),
            value: Expr::Call {
                callee: BUS_CONSUME_CALL.to_string(),
                args: vec![Expr::Binary {
                    op: fireworks_lang::ast::BinOp::Add,
                    lhs: Box::new(Expr::Str(config.topic_prefix.clone())),
                    rhs: Box::new(Expr::Var("fc_id".to_string())),
                }],
            },
        },
        // Then it starts the entry point of the serverless function.
        Stmt::Return(Some(Expr::Call {
            callee: config.entry.clone(),
            args: vec![Expr::Var("user_params".to_string())],
        })),
    ];
    FnDecl {
        name: FIREWORKS_MAIN.to_string(),
        params: vec![],
        body,
        jit_hint: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_lang::compile;

    const USER_SRC: &str = r#"
        fn helper(x) { return x * 2; }
        fn main(params) { return helper(params["n"]); }
    "#;

    #[test]
    fn annotated_source_compiles() {
        let out = annotate(USER_SRC, &AnnotationConfig::default()).expect("annotates");
        let program = compile(&out.source).expect("compiles");
        assert!(program.function(FIREWORKS_MAIN).is_some());
        assert!(program.function(FIREWORKS_JIT).is_some());
        assert!(program.function("main").is_some());
        assert!(program.function("helper").is_some());
    }

    #[test]
    fn all_user_functions_get_jit_hint() {
        let out = annotate(USER_SRC, &AnnotationConfig::default()).expect("annotates");
        let program = compile(&out.source).expect("compiles");
        for name in ["main", "helper"] {
            let idx = program.function(name).expect("exists");
            assert!(program.functions[idx].jit_hint, "{name} should be @jit");
        }
        // Generated plumbing is not annotated.
        for name in [FIREWORKS_MAIN, FIREWORKS_JIT] {
            let idx = program.function(name).expect("exists");
            assert!(!program.functions[idx].jit_hint);
        }
        assert_eq!(out.annotated_functions, 2);
    }

    #[test]
    fn missing_entry_is_an_error() {
        let err = annotate("fn other(x) { }", &AnnotationConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn wrong_entry_arity_is_an_error() {
        let err = annotate("fn main(a, b) { }", &AnnotationConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn reserved_names_are_rejected() {
        let err = annotate(
            "fn __fireworks_evil() { } fn main(p) { }",
            &AnnotationConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn custom_entry_and_topic_are_respected() {
        let cfg = AnnotationConfig {
            entry: "handler".to_string(),
            topic_prefix: "args-".to_string(),
            warmup_calls: 3,
        };
        let out = annotate("fn handler(req) { return req; }", &cfg).expect("annotates");
        assert!(out.source.contains("handler(user_params)"));
        assert!(out.source.contains("\"args-\""));
        assert!(out.source.contains("w < 3"));
    }

    #[test]
    fn snapshot_point_is_after_warmup_and_before_param_fetch() {
        let out = annotate(USER_SRC, &AnnotationConfig::default()).expect("annotates");
        let src = &out.source;
        let jit_pos = src.find("__fireworks_jit()").expect("warmer call");
        let snap_pos = src.find("fireworks_snapshot()").expect("snapshot call");
        let params_pos = src.find("bus_consume(").expect("param fetch");
        // Find the *call* inside __fireworks_main, which is after the
        // declaration of __fireworks_jit.
        let call_pos = src[jit_pos + 1..]
            .find("__fireworks_jit()")
            .map(|p| p + jit_pos + 1)
            .expect("call site");
        assert!(call_pos < snap_pos, "JIT before snapshot");
        assert!(snap_pos < params_pos, "snapshot before param fetch");
    }
}
