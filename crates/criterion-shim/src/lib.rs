//! An offline, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the API subset `benches/mechanisms.rs` uses: `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Bencher::iter` /
//! `Bencher::iter_batched`, throughput annotation, and the `--test` CLI
//! mode CI invokes (`cargo bench -- --test` runs every benchmark once).
//!
//! It makes no statistical claims: each benchmark runs a fixed, small
//! number of iterations and prints a rough mean wall-clock time.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Iterations per benchmark in normal mode (1 in `--test` mode).
const ITERS: u32 = 10;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` runs each
    /// benchmark exactly once, as upstream criterion does).
    pub fn from_args() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            _throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.test_mode, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput (printed, not analysed).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self._throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.criterion.test_mode, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: if test_mode { 1 } else { ITERS },
        total_nanos: 0,
        measured: 0,
    };
    f(&mut b);
    if b.measured > 0 {
        let mean = b.total_nanos / u128::from(b.measured);
        println!("  {name}: ~{mean} ns/iter ({} iters)", b.measured);
    } else {
        println!("  {name}: no measurements");
    }
}

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    iters: u32,
    total_nanos: u128,
    measured: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            let out = routine();
            self.total_nanos += t0.elapsed().as_nanos();
            self.measured += 1;
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.total_nanos += t0.elapsed().as_nanos();
            self.measured += 1;
            drop(out);
        }
    }
}

/// Batch sizing hint (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; one per iteration.
    SmallInput,
    /// Larger inputs; identical behaviour in this shim.
    LargeInput,
}

/// Per-iteration work annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// An opaque value barrier (no-op strong enough for a shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
