//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure (see
//! DESIGN.md's experiment index); this library holds the common sweep and
//! formatting code. All latencies are virtual time, so every run prints
//! identical numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod scale;

use fireworks_baselines::{FirecrackerPlatform, GvisorPlatform, OpenWhiskPlatform, SnapshotPolicy};
use fireworks_core::api::{Invocation, InvokeRequest, Platform, StartMode};
use fireworks_core::env::PlatformEnv;
use fireworks_core::{fid, FireworksPlatform};
use fireworks_lang::Value;
use fireworks_runtime::RuntimeKind;
use fireworks_sim::stats::geomean;
use fireworks_sim::Nanos;
use fireworks_workloads::faasdom::Bench;

/// One bar of a latency figure: a platform/start-mode label with the
/// three-way breakdown.
#[derive(Debug, Clone)]
pub struct LatencyBar {
    /// Bar label, e.g. `"openwhisk (c)"`.
    pub label: String,
    /// Start-up time.
    pub startup: Nanos,
    /// Execution time.
    pub exec: Nanos,
    /// Everything else.
    pub other: Nanos,
}

impl LatencyBar {
    /// Builds a bar from an invocation.
    pub fn from_invocation(label: impl Into<String>, inv: &Invocation) -> Self {
        LatencyBar {
            label: label.into(),
            startup: inv.breakdown.startup,
            exec: inv.breakdown.exec,
            other: inv.breakdown.other,
        }
    }

    /// End-to-end latency.
    pub fn total(&self) -> Nanos {
        self.startup + self.exec + self.other
    }
}

/// Prints a latency table with a ratio column against the last row
/// (Fireworks, by convention).
pub fn print_latency_table(title: &str, bars: &[LatencyBar]) {
    println!("{title}");
    println!(
        "  {:<24} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "platform", "startup", "exec", "others", "total", "vs fw"
    );
    let reference = bars.last().map(|b| b.total()).unwrap_or(Nanos::ZERO);
    for bar in bars {
        println!(
            "  {:<24} {:>12} {:>12} {:>12} {:>12} {:>9.1}x",
            bar.label,
            format!("{}", bar.startup),
            format!("{}", bar.exec),
            format!("{}", bar.other),
            format!("{}", bar.total()),
            bar.total().ratio(reference),
        );
    }
}

/// The standard platform sweep of Figs. 6 and 7: OpenWhisk, gVisor, and
/// Firecracker each cold and warm, then Fireworks. Every platform gets a
/// pristine host so results are independent.
pub fn faasdom_bars(bench: Bench, runtime: RuntimeKind) -> Vec<LatencyBar> {
    let spec = bench.paper_spec(runtime);
    let args = bench.paper_params();
    let function = fid(&spec.name);
    let req = |mode: StartMode| InvokeRequest::new(function, args.deep_clone()).with_mode(mode);
    let mut bars = Vec::new();

    {
        let mut p = OpenWhiskPlatform::new(PlatformEnv::default_env());
        p.install(&spec).expect("install openwhisk");
        let cold = p.invoke(&req(StartMode::Cold)).expect("cold");
        bars.push(LatencyBar::from_invocation("openwhisk (c)", &cold));
        let warm = p.invoke(&req(StartMode::Warm)).expect("warm");
        bars.push(LatencyBar::from_invocation("openwhisk (w)", &warm));
    }
    {
        let mut p = GvisorPlatform::new(PlatformEnv::default_env());
        p.install(&spec).expect("install gvisor");
        let cold = p.invoke(&req(StartMode::Cold)).expect("cold");
        bars.push(LatencyBar::from_invocation("gvisor (c)", &cold));
        let warm = p.invoke(&req(StartMode::Warm)).expect("warm");
        bars.push(LatencyBar::from_invocation("gvisor (w)", &warm));
    }
    {
        let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
        p.install(&spec).expect("install firecracker");
        let cold = p.invoke(&req(StartMode::Cold)).expect("cold");
        bars.push(LatencyBar::from_invocation("firecracker (c)", &cold));
        let warm = p.invoke(&req(StartMode::Warm)).expect("warm");
        bars.push(LatencyBar::from_invocation("firecracker (w)", &warm));
    }
    {
        let mut p = FireworksPlatform::new(PlatformEnv::default_env());
        p.install(&spec).expect("install fireworks");
        let inv = p.invoke(&req(StartMode::Auto)).expect("invoke");
        bars.push(LatencyBar::from_invocation("fireworks (both)", &inv));
    }
    bars
}

/// Folds per-benchmark bars into the geometric-mean panel of Fig. 6(e) /
/// Fig. 7(e): for each bar label, the geomean of its totals across
/// benchmarks (components are geomeaned separately for display).
pub fn geomean_bars(per_bench: &[Vec<LatencyBar>]) -> Vec<LatencyBar> {
    let n_labels = per_bench.first().map(Vec::len).unwrap_or(0);
    (0..n_labels)
        .map(|i| {
            let startup: Vec<Nanos> = per_bench.iter().map(|bars| bars[i].startup).collect();
            let exec: Vec<Nanos> = per_bench.iter().map(|bars| bars[i].exec).collect();
            let other: Vec<Nanos> = per_bench.iter().map(|bars| bars[i].other).collect();
            LatencyBar {
                label: per_bench[0][i].label.clone(),
                startup: geomean(&startup),
                exec: geomean(&exec),
                other: geomean(&other),
            }
        })
        .collect()
}

/// Runs the full Fig. 6 (Node) or Fig. 7 (Python) sweep and prints all
/// five panels.
pub fn print_faasdom_figure(figure: &str, runtime: RuntimeKind) {
    println!(
        "=== {figure}: FaaSdom latency, {} runtime ===",
        runtime.name()
    );
    println!("(c = cold start, w = warm start; Fireworks has no cold/warm split)\n");
    let mut per_bench = Vec::new();
    for (panel, bench) in ["(a)", "(b)", "(c)", "(d)"].iter().zip(Bench::ALL) {
        let bars = faasdom_bars(bench, runtime);
        print_latency_table(&format!("{figure}{panel} {}", bench.name()), &bars);
        println!();
        per_bench.push(bars);
    }
    let gm = geomean_bars(&per_bench);
    print_latency_table(&format!("{figure}(e) geometric mean"), &gm);
}

/// Builds the `{"n", "reps"}`-style argument maps used by several
/// binaries.
pub fn map_args(entries: &[(&str, i64)]) -> Value {
    Value::map(entries.iter().map(|(k, v)| (k.to_string(), Value::Int(*v))))
}

/// Formats a byte count as MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_bars_folds_componentwise() {
        let mk = |t: u64| LatencyBar {
            label: "x".into(),
            startup: Nanos::from_millis(t),
            exec: Nanos::from_millis(2 * t),
            other: Nanos::from_millis(t),
        };
        let folded = geomean_bars(&[vec![mk(1)], vec![mk(100)]]);
        assert_eq!(folded.len(), 1);
        // geomean(1, 100) = 10.
        assert_eq!(folded[0].startup.as_millis(), 10);
        assert_eq!(folded[0].exec.as_millis(), 20);
    }

    #[test]
    fn map_args_builds_int_maps() {
        let v = map_args(&[("n", 5), ("reps", 2)]);
        let Value::Map(m) = &v else { panic!("map") };
        assert_eq!(m.borrow()["n"], Value::Int(5));
        assert_eq!(m.borrow()["reps"], Value::Int(2));
    }

    #[test]
    fn latency_bar_total() {
        let bar = LatencyBar {
            label: "x".into(),
            startup: Nanos::from_millis(1),
            exec: Nanos::from_millis(2),
            other: Nanos::from_millis(3),
        };
        assert_eq!(bar.total(), Nanos::from_millis(6));
    }
}
