//! Cluster sweep: routing policy × host count × arrival rate, measured
//! with real concurrent invocations on a multi-host cluster.
//!
//! Every host's post-JIT snapshot cache is bounded to two snapshots
//! (§6-style disk budget), and the request mix spans eight functions —
//! more than any single host can keep hot. Spraying requests round-robin
//! therefore thrashes every host's LRU cache: most starts must rebuild
//! the snapshot from source, seconds of virtual time charged to start-up
//! latency. Snapshot-locality affinity routing keeps each function
//! pinned to the few hosts that already hold it, so the same schedule
//! sees mostly cache-hit restores. The sweep quantifies that gap per
//! policy, host count, and offered load, and asserts the headline:
//! locality routing beats round-robin on p99 start latency at the
//! highest swept rate on ≥ 4 hosts.
//!
//! A second phase wires the engine's retain/density machinery through
//! the cluster: waves of concurrent clones are admitted (and retained)
//! until every host passes its swap threshold, reproducing the §5.4
//! consolidation experiment cluster-wide — sustained clones scale with
//! host count.
//!
//! Output is a single JSON document on stdout, a pure function of the
//! seed: two same-seed runs are byte-identical (CI diffs them).
//!
//! Usage: `cluster_sweep [seed]` (default 42).

use fireworks_core::cluster::{
    Cluster, ClusterConfig, ClusterReport, LeastLoaded, LocalityAffinity, RoundRobin, Router,
};
use fireworks_core::engine::CompletionPolicy;
use fireworks_core::env::EnvConfig;
use fireworks_core::{fid, FireworksPlatform, HostId, PlatformConfig, ResidentClone};
use fireworks_lang::Value;
use fireworks_obs::LogHistogram;
use fireworks_runtime::RuntimeKind;
use fireworks_sim::Nanos;
use fireworks_workloads::arrivals::{burst, poisson_schedule};
use fireworks_workloads::faasdom::Bench;

/// Invoker slots per host.
const SLOTS_PER_HOST: usize = 4;
/// Functions in the request mix — more than one host's cache can hold.
const FUNCTIONS: usize = 8;
/// Requests per swept point.
const REQUESTS: usize = 160;
/// Swept host counts.
const HOSTS: [usize; 2] = [2, 4];
/// Swept mean inter-arrival times (ms), light to heavy load.
const RATES_MS: [u64; 3] = [50, 20, 8];
/// Per-host snapshot-cache budget: room for two ~155 MiB post-JIT
/// snapshots, an eighth of the installed mix.
const CACHE_BUDGET: u64 = 340 << 20;

/// Host RAM for the density phase; swap onset at 60% (vm.swappiness=60).
const DENSITY_RAM: u64 = 2 << 30;
/// Clones admitted per wave in the density phase.
const DENSITY_WAVE: usize = 8;
/// Safety cap on density waves.
const DENSITY_MAX_WAVES: usize = 120;

/// A compute-light function: installs fast, yet its snapshot carries the
/// full runtime image, so cache pressure is real.
const SRC: &str = "
    fn main(params) {
        let n = params[\"n\"];
        let t = 0;
        for (let i = 0; i < n; i = i + 1) { t = t + i; }
        return t;
    }";

fn mix() -> Vec<(String, Value)> {
    (0..FUNCTIONS)
        .map(|i| {
            (
                format!("svc-{i}"),
                Value::map([("n".to_string(), Value::Int(2_000))]),
            )
        })
        .collect()
}

fn make_router(policy: &str) -> Box<dyn Router> {
    match policy {
        "round_robin" => Box::new(RoundRobin::new()),
        "least_loaded" => Box::new(LeastLoaded::new()),
        "locality" => Box::new(LocalityAffinity::new()),
        other => unreachable!("unknown policy {other}"),
    }
}

/// One swept point's measurements.
struct Point {
    policy: &'static str,
    hosts: usize,
    rate_ms: u64,
    p50_start: Nanos,
    p99_start: Nanos,
    locality_hits: u64,
    rebalances: u64,
    peak_cluster_queue: usize,
    events_processed: u64,
}

/// Streams `samples` into a mergeable log-bucketed sketch (see
/// `fireworks_obs::LogHistogram`): no collect-and-sort, bounded memory,
/// quantiles within one bucket (≤ 2⁻⁵ relative error) of exact.
fn sketch_of(samples: impl IntoIterator<Item = Nanos>) -> LogHistogram {
    let mut h = LogHistogram::new();
    for s in samples {
        h.observe(s.as_nanos());
    }
    h
}

/// Builds an `hosts`-host cluster with the bounded cache, installs the
/// mix, and drives one rate point's schedule under `policy`.
fn run_point(policy: &'static str, hosts: usize, rate_ms: u64, seed: u64) -> Point {
    let mut config = ClusterConfig::new(hosts, SLOTS_PER_HOST);
    config.platform = PlatformConfig::builder().cache_budget(CACHE_BUDGET).build();
    let mut cluster = Cluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    });
    let mix = mix();
    for (name, args) in &mix {
        let spec = fireworks_core::api::FunctionSpec::new(
            name,
            SRC,
            RuntimeKind::NodeLike,
            args.deep_clone(),
        );
        cluster.install(&spec).expect("install on every host");
    }
    let interned: Vec<(fireworks_core::FunctionId, Value)> =
        mix.iter().map(|(n, a)| (fid(n), a.deep_clone())).collect();
    let schedule = poisson_schedule(
        seed.wrapping_add(rate_ms),
        REQUESTS,
        Nanos::from_millis(rate_ms),
        &interned,
    );
    let mut router = make_router(policy);
    let report = cluster.run(router.as_mut(), &schedule);
    let starts = sketch_of(report.completions.iter().map(|c| {
        c.start_latency()
            .unwrap_or_else(|| panic!("fault-free sweep: {:?}", c.result))
    }));
    Point {
        policy,
        hosts,
        rate_ms,
        p50_start: Nanos::from_nanos(starts.quantile(50.0)),
        p99_start: Nanos::from_nanos(starts.quantile(99.0)),
        locality_hits: report.locality_hits,
        rebalances: report.rebalances,
        peak_cluster_queue: report.peak_cluster_queue_depth,
        events_processed: cluster.events_processed(),
    }
}

/// Admits waves of retained clones through an `hosts`-host cluster until
/// every host passes its swap threshold; returns the sustained
/// cluster-wide clone count.
fn density(hosts: usize) -> usize {
    let mut config = ClusterConfig::new(hosts, DENSITY_WAVE);
    config.env = EnvConfig {
        ram_bytes: DENSITY_RAM,
        swappiness: 60,
        ..EnvConfig::default()
    };
    config.completion = CompletionPolicy::Retain;
    let mut cluster = Cluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    });
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.request_params();
    cluster.install(&spec).expect("install on every host");
    let all_swapping = |c: &Cluster<FireworksPlatform>| {
        (0..hosts).all(|h| c.host_env(HostId::from_index(h)).host_mem.is_swapping())
    };
    let mut resident: Vec<(HostId, ResidentClone)> = Vec::new();
    let mut router = LeastLoaded::new();
    for _ in 0..DENSITY_MAX_WAVES {
        if all_swapping(&cluster) {
            break;
        }
        let wave = burst(fid(&spec.name), &args, DENSITY_WAVE, cluster.clock().now());
        let report: ClusterReport<ResidentClone> = cluster.run(&mut router, &wave);
        for c in &report.completions {
            assert!(c.result.is_ok(), "density waves are fault-free");
        }
        resident.extend(report.retained);
    }
    // Count only clones on hosts *before* their swap onset: drop the
    // last-admitted clone per swapping host, as load_sweep does.
    let over = (0..hosts)
        .filter(|h| {
            cluster
                .host_env(HostId::from_index(*h))
                .host_mem
                .is_swapping()
        })
        .count();
    resident.len().saturating_sub(over)
}

fn main() {
    let seed = match std::env::args().nth(1) {
        None => 42,
        Some(arg) => match arg.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed must be a non-negative integer, got {arg:?}");
                eprintln!("usage: cluster_sweep [seed]");
                std::process::exit(2);
            }
        },
    };

    let wall = std::time::Instant::now();
    let mut points = Vec::new();
    for policy in ["round_robin", "least_loaded", "locality"] {
        for hosts in HOSTS {
            for rate_ms in RATES_MS {
                points.push(run_point(policy, hosts, rate_ms, seed));
            }
        }
    }
    let events: u64 = points.iter().map(|p| p.events_processed).sum();
    // Wall-clock throughput is machine-dependent: stderr only, so
    // stdout stays byte-identical across runs.
    eprintln!(
        "{{\"bench\": \"cluster_sweep\", \"events\": {events}, \"events_per_sec\": {:.0}}}",
        events as f64 / wall.elapsed().as_secs_f64().max(1e-9)
    );

    let fw_density: Vec<(usize, usize)> = HOSTS.iter().map(|&h| (h, density(h))).collect();

    // The headline claim: at the highest swept rate on the most hosts,
    // locality-affinity routing beats round-robin on p99 start latency.
    let max_hosts = *HOSTS.iter().max().expect("swept hosts");
    let max_rate = *RATES_MS.iter().min().expect("swept rates");
    let p99_of = |policy: &str| {
        points
            .iter()
            .find(|p| p.policy == policy && p.hosts == max_hosts && p.rate_ms == max_rate)
            .expect("swept point")
            .p99_start
    };
    let (rr_p99, loc_p99) = (p99_of("round_robin"), p99_of("locality"));
    assert!(
        loc_p99 < rr_p99,
        "locality p99 {loc_p99} must beat round-robin p99 {rr_p99} \
         at {max_rate}ms mean inter-arrival on {max_hosts} hosts"
    );

    // Density must scale with host count: the widest cluster sustains
    // proportionally more clones than the narrowest.
    let (h_lo, d_lo) = fw_density[0];
    let (h_hi, d_hi) = *fw_density.last().expect("density points");
    assert!(
        d_hi as f64 >= d_lo as f64 * (h_hi as f64 / h_lo as f64) * 0.8,
        "density must scale with hosts: {d_lo} clones on {h_lo} vs {d_hi} on {h_hi}"
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"slots_per_host\": {SLOTS_PER_HOST},\n  \"functions\": {FUNCTIONS},\n  \"requests\": {REQUESTS},\n  \"cache_budget_bytes\": {CACHE_BUDGET},\n"
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"hosts\": {}, \"rate_ms\": {}, \"p50_start_ns\": {}, \"p99_start_ns\": {}, \"locality_hits\": {}, \"rebalances\": {}, \"peak_cluster_queue\": {}, \"events_processed\": {}}}{}\n",
            p.policy,
            p.hosts,
            p.rate_ms,
            p.p50_start.as_nanos(),
            p.p99_start.as_nanos(),
            p.locality_hits,
            p.rebalances,
            p.peak_cluster_queue,
            p.events_processed,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"density\": [\n");
    for (i, (hosts, clones)) in fw_density.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"hosts\": {hosts}, \"ram_per_host_bytes\": {DENSITY_RAM}, \"sustained_clones\": {clones}}}{}\n",
            if i + 1 < fw_density.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"headline\": {{\"hosts\": {max_hosts}, \"rate_ms\": {max_rate}, \"round_robin_p99_ns\": {}, \"locality_p99_ns\": {}, \"p99_ratio\": {:.2}}}\n",
        rr_p99.as_nanos(),
        loc_p99.as_nanos(),
        rr_p99.ratio(loc_p99)
    ));
    out.push_str("}\n");

    fireworks_obs::json::validate(&out).expect("cluster_sweep emits valid JSON");
    print!("{out}");
}
