//! Dedup sweep: content-addressed snapshot storage measured two ways.
//!
//! **Dedup ratio curve.** One host installs 1..=8 functions that share a
//! runtime (Node-like profile, distinct user code). Flat storage pays
//! the full snapshot file per function; the chunk store pays each
//! distinct chunk once, so the logical/unique byte ratio grows with
//! every function added — the runtime image, JIT scaffolding, and boot
//! pages are shared chunks. Asserted: the ratio never shrinks as
//! functions are added and exceeds 1.5× at eight functions.
//!
//! **Delta vs rebuild.** Two identically-shaped clusters (home-host
//! installs, locality routing, same schedule) differ in one bit:
//! whether a remote miss may fetch its missing chunks from a mesh peer
//! (`delta_fetch`) or must rebuild the snapshot from source. Under load
//! the home hosts saturate and requests overflow to hosts that hold
//! only the shared chunks; the delta arm ships the small per-function
//! remainder over the simulated network (overlapped with restore-side
//! work), the rebuild arm pays install-grade boot + JIT. Asserted:
//! the delta arm's p99 start latency is strictly below the rebuild
//! arm's at every swept arrival rate.
//!
//! Output is a single JSON document on stdout, a pure function of the
//! seed: two same-seed runs are byte-identical (CI diffs them).
//!
//! Usage: `dedup_sweep [seed]` (default 42).

use fireworks_core::api::{FunctionSpec, Platform};
use fireworks_core::cluster::{Cluster, ClusterConfig, LocalityAffinity};
use fireworks_core::env::PlatformEnv;
use fireworks_core::{fid, FireworksPlatform, FunctionId, PlatformConfig, SnapshotStorePolicy};
use fireworks_lang::Value;
use fireworks_runtime::RuntimeKind;
use fireworks_sim::Nanos;
use fireworks_workloads::arrivals::poisson_schedule;

/// Hosts in the delta-vs-rebuild clusters.
const HOSTS: usize = 3;
/// Invoker slots per host — small, so home hosts saturate and requests
/// overflow to non-holding hosts (the remote-miss traffic under test).
const SLOTS_PER_HOST: usize = 2;
/// Functions sharing one runtime.
const FUNCTIONS: usize = 8;
/// Requests per swept point.
const REQUESTS: usize = 120;
/// Swept mean inter-arrival times (ms), light to heavy load. Even the
/// lightest rate outpaces the home hosts' slot capacity, so every point
/// sees overflow placements (remote misses) — the traffic under test.
const RATES_MS: [u64; 3] = [10, 5, 2];

/// Distinct user code per function (the `i * …` constant differs), so
/// the per-function heap pages diverge while the runtime image, JIT
/// scaffolding, and boot pages stay chunk-identical.
fn src(i: usize) -> String {
    format!(
        "
    fn main(params) {{
        let n = params[\"n\"];
        let t = {i};
        for (let j = 0; j < n; j = j + 1) {{ t = t + j * {}; }}
        return t;
    }}",
        i + 1
    )
}

fn mix() -> Vec<(String, String, Value)> {
    (0..FUNCTIONS)
        .map(|i| {
            (
                format!("svc-{i}"),
                src(i),
                Value::map([("n".to_string(), Value::Int(2_000))]),
            )
        })
        .collect()
}

fn percentile(sorted: &[Nanos], p: f64) -> Nanos {
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx]
}

/// One point on the dedup-ratio curve: a fresh host with `count`
/// installed functions.
struct RatioPoint {
    functions: usize,
    unique_bytes: u64,
    logical_bytes: u64,
    ratio: f64,
}

fn ratio_point(count: usize) -> RatioPoint {
    let mut p = FireworksPlatform::with_config(
        PlatformEnv::default_env(),
        PlatformConfig::builder()
            .snapshot_store(SnapshotStorePolicy::dedup())
            .build(),
    );
    for (name, source, args) in mix().into_iter().take(count) {
        let spec = FunctionSpec::new(&name, &source, RuntimeKind::NodeLike, args);
        p.install(&spec).expect("install");
    }
    let stats = p.chunk_stats().expect("dedup store attached");
    RatioPoint {
        functions: count,
        unique_bytes: stats.unique_bytes,
        logical_bytes: stats.logical_bytes,
        ratio: stats.logical_bytes as f64 / stats.unique_bytes as f64,
    }
}

/// One swept point's measurements for one arm.
struct Point {
    arm: &'static str,
    rate_ms: u64,
    p50_start: Nanos,
    p99_start: Nanos,
    delta_fetches: u64,
    delta_fallbacks: u64,
    locality_hits: u64,
    events_processed: u64,
}

/// Drives one rate point's schedule through an `arm` cluster: home-host
/// installs only, so every cross-host placement is a remote miss served
/// by delta fetch (`delta_fetch: true`) or rebuild-from-source.
fn run_point(arm: &'static str, delta_fetch: bool, rate_ms: u64, seed: u64) -> Point {
    let mut config = ClusterConfig::new(HOSTS, SLOTS_PER_HOST);
    // A tight admission queue: a busy home host exerts backpressure
    // after one waiter instead of six, so load spills to the partial
    // holders rather than queueing behind the full one.
    config.host_queue_cap = 1;
    config.platform = PlatformConfig::builder()
        .snapshot_store(SnapshotStorePolicy::Dedup {
            chunk_pages: SnapshotStorePolicy::DEFAULT_CHUNK_PAGES,
            delta_fetch,
        })
        .build();
    let mut cluster = Cluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    });
    let mix = mix();
    for (name, source, args) in &mix {
        let spec = FunctionSpec::new(name, source, RuntimeKind::NodeLike, args.deep_clone());
        cluster.install_home(&spec).expect("install on home host");
    }
    let interned: Vec<(FunctionId, Value)> = mix
        .iter()
        .map(|(n, _, a)| (fid(n), a.deep_clone()))
        .collect();
    let schedule = poisson_schedule(
        seed.wrapping_add(rate_ms),
        REQUESTS,
        Nanos::from_millis(rate_ms),
        &interned,
    );
    let mut router = LocalityAffinity::new();
    let report = cluster.run(&mut router, &schedule);
    let mut starts: Vec<Nanos> = report
        .completions
        .iter()
        .map(|c| {
            c.start_latency()
                .unwrap_or_else(|| panic!("fault-free sweep: {:?}", c.result))
        })
        .collect();
    starts.sort_unstable();
    let snap = cluster.obs().metrics().snapshot();
    let sum_prefix = |prefix: &str| {
        snap.counters()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum::<u64>()
    };
    Point {
        arm,
        rate_ms,
        p50_start: percentile(&starts, 50.0),
        p99_start: percentile(&starts, 99.0),
        delta_fetches: sum_prefix("core.delta.fetches"),
        delta_fallbacks: sum_prefix("core.delta.fallbacks"),
        locality_hits: report.locality_hits,
        events_processed: cluster.events_processed(),
    }
}

fn main() {
    let seed = match std::env::args().nth(1) {
        None => 42,
        Some(arg) => match arg.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed must be a non-negative integer, got {arg:?}");
                eprintln!("usage: dedup_sweep [seed]");
                std::process::exit(2);
            }
        },
    };

    // Phase 1: dedup ratio vs function count on one host.
    let curve: Vec<RatioPoint> = [1, 2, 4, FUNCTIONS]
        .iter()
        .map(|&n| ratio_point(n))
        .collect();
    for pair in curve.windows(2) {
        assert!(
            pair[1].ratio >= pair[0].ratio,
            "dedup ratio must not shrink as functions are added: \
             {:.3} at {} functions vs {:.3} at {}",
            pair[0].ratio,
            pair[0].functions,
            pair[1].ratio,
            pair[1].functions
        );
    }
    let full = curve.last().expect("curve points");
    assert!(
        full.ratio > 1.5,
        "{} functions sharing a runtime must dedup better than 1.5x, got {:.3}",
        full.functions,
        full.ratio
    );

    // Phase 2: delta fetch vs rebuild under overflow load.
    let wall = std::time::Instant::now();
    let mut points = Vec::new();
    for rate_ms in RATES_MS {
        points.push(run_point("delta", true, rate_ms, seed));
        points.push(run_point("rebuild", false, rate_ms, seed));
    }
    let events: u64 = points.iter().map(|p| p.events_processed).sum();
    // Wall-clock throughput is machine-dependent: stderr only, so
    // stdout stays byte-identical across runs.
    eprintln!(
        "{{\"bench\": \"dedup_sweep\", \"events\": {events}, \"events_per_sec\": {:.0}}}",
        events as f64 / wall.elapsed().as_secs_f64().max(1e-9)
    );
    for rate_ms in RATES_MS {
        let of = |arm: &str| {
            points
                .iter()
                .find(|p| p.arm == arm && p.rate_ms == rate_ms)
                .expect("swept point")
        };
        let (delta, rebuild) = (of("delta"), of("rebuild"));
        assert!(
            delta.delta_fetches > 0,
            "the delta arm must see remote misses at {rate_ms}ms \
             (otherwise the comparison is vacuous)"
        );
        assert!(
            delta.p99_start < rebuild.p99_start,
            "delta p99 {} must be strictly below rebuild p99 {} at {rate_ms}ms",
            delta.p99_start,
            rebuild.p99_start
        );
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"hosts\": {HOSTS},\n  \"slots_per_host\": {SLOTS_PER_HOST},\n  \"functions\": {FUNCTIONS},\n  \"requests\": {REQUESTS},\n  \"chunk_pages\": {},\n",
        SnapshotStorePolicy::DEFAULT_CHUNK_PAGES
    ));
    out.push_str("  \"dedup_ratio_curve\": [\n");
    for (i, p) in curve.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"functions\": {}, \"unique_bytes\": {}, \"logical_bytes\": {}, \"ratio\": {:.4}}}{}\n",
            p.functions,
            p.unique_bytes,
            p.logical_bytes,
            p.ratio,
            if i + 1 < curve.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"rate_ms\": {}, \"p50_start_ns\": {}, \"p99_start_ns\": {}, \"delta_fetches\": {}, \"delta_fallbacks\": {}, \"locality_hits\": {}, \"events_processed\": {}}}{}\n",
            p.arm,
            p.rate_ms,
            p.p50_start.as_nanos(),
            p.p99_start.as_nanos(),
            p.delta_fetches,
            p.delta_fallbacks,
            p.locality_hits,
            p.events_processed,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let max_rate = *RATES_MS.iter().min().expect("swept rates");
    let p99_of = |arm: &str| {
        points
            .iter()
            .find(|p| p.arm == arm && p.rate_ms == max_rate)
            .expect("swept point")
            .p99_start
    };
    let (delta_p99, rebuild_p99) = (p99_of("delta"), p99_of("rebuild"));
    out.push_str(&format!(
        "  \"headline\": {{\"rate_ms\": {max_rate}, \"dedup_ratio\": {:.4}, \"rebuild_p99_ns\": {}, \"delta_p99_ns\": {}, \"p99_ratio\": {:.2}}}\n",
        full.ratio,
        rebuild_p99.as_nanos(),
        delta_p99.as_nanos(),
        rebuild_p99.ratio(delta_p99)
    ));
    out.push_str("}\n");

    fireworks_obs::json::validate(&out).expect("dedup_sweep emits valid JSON");
    print!("{out}");
}
