//! Trace dump: side-by-side invocation timelines for Perfetto.
//!
//! Runs one Fireworks invocation pair (cold-storage REAP paging, with a
//! deterministic fault-recovery episode) and one Firecracker+OS-snapshot
//! invocation pair against separate hosts, then exports what the
//! observability plane recorded:
//!
//! - `trace.chrome.json` — one Chrome trace-event file holding both
//!   platforms as separate processes (load it at <https://ui.perfetto.dev>);
//!   timestamps are virtual nanoseconds rendered as microseconds.
//! - `fireworks.jsonl` / `firecracker.jsonl` — per-platform JSONL event
//!   logs (one span or instant per line).
//! - `metrics.json` — both hosts' metrics-registry snapshots.
//!
//! The dump is a pure function of the seed: two runs with the same seed
//! produce byte-identical files. The binary validates its own output
//! (well-formed JSON, ≥ 6 distinct span categories) and exits non-zero
//! on any violation, so CI can run it as a smoke test.
//!
//! Usage: `trace_dump [seed] [outdir]` (defaults: 42, `target/obs`).

use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;

use fireworks_baselines::{FirecrackerPlatform, SnapshotPolicy};
use fireworks_core::api::{InvokeRequest, Platform};
use fireworks_core::fid;
use fireworks_core::{FireworksPlatform, PagingPolicy, PlatformConfig, PlatformEnv};
use fireworks_obs::{export, json, Event, Obs};
use fireworks_runtime::RuntimeKind;
use fireworks_sim::fault::{FaultPlan, FaultSite};
use fireworks_workloads::faasdom::Bench;

/// Runs install + two invocations on Fireworks with cold-storage REAP
/// paging and a deterministic fault episode (one corrupt snapshot page,
/// one transient read error), returning the host's observability plane.
fn run_fireworks(seed: u64) -> Obs {
    let plan = FaultPlan::new(seed)
        .nth(FaultSite::SnapshotCorruption, 1)
        .nth(FaultSite::SnapshotRead, 2);
    let env = PlatformEnv::with_fault_plan(plan);
    let obs = env.obs.clone();
    let mut platform = FireworksPlatform::with_config(
        env,
        PlatformConfig::builder()
            .paging(PagingPolicy::ColdStorage { reap: true })
            .build(),
    );
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.request_params();
    platform.install(&spec).expect("fireworks install");
    // First invocation records the REAP working set and hits the injected
    // corruption (quarantine + rebuild) and read fault (retry + backoff);
    // the second prefetches the recorded set cleanly.
    for i in 0..2 {
        platform
            .invoke(&InvokeRequest::new(fid(&spec.name), args.deep_clone()))
            .unwrap_or_else(|e| panic!("fireworks invocation {i}: {e:?}"));
    }
    obs.recorder().finish();
    obs
}

/// Runs install + two invocations on the Firecracker+OS-snapshot
/// baseline (fault-free): one snapshot restore, one warm resume.
fn run_firecracker(_seed: u64) -> Obs {
    let env = PlatformEnv::default_env();
    let obs = env.obs.clone();
    let mut platform = FirecrackerPlatform::new(env, SnapshotPolicy::OsSnapshot);
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.request_params();
    platform.install(&spec).expect("firecracker install");
    for i in 0..2 {
        platform
            .invoke(&InvokeRequest::new(fid(&spec.name), args.deep_clone()))
            .unwrap_or_else(|e| panic!("firecracker invocation {i}: {e:?}"));
    }
    obs.recorder().finish();
    obs
}

/// Distinct span/instant categories recorded across both platforms.
fn categories(planes: &[&Obs]) -> BTreeSet<&'static str> {
    let mut cats = BTreeSet::new();
    for obs in planes {
        for event in obs.recorder().events() {
            cats.insert(match event {
                Event::Span(s) => s.category,
                Event::Instant(i) => i.category,
            });
        }
    }
    cats
}

fn validate_json(label: &str, text: &str) -> Result<(), String> {
    json::validate(text).map_err(|e| format!("{label}: invalid JSON: {e}"))
}

fn run(seed: u64, outdir: &Path) -> Result<(), String> {
    let fireworks = run_fireworks(seed);
    let firecracker = run_firecracker(seed);

    let chrome = export::chrome_trace(&[
        ("fireworks", fireworks.recorder()),
        ("firecracker+snapshot", firecracker.recorder()),
    ]);
    let fw_jsonl = export::jsonl(fireworks.recorder());
    let fc_jsonl = export::jsonl(firecracker.recorder());
    let metrics = format!(
        "{{\"fireworks\":{},\"firecracker_snapshot\":{}}}\n",
        fireworks.metrics().snapshot().to_json(),
        firecracker.metrics().snapshot().to_json()
    );

    // Self-validation before anything lands on disk.
    validate_json("trace.chrome.json", &chrome)?;
    validate_json("metrics.json", &metrics)?;
    for (label, jsonl) in [
        ("fireworks.jsonl", &fw_jsonl),
        ("firecracker.jsonl", &fc_jsonl),
    ] {
        for (no, line) in jsonl.lines().enumerate() {
            validate_json(&format!("{label}:{}", no + 1), line)?;
        }
    }
    let cats = categories(&[&fireworks, &firecracker]);
    for required in ["boot", "restore", "prefetch", "cache", "net", "fault"] {
        if !cats.contains(required) {
            return Err(format!(
                "missing span category {required:?} (recorded: {cats:?})"
            ));
        }
    }

    std::fs::create_dir_all(outdir)
        .map_err(|e| format!("cannot create {}: {e}", outdir.display()))?;
    for (name, content) in [
        ("trace.chrome.json", &chrome),
        ("fireworks.jsonl", &fw_jsonl),
        ("firecracker.jsonl", &fc_jsonl),
        ("metrics.json", &metrics),
    ] {
        let path = outdir.join(name);
        std::fs::write(&path, content)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    let events = fireworks.recorder().len() + firecracker.recorder().len();
    println!("trace_dump: seed {seed}, {events} events, categories: {cats:?}");
    println!(
        "trace_dump: wrote {}/{{trace.chrome.json, fireworks.jsonl, firecracker.jsonl, metrics.json}}",
        outdir.display()
    );
    println!("trace_dump: open trace.chrome.json at https://ui.perfetto.dev");
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let seed = match args.next() {
        None => 42,
        Some(arg) => match arg.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed must be a non-negative integer, got {arg:?}");
                eprintln!("usage: trace_dump [seed] [outdir]");
                return ExitCode::from(2);
            }
        },
    };
    let outdir = args.next().unwrap_or_else(|| "target/obs".to_string());
    match run(seed, Path::new(&outdir)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("trace_dump: FAILED: {err}");
            ExitCode::FAILURE
        }
    }
}
