//! Fig. 7: latency comparison of the Python FaaSdom benchmarks.

use fireworks_bench::print_faasdom_figure;
use fireworks_runtime::RuntimeKind;

fn main() {
    print_faasdom_figure("Fig.7", RuntimeKind::PythonLike);
    println!();
    println!("paper: Fireworks up to 74.2x faster cold start-up, 4.4x faster warm;");
    println!("       exec up to 20x (fact) and 80x (matrix) faster via post-JIT code;");
    println!("       geomean (e): overall improvement up to 19x.");
}
