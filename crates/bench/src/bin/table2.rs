//! Table 2: tested serverless applications.

use fireworks_workloads::catalog;

fn main() {
    println!("=== Table 2: Tested serverless applications ===\n");
    println!(
        "{:<34} {:<58} {:<18}",
        "Application Name", "Description", "Language"
    );
    for row in catalog() {
        println!(
            "{:<34} {:<58} {:<18}",
            row.name, row.description, row.languages
        );
    }
}
