//! JIT-warmup ablation: does it matter *when* the post-JIT snapshot is
//! taken?
//!
//! The paper's install phase runs the function once before snapshotting
//! so the snapshot carries compiled code. This ablation sharpens that
//! claim at the inline-cache level: two snapshots of the same function,
//! one taken **before** any warm-up (cold ICs, empty code cache) and one
//! taken **after** a short warm-up that exercises both request shapes
//! (polymorphic ICs, code resident). N restored clones then serve the
//! same seeded request stream, and the restore side shows:
//!
//! - **re-warm cost**: the before-warm clones recompile (`compiles > 0`)
//!   and miss their ICs on first touches;
//! - **restore-time deopts**: the before-warm clones first go
//!   monomorphic inside compiled code, so the stream's minority request
//!   shape triggers a real deopt; warmed clones restored with
//!   already-polymorphic ICs never deopt;
//! - **p99 delta**: the warm snapshot's tail latency is strictly better.
//!
//! Output is one JSON document on stdout that is a pure function of the
//! seed and knobs (all latencies are virtual) — CI runs it twice and
//! byte-diffs. Usage: `jit_ablation [--seed N] [--clones N] [--requests N]`.

use fireworks_guestmem::HostMemory;
use fireworks_lang::{JitConfig, JitPolicy, NoopHost, Value};
use fireworks_microvm::{MicroVmConfig, VmManager};
use fireworks_obs::LogHistogram;
use fireworks_runtime::guest::RunOutcome;
use fireworks_runtime::RuntimeProfile;
use fireworks_sim::rng::SplitMix64;
use fireworks_sim::{Clock, CostModel, Nanos};
use std::rc::Rc;

/// The serverless function under test. `handle`'s property reads are
/// inline-cache sites; `mk` produces two map shapes (1 in 4 requests
/// carry a `trace` key), so a warmed IC is polymorphic while a cold one
/// goes monomorphic on whatever shape arrives first.
const SRC: &str = "
    @jit fn handle(req) {
        let t = 0;
        for (let i = 0; i < req.iters; i = i + 1) {
            t = t + req.a * i + req.b;
        }
        return t;
    }
    fn mk(k) {
        if (k % 4 == 0) {
            return { a: k, b: 7, iters: 120, trace: 1 };
        }
        return { a: k, b: 7, iters: 120 };
    }
    fn installer(n) {
        for (let k = 0; k < n; k = k + 1) { handle(mk(k)); }
        fireworks_snapshot();
        return 0;
    }";

/// Warm-up calls the after-warm variant runs before its snapshot.
const WARMUP_CALLS: i64 = 32;

struct Args {
    seed: u64,
    clones: u64,
    requests: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        clones: 8,
        requests: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {name} needs a non-negative integer");
                eprintln!("usage: jit_ablation [--seed N] [--clones N] [--requests N]");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed"),
            "--clones" => args.clones = value("--clones").max(1),
            "--requests" => args.requests = value("--requests").max(1),
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("usage: jit_ablation [--seed N] [--clones N] [--requests N]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Per-variant aggregate over all clones and requests.
struct VariantReport {
    name: &'static str,
    latency: LogHistogram,
    restore_deopts: u64,
    ic_hits: u64,
    ic_misses: u64,
    rewarm_compiles: u64,
    /// Virtual time from a clone's first request until its last request
    /// that still paid compile or deopt work, summed over clones.
    rewarm_time: Nanos,
    /// Code-cache occupancy carried by the snapshot itself.
    snapshot_code_bytes: u64,
}

/// One deterministic request payload drawn from the stream RNG.
fn payload(rng: &mut SplitMix64) -> Value {
    let a = rng.next_range(1, 1000) as i64;
    let b = rng.next_range(1, 100) as i64;
    let iters = rng.next_range(80, 160) as i64;
    let mut entries = vec![
        ("a".to_string(), Value::Int(a)),
        ("b".to_string(), Value::Int(b)),
        ("iters".to_string(), Value::Int(iters)),
    ];
    // Minority shape: same 1-in-4 mix the installer warm-up saw.
    if rng.next_below(4) == 0 {
        entries.push(("trace".to_string(), Value::Int(1)));
    }
    Value::map(entries)
}

fn run_variant(name: &'static str, warmup_calls: i64, args: &Args) -> VariantReport {
    // Install phase: boot a VM, run the installer to its snapshot point.
    let clock = Clock::new();
    let host = HostMemory::new(clock.clone(), 16 << 30, 60);
    let mut mgr = VmManager::new(clock, Rc::new(CostModel::default()), host);
    let mut vm = mgr.create(MicroVmConfig::default());
    mgr.boot(&mut vm).expect("boots");
    mgr.launch_runtime(
        &mut vm,
        RuntimeProfile::node(),
        SRC,
        JitConfig::default().with_policy(Some(JitPolicy::AnnotatedEager)),
    )
    .expect("launches");
    let clock = mgr.clock().clone();
    {
        let rt = vm.runtime_mut().expect("runtime");
        rt.start("installer", vec![Value::Int(warmup_calls)])
            .expect("starts");
        let RunOutcome::SnapshotPoint = rt.run(&clock, &mut NoopHost).expect("runs") else {
            panic!("installer must reach the snapshot point");
        };
    }
    let snapshot_code_bytes = vm
        .runtime()
        .map(|rt| rt.vm().code_cache_used_bytes())
        .unwrap_or(0);
    let snap = mgr.snapshot(&mut vm);

    let mut report = VariantReport {
        name,
        latency: LogHistogram::new(),
        restore_deopts: 0,
        ic_hits: 0,
        ic_misses: 0,
        rewarm_compiles: 0,
        rewarm_time: Nanos::ZERO,
        snapshot_code_bytes,
    };

    // Invoke phase: restored clones serve the seeded request stream.
    for c in 0..args.clones {
        let mut clone = mgr.restore(&snap).expect("restores");
        let clock = mgr.clock().clone();
        let rt = clone.runtime_mut().expect("runtime restored");
        // Finish the suspended installer (it returns right after the
        // snapshot point); its stats are install-side, not request-side.
        loop {
            match rt.run(&clock, &mut NoopHost).expect("resumes") {
                RunOutcome::Done(_) => break,
                RunOutcome::SnapshotPoint => continue,
            }
        }
        // Same stream seed per variant: both variants face identical
        // request sequences.
        let mut rng = SplitMix64::new(args.seed ^ (c.wrapping_mul(0x9E37_79B9)));
        let mut clone_rewarm = Nanos::ZERO;
        for _ in 0..args.requests {
            let before = clock.now();
            let result = rt
                .invoke(&clock, "handle", vec![payload(&mut rng)], &mut NoopHost)
                .expect("request runs");
            let latency = clock.now() - before;
            report.latency.observe(latency.as_nanos());
            report.restore_deopts += result.stats.deopts;
            report.ic_hits += result.stats.ic_hits;
            report.ic_misses += result.stats.ic_misses;
            report.rewarm_compiles += result.stats.compiles;
            clone_rewarm += latency;
            if result.stats.compiles == 0 && result.stats.deopts == 0 {
                // Steady state reached; the accumulated time up to (and
                // including) the last warming request is re-warm cost.
                clone_rewarm -= latency;
                break;
            }
        }
        report.rewarm_time += clone_rewarm;
        // Steady-state remainder: requests past the warming prefix.
        let served = report.latency.count();
        let target = (c + 1) * args.requests;
        for _ in served..target {
            let before = clock.now();
            let result = rt
                .invoke(&clock, "handle", vec![payload(&mut rng)], &mut NoopHost)
                .expect("request runs");
            report.latency.observe((clock.now() - before).as_nanos());
            report.restore_deopts += result.stats.deopts;
            report.ic_hits += result.stats.ic_hits;
            report.ic_misses += result.stats.ic_misses;
            report.rewarm_compiles += result.stats.compiles;
        }
    }
    report
}

fn variant_json(r: &VariantReport) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"p50_ns\": {},\n",
            "      \"p99_ns\": {},\n",
            "      \"mean_ns\": {},\n",
            "      \"requests\": {},\n",
            "      \"restore_deopts\": {},\n",
            "      \"ic_hits\": {},\n",
            "      \"ic_misses\": {},\n",
            "      \"rewarm_compiles\": {},\n",
            "      \"rewarm_time_ns\": {},\n",
            "      \"snapshot_code_bytes\": {}\n",
            "    }}"
        ),
        r.name,
        r.latency.quantile(50.0),
        r.latency.quantile(99.0),
        r.latency.mean(),
        r.latency.count(),
        r.restore_deopts,
        r.ic_hits,
        r.ic_misses,
        r.rewarm_compiles,
        r.rewarm_time.as_nanos(),
        r.snapshot_code_bytes,
    )
}

fn main() {
    let args = parse_args();
    let before = run_variant("snapshot_before_warmup", 0, &args);
    let after = run_variant("snapshot_after_warmup", WARMUP_CALLS, &args);

    // The claims this ablation exists to check. A regression here means
    // the post-JIT snapshot stopped carrying its warm-up.
    assert!(after.snapshot_code_bytes > 0, "warm snapshot carries code");
    assert_eq!(before.snapshot_code_bytes, 0, "cold snapshot carries none");
    assert!(
        after.rewarm_compiles == 0,
        "warmed clones must not recompile, saw {}",
        after.rewarm_compiles
    );
    assert!(
        before.rewarm_compiles > 0 && before.ic_misses > after.ic_misses,
        "cold clones must visibly re-warm"
    );
    assert!(
        before.restore_deopts > 0,
        "cold clones mono-cache then deopt on the minority shape"
    );
    assert_eq!(after.restore_deopts, 0, "warm poly ICs never deopt");
    let (p99_before, p99_after) = (before.latency.quantile(99.0), after.latency.quantile(99.0));
    assert!(
        p99_after < p99_before,
        "after-warm p99 {p99_after} must beat before-warm p99 {p99_before}"
    );

    println!("{{");
    println!("  \"bench\": \"jit_ablation\",");
    println!("  \"seed\": {},", args.seed);
    println!("  \"clones\": {},", args.clones);
    println!("  \"requests_per_clone\": {},", args.requests);
    println!("  \"warmup_calls\": {WARMUP_CALLS},");
    println!("  \"variants\": [");
    println!("{},", variant_json(&before));
    println!("{}", variant_json(&after));
    println!("  ],");
    println!("  \"p99_delta_ns\": {},", p99_before - p99_after);
    // Fixed-point ratio (×1000) keeps the output free of float formatting.
    println!(
        "  \"p99_speedup_milli\": {}",
        p99_before * 1000 / p99_after.max(1)
    );
    println!("}}");
}
