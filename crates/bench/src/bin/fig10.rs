//! Fig. 10: memory usage vs. number of concurrent microVMs, Fireworks vs
//! Firecracker, until the host starts swapping (`vm.swappiness = 60`).
//!
//! The paper runs a 128 GiB host to 565 (Fireworks) vs 337 (Firecracker)
//! microVMs — 167% more sandboxes. We run a scaled-down host (see
//! DESIGN.md), which preserves the ratio: both per-VM footprints scale
//! identically. Populations are built by the concurrent invocation
//! engine in retain mode: each wave of invocations genuinely coexists,
//! and every completed clone stays resident (and keeps serving, via
//! `age_ops`) while later waves restore against the live population.

use fireworks_baselines::{FirecrackerPlatform, SnapshotPolicy};
use fireworks_core::engine::{run_concurrent, EngineConfig};
use fireworks_core::env::EnvConfig;
use fireworks_core::fid;
use fireworks_core::{ConcurrentPlatform, FireworksPlatform, PlatformEnv};
use fireworks_runtime::RuntimeKind;
use fireworks_sim::CostModel;
use fireworks_workloads::arrivals::burst;
use fireworks_workloads::faasdom::Bench;

const HOST_RAM: u64 = 16 << 30;

/// Extra guest ops each microVM retires as it keeps serving the benchmark
/// until swap onset (the paper runs every VM continuously). At the Node
/// profile's GC-churn rate this dirties ~2 MiB per million ops.
const SERVICE_AGE_OPS: u64 = 50_000_000;

/// Concurrent invocations admitted per engine wave.
const WAVE: usize = 8;

fn env() -> PlatformEnv {
    PlatformEnv::new(EnvConfig {
        ram_bytes: HOST_RAM,
        swappiness: 60,
        costs: CostModel::default(),
        ..EnvConfig::default()
    })
}

/// Grows a resident population through the engine until the host swaps;
/// returns the host-memory series (one sample per aged clone).
fn sweep<P, F, A>(make: F, age: A) -> Vec<u64>
where
    P: ConcurrentPlatform,
    F: FnOnce(PlatformEnv) -> P,
    A: Fn(&mut P::InFlight, u64),
{
    let host_env = env();
    let mut platform = make(host_env.clone());
    let spec = Bench::Fact.paper_spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.paper_params();
    platform.install(&spec).expect("install");
    let mut resident: Vec<P::InFlight> = Vec::new();
    let mut series = Vec::new();
    while !host_env.host_mem.is_swapping() {
        let wave = burst(fid(&spec.name), &args, WAVE, host_env.clock.now());
        let report = run_concurrent(
            &mut platform,
            &host_env.clock,
            &host_env.obs,
            &EngineConfig::new(WAVE).retain_completed(),
            &wave,
        );
        for c in &report.completions {
            assert!(c.result.is_ok(), "density waves are fault-free");
        }
        for mut token in report.retained {
            age(&mut token, SERVICE_AGE_OPS);
            resident.push(token);
            series.push(host_env.host_mem.used_bytes());
            if host_env.host_mem.is_swapping() {
                break;
            }
        }
    }
    series
}

fn main() {
    println!("=== Fig.10: Memory usage vs concurrent microVMs (faas-fact, Node.js) ===");
    println!(
        "host: {} GiB RAM, vm.swappiness=60 → swap onset at {:.1} GiB\n",
        HOST_RAM >> 30,
        (HOST_RAM as f64 * 0.6) / (1 << 30) as f64
    );

    println!(
        "{:<8} {:>16} {:>16}",
        "microVMs", "fireworks (GiB)", "firecracker (GiB)"
    );

    let fw_series = sweep(FireworksPlatform::new, |clone, ops| clone.age_ops(ops));
    let fc_series = sweep(
        |e| FirecrackerPlatform::new(e, SnapshotPolicy::None),
        |vm, ops| vm.age_ops(ops),
    );
    let fw_max = fw_series.len();
    let fc_max = fc_series.len();

    let gib = |b: u64| b as f64 / (1 << 30) as f64;
    let step = (fw_max / 12).max(1);
    let mut i = step;
    while i <= fw_max {
        let fw_used = fw_series[i - 1];
        let fc_used = fc_series.get(i - 1).copied();
        match fc_used {
            Some(b) => println!("{:<8} {:>16.2} {:>16.2}", i, gib(fw_used), gib(b)),
            None => println!("{:<8} {:>16.2} {:>16}", i, gib(fw_used), "swapping"),
        }
        i += step;
    }

    println!();
    println!("fireworks   : {fw_max} microVMs before swapping");
    println!("firecracker : {fc_max} microVMs before swapping");
    println!(
        "consolidation: {:.0}% more sandboxes   (paper: 565 vs 337 = 167%... i.e. ~1.67x)",
        (fw_max as f64 / fc_max as f64) * 100.0 - 100.0
    );
    println!(
        "per-VM memory at the limit: fireworks {:.0} MiB vs firecracker {:.0} MiB",
        gib(*fw_series.last().expect("nonempty")) * 1024.0 / fw_max as f64,
        gib(*fc_series.last().expect("nonempty")) * 1024.0 / fc_max as f64,
    );
}
