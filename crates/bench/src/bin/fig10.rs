//! Fig. 10: memory usage vs. number of concurrent microVMs, Fireworks vs
//! Firecracker, until the host starts swapping (`vm.swappiness = 60`).
//!
//! The paper runs a 128 GiB host to 565 (Fireworks) vs 337 (Firecracker)
//! microVMs — 167% more sandboxes. We run a scaled-down host (see
//! DESIGN.md), which preserves the ratio: both per-VM footprints scale
//! identically.

use fireworks_baselines::{FirecrackerPlatform, SnapshotPolicy};
use fireworks_core::api::Platform;
use fireworks_core::env::EnvConfig;
use fireworks_core::{FireworksPlatform, PlatformEnv};
use fireworks_runtime::RuntimeKind;
use fireworks_sim::CostModel;
use fireworks_workloads::faasdom::Bench;

const HOST_RAM: u64 = 16 << 30;

/// Extra guest ops each microVM retires as it keeps serving the benchmark
/// until swap onset (the paper runs every VM continuously). At the Node
/// profile's GC-churn rate this dirties ~2 MiB per million ops.
const SERVICE_AGE_OPS: u64 = 50_000_000;

fn env() -> PlatformEnv {
    PlatformEnv::new(EnvConfig {
        ram_bytes: HOST_RAM,
        swappiness: 60,
        costs: CostModel::default(),
        ..EnvConfig::default()
    })
}

fn main() {
    println!("=== Fig.10: Memory usage vs concurrent microVMs (faas-fact, Node.js) ===");
    println!(
        "host: {} GiB RAM, vm.swappiness=60 → swap onset at {:.1} GiB\n",
        HOST_RAM >> 30,
        (HOST_RAM as f64 * 0.6) / (1 << 30) as f64
    );
    let spec = Bench::Fact.paper_spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.paper_params();

    println!(
        "{:<8} {:>16} {:>16}",
        "microVMs", "fireworks (GiB)", "firecracker (GiB)"
    );

    // Fireworks sweep.
    let fw_env = env();
    let mut fw = FireworksPlatform::new(fw_env.clone());
    fw.install(&spec).expect("install");
    let mut fw_series = Vec::new();
    let mut fw_clones = Vec::new();
    while !fw_env.host_mem.is_swapping() {
        let (_, mut clone) = fw.invoke_resident(&spec.name, &args).expect("clone");
        clone.age_ops(SERVICE_AGE_OPS);
        fw_clones.push(clone);
        fw_series.push(fw_env.host_mem.used_bytes());
    }
    let fw_max = fw_clones.len();

    // Firecracker sweep.
    let fc_env = env();
    let mut fc = FirecrackerPlatform::new(fc_env.clone(), SnapshotPolicy::None);
    fc.install(&spec).expect("install");
    let mut fc_series = Vec::new();
    let mut fc_vms = Vec::new();
    while !fc_env.host_mem.is_swapping() {
        let (_, mut vm) = fc.invoke_resident(&spec.name, &args).expect("vm");
        vm.age_ops(SERVICE_AGE_OPS);
        fc_vms.push(vm);
        fc_series.push(fc_env.host_mem.used_bytes());
    }
    let fc_max = fc_vms.len();

    let gib = |b: u64| b as f64 / (1 << 30) as f64;
    let step = (fw_max / 12).max(1);
    let mut i = step;
    while i <= fw_max {
        let fw_used = fw_series[i - 1];
        let fc_used = fc_series.get(i - 1).copied();
        match fc_used {
            Some(b) => println!("{:<8} {:>16.2} {:>16.2}", i, gib(fw_used), gib(b)),
            None => println!("{:<8} {:>16.2} {:>16}", i, gib(fw_used), "swapping"),
        }
        i += step;
    }

    println!();
    println!("fireworks   : {fw_max} microVMs before swapping");
    println!("firecracker : {fc_max} microVMs before swapping");
    println!(
        "consolidation: {:.0}% more sandboxes   (paper: 565 vs 337 = 167%... i.e. ~1.67x)",
        (fw_max as f64 / fc_max as f64) * 100.0 - 100.0
    );
    println!(
        "per-VM memory at the limit: fireworks {:.0} MiB vs firecracker {:.0} MiB",
        gib(*fw_series.last().expect("nonempty")) * 1024.0 / fw_max as f64,
        gib(*fc_series.last().expect("nonempty")) * 1024.0 / fc_max as f64,
    );
}
