//! Runs every table and figure binary's logic in sequence — the one-shot
//! reproduction of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p fireworks-bench --bin all_figures
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "install_time",
        "fig6",
        "fig7",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        println!("\n################################################################");
        println!("# {bin}");
        println!("################################################################\n");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }
}
