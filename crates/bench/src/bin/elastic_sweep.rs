//! Elastic control-plane sweep: elasticity cost vs. steady-state
//! overprovisioning, measured under a flash crowd.
//!
//! One flash-crowd schedule (quiet Poisson arrivals that suddenly
//! densify 10x, then recover) is driven through four fleets:
//!
//! - `fixed_max`: `min_hosts == max_hosts == MAX_FLEET` — the
//!   overprovisioned baseline. Great latency, pays for idle machines
//!   the whole run.
//! - `fixed_min`: `min_hosts == max_hosts == MIN_FLEET` — the
//!   underprovisioned baseline. Cheap, and the crowd buries it.
//! - `elastic`: reactive scaling only (queue-pressure scale-up,
//!   idle-driven graceful drain with snapshot hand-off).
//! - `elastic_prewarm`: the same, plus the sliding-window arrival
//!   predictor prewarming hot snapshots onto freshly booted hosts and
//!   scaling up on a rising trend.
//!
//! The headline asserts the elastic trade-off from both sides: the
//! prewarmed elastic fleet beats the fixed-min fleet on flash-crowd
//! p99 start latency, while burning less host-time than the fixed-max
//! fleet. A scale-to-zero phase retires an idle function to the archive
//! and resurrects it on the next request, and a chaos phase sweeps the
//! three control-plane fault sites (`drain_interrupt`,
//! `migration_stall`, `scale_up_fail`) up to certainty, asserting the
//! control plane converges with zero lost requests and zero invariant
//! violations.
//!
//! Output is a single JSON document on stdout, a pure function of the
//! seed: two same-seed runs are byte-identical (CI diffs them).
//!
//! Usage: `elastic_sweep [seed]` (default 42).

use fireworks_core::api::FunctionSpec;
use fireworks_core::cluster::LocalityAffinity;
use fireworks_core::config::{PlatformConfig, SnapshotStorePolicy};
use fireworks_core::elastic::{ElasticCluster, ElasticConfig, ElasticPolicy, ElasticReport};
use fireworks_core::engine::EngineRequest;
use fireworks_core::fid;
use fireworks_core::{FireworksPlatform, InvokeRequest};
use fireworks_lang::Value;
use fireworks_obs::LogHistogram;
use fireworks_runtime::RuntimeKind;
use fireworks_sim::fault::{FaultPlan, FaultSite};
use fireworks_sim::Nanos;
use fireworks_workloads::arrivals::flash_crowd;

/// Invoker slots per host.
const SLOTS_PER_HOST: usize = 2;
/// Functions in the request mix.
const FUNCTIONS: usize = 3;
/// Requests in the flash-crowd schedule — enough to fill the whole
/// crowd window (~500 arrivals at the crowd rate) plus a quiet tail.
const REQUESTS: usize = 600;
/// Floor of the elastic fleet (and the underprovisioned baseline).
const MIN_FLEET: usize = 1;
/// Ceiling of the elastic fleet (and the overprovisioned baseline).
const MAX_FLEET: usize = 6;
/// Mean inter-arrival time outside the crowd window.
const BASE_MEAN: Nanos = Nanos::from_millis(40);
/// Mean inter-arrival time inside the crowd window (10x denser).
const CROWD_MEAN: Nanos = Nanos::from_millis(4);
/// Crowd window, relative to schedule start.
const CROWD_START: Nanos = Nanos::from_millis(3_000);
const CROWD_END: Nanos = Nanos::from_millis(5_000);

/// Requests in the chaos phase (shorter: each point runs thrice).
const CHAOS_REQUESTS: usize = 120;
/// The swept per-draw probabilities for each control-plane fault site.
const CHAOS_RATES: [f64; 3] = [0.1, 0.5, 1.0];

/// A compute-light function; its snapshot still carries the full
/// post-JIT runtime image, so hand-offs move real bytes.
const SRC: &str = "
    fn main(params) {
        let n = params[\"n\"];
        let t = 0;
        for (let i = 0; i < n; i = i + 1) { t = t + i; }
        return t;
    }";

fn mix() -> Vec<(String, Value)> {
    (0..FUNCTIONS)
        .map(|i| {
            (
                format!("svc-{i}"),
                Value::map([("n".to_string(), Value::Int(2_000))]),
            )
        })
        .collect()
}

fn spec_for(name: &str, args: &Value) -> FunctionSpec {
    FunctionSpec::new(name, SRC, RuntimeKind::NodeLike, args.deep_clone())
}

/// The policy all scenarios share; control periods are sized to the
/// observed service times (~17 ms warm, ~470 ms rebuild-from-source)
/// so the loop reacts to sustained pressure, not single requests.
fn base_policy() -> ElasticPolicy {
    ElasticPolicy {
        min_hosts: MIN_FLEET,
        max_hosts: MAX_FLEET,
        control_interval: Nanos::from_millis(50),
        scale_up_queue: 2,
        scale_down_idle_ticks: 6,
        boot_delay: Nanos::from_millis(200),
        drain_deadline: Nanos::from_millis(500),
        ..ElasticPolicy::default()
    }
}

fn config_with(policy: ElasticPolicy, fault_plan: FaultPlan) -> ElasticConfig {
    let mut config = ElasticConfig::new(SLOTS_PER_HOST);
    config.platform = PlatformConfig::builder()
        .snapshot_store(SnapshotStorePolicy::dedup())
        .build();
    config.env.fault_plan = fault_plan;
    config.policy = policy;
    config
}

fn build(config: ElasticConfig) -> ElasticCluster<FireworksPlatform> {
    let mut cluster = ElasticCluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    });
    for (name, args) in &mix() {
        cluster
            .install(&spec_for(name, args))
            .expect("install is fault-free");
    }
    cluster
}

fn schedule(seed: u64, count: usize) -> Vec<EngineRequest> {
    let m = mix();
    let interned: Vec<(fireworks_core::FunctionId, Value)> =
        m.iter().map(|(n, a)| (fid(n), a.deep_clone())).collect();
    flash_crowd(
        seed,
        count,
        BASE_MEAN,
        CROWD_MEAN,
        CROWD_START,
        CROWD_END,
        &interned,
    )
}

/// One scenario's measurements.
struct Scenario {
    name: &'static str,
    p50_start: Nanos,
    p99_start: Nanos,
    host_time: Nanos,
    peak_hosts: usize,
    report: ElasticReport,
}

fn run_scenario(name: &'static str, policy: ElasticPolicy, seed: u64) -> Scenario {
    let mut cluster = build(config_with(policy, FaultPlan::default()));
    let report = cluster.run(&mut LocalityAffinity::new(), &schedule(seed, REQUESTS));
    assert!(
        report.completions.iter().all(|c| c.result.is_ok()),
        "{name}: fault-free scenarios must serve every request"
    );
    assert!(
        report.audit_violations.is_empty(),
        "{name}: invariant violations: {:?}",
        report.audit_violations
    );
    // Start latencies stream into a mergeable log-bucketed sketch
    // (quantiles within 2⁻⁵ relative error) instead of collect-and-sort.
    let mut starts = LogHistogram::new();
    for s in report.completions.iter().filter_map(|c| c.start_latency()) {
        starts.observe(s.as_nanos());
    }
    Scenario {
        name,
        p50_start: Nanos::from_nanos(starts.quantile(50.0)),
        p99_start: Nanos::from_nanos(starts.quantile(99.0)),
        host_time: report.host_time,
        peak_hosts: report.peak_hosts,
        report,
    }
}

/// Scale-to-zero: a lone function sees a burst, goes idle past the
/// retirement horizon (its replicas move to the archive), then demand
/// returns and the snapshot is resurrected by delta fetch.
struct ScaleToZero {
    retired: u64,
    resurrections: u64,
    p99_resurrect_start: Nanos,
}

fn run_scale_to_zero(seed: u64) -> ScaleToZero {
    let policy = ElasticPolicy {
        retire_after: Some(Nanos::from_millis(400)),
        ..base_policy()
    };
    let mut cluster = build(config_with(policy, FaultPlan::new(seed)));
    let args = Value::map([("n".to_string(), Value::Int(2_000))]);
    let gap = Nanos::from_millis(20);
    let mut reqs: Vec<EngineRequest> = (0..8)
        .map(|i| EngineRequest::at(gap * i, InvokeRequest::new(fid("svc-0"), args.deep_clone())))
        .collect();
    // A quiet stretch long enough for the control loop to retire the
    // function, then renewed demand.
    let quiet_until = reqs.last().expect("non-empty").arrival + Nanos::from_millis(2_000);
    for i in 0..4u64 {
        reqs.push(EngineRequest::at(
            quiet_until + gap * i,
            InvokeRequest::new(fid("svc-0"), args.deep_clone()),
        ));
    }
    let report = cluster.run(&mut LocalityAffinity::new(), &reqs);
    assert!(
        report.completions.iter().all(|c| c.result.is_ok()),
        "scale-to-zero requests all complete"
    );
    assert!(
        report.audit_violations.is_empty(),
        "scale-to-zero invariants: {:?}",
        report.audit_violations
    );
    assert!(
        report.stats.retired_functions > 0,
        "the idle stretch must retire the function: {:?}",
        report.stats
    );
    assert!(
        report.stats.resurrections > 0,
        "renewed demand must resurrect it: {:?}",
        report.stats
    );
    let mut tail = LogHistogram::new();
    for s in report
        .completions
        .iter()
        .filter(|c| c.arrived >= quiet_until)
        .filter_map(|c| c.start_latency())
    {
        tail.observe(s.as_nanos());
    }
    ScaleToZero {
        retired: report.stats.retired_functions,
        resurrections: report.stats.resurrections,
        p99_resurrect_start: Nanos::from_nanos(tail.quantile(99.0)),
    }
}

/// One chaos point: a single control-plane fault site armed at `rate`.
struct ChaosPoint {
    site: &'static str,
    rate: f64,
    ok: usize,
    failed: usize,
    stats_json: String,
    failed_hosts: usize,
}

fn run_chaos(site: FaultSite, rate: f64, seed: u64) -> ChaosPoint {
    let policy = ElasticPolicy {
        max_hosts: 4,
        scale_down_idle_ticks: 3,
        ..base_policy()
    };
    let plan = FaultPlan::new(seed ^ (site as u64) << 32).probability(site, rate);
    let mut cluster = build(config_with(policy, plan));
    let report = cluster.run(
        &mut LocalityAffinity::new(),
        &schedule(seed, CHAOS_REQUESTS),
    );
    // Conservation is asserted inside `run`; here we assert the audit
    // stayed clean through every membership event the storm caused.
    assert!(
        report.audit_violations.is_empty(),
        "{}@{rate}: invariant violations: {:?}",
        site.label(),
        report.audit_violations
    );
    let ok = report
        .completions
        .iter()
        .filter(|c| c.result.is_ok())
        .count();
    let s = &report.stats;
    let stats_json = format!(
        "{{\"scale_ups\": {}, \"scale_up_failures\": {}, \"drains_started\": {}, \
         \"graceful_drains\": {}, \"hard_removals\": {}, \"drain_interrupts\": {}, \
         \"migrations\": {}, \"migration_retries\": {}, \"migration_stalls\": {}, \
         \"migration_failures\": {}, \"crash_reroutes\": {}}}",
        s.scale_ups,
        s.scale_up_failures,
        s.drains_started,
        s.graceful_drains,
        s.hard_removals,
        s.drain_interrupts,
        s.migrations,
        s.migration_retries,
        s.migration_stalls,
        s.migration_failures,
        s.crash_reroutes,
    );
    ChaosPoint {
        site: site.label(),
        rate,
        ok,
        failed: report.completions.len() - ok,
        stats_json,
        failed_hosts: report.failed_hosts.len(),
    }
}

fn main() {
    let seed = match std::env::args().nth(1) {
        None => 42,
        Some(arg) => match arg.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed must be a non-negative integer, got {arg:?}");
                eprintln!("usage: elastic_sweep [seed]");
                std::process::exit(2);
            }
        },
    };

    let fixed_max = ElasticPolicy {
        min_hosts: MAX_FLEET,
        ..base_policy()
    };
    let fixed_min = ElasticPolicy {
        max_hosts: MIN_FLEET,
        ..base_policy()
    };
    let elastic = base_policy();
    let elastic_prewarm = ElasticPolicy {
        prewarm: true,
        ..base_policy()
    };

    let wall = std::time::Instant::now();
    let scenarios = [
        run_scenario("fixed_max", fixed_max, seed),
        run_scenario("fixed_min", fixed_min, seed),
        run_scenario("elastic", elastic, seed),
        run_scenario("elastic_prewarm", elastic_prewarm, seed),
    ];
    let events: u64 = scenarios.iter().map(|s| s.report.events_processed).sum();
    // Wall-clock throughput is machine-dependent: stderr only, so
    // stdout stays byte-identical across runs.
    eprintln!(
        "{{\"bench\": \"elastic_sweep\", \"events\": {events}, \"events_per_sec\": {:.0}}}",
        events as f64 / wall.elapsed().as_secs_f64().max(1e-9)
    );

    let by_name = |n: &str| scenarios.iter().find(|s| s.name == n).expect("scenario");
    let (fmax, fmin) = (by_name("fixed_max"), by_name("fixed_min"));
    let (ela, pre) = (by_name("elastic"), by_name("elastic_prewarm"));

    // The elastic trade, asserted from both sides: prewarmed elasticity
    // beats the underprovisioned fleet where it hurts (flash-crowd p99)
    // and beats the overprovisioned fleet where *it* hurts (host-time).
    assert!(
        pre.p99_start < fmin.p99_start,
        "prewarmed elastic p99 {} must beat fixed-min p99 {}",
        pre.p99_start,
        fmin.p99_start
    );
    for s in [ela, pre] {
        assert!(
            s.host_time < fmax.host_time,
            "{} host_time {} must undercut fixed-max {}",
            s.name,
            s.host_time,
            fmax.host_time
        );
        assert!(
            s.report.stats.scale_ups > 0 && s.peak_hosts > MIN_FLEET,
            "{} must actually scale: {:?}",
            s.name,
            s.report.stats
        );
    }

    let zero = run_scale_to_zero(seed);

    let chaos_sites = [
        FaultSite::DrainInterrupt,
        FaultSite::MigrationStall,
        FaultSite::ScaleUpFail,
    ];
    let mut chaos = Vec::new();
    for site in chaos_sites {
        for rate in CHAOS_RATES {
            chaos.push(run_chaos(site, rate, seed));
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"elastic_sweep\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"workload\": {{\"requests\": {REQUESTS}, \"functions\": {FUNCTIONS}, \"base_mean_ns\": {}, \"crowd_mean_ns\": {}, \"crowd_start_ns\": {}, \"crowd_end_ns\": {}}},\n",
        BASE_MEAN.as_nanos(),
        CROWD_MEAN.as_nanos(),
        CROWD_START.as_nanos(),
        CROWD_END.as_nanos(),
    ));
    out.push_str(&format!(
        "  \"fleet\": {{\"slots_per_host\": {SLOTS_PER_HOST}, \"min_hosts\": {MIN_FLEET}, \"max_hosts\": {MAX_FLEET}}},\n"
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let st = &s.report.stats;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"p50_start_ns\": {}, \"p99_start_ns\": {}, \"host_time_ns\": {}, \"peak_hosts\": {}, \"scale_ups\": {}, \"drains_started\": {}, \"graceful_drains\": {}, \"hard_removals\": {}, \"migrations\": {}, \"prewarms\": {}, \"resurrections\": {}, \"rebalances\": {}, \"locality_hits\": {}, \"events_processed\": {}}}{}\n",
            s.name,
            s.p50_start.as_nanos(),
            s.p99_start.as_nanos(),
            s.host_time.as_nanos(),
            s.peak_hosts,
            st.scale_ups,
            st.drains_started,
            st.graceful_drains,
            st.hard_removals,
            st.migrations,
            st.prewarms,
            st.resurrections,
            st.rebalances,
            st.locality_hits,
            s.report.events_processed,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"scale_to_zero\": {{\"retired_functions\": {}, \"resurrections\": {}, \"p99_resurrect_start_ns\": {}}},\n",
        zero.retired,
        zero.resurrections,
        zero.p99_resurrect_start.as_nanos(),
    ));
    out.push_str("  \"chaos\": [\n");
    for (i, c) in chaos.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"site\": \"{}\", \"rate\": {}, \"ok\": {}, \"failed\": {}, \"failed_hosts\": {}, \"control\": {}}}{}\n",
            c.site,
            c.rate,
            c.ok,
            c.failed,
            c.failed_hosts,
            c.stats_json,
            if i + 1 < chaos.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"headline\": {{\"fixed_min_p99_ns\": {}, \"elastic_prewarm_p99_ns\": {}, \"p99_ratio\": {:.2}, \"fixed_max_host_time_ns\": {}, \"elastic_host_time_ns\": {}, \"host_time_ratio\": {:.2}}}\n",
        fmin.p99_start.as_nanos(),
        pre.p99_start.as_nanos(),
        fmin.p99_start.ratio(pre.p99_start),
        fmax.host_time.as_nanos(),
        ela.host_time.as_nanos(),
        fmax.host_time.ratio(ela.host_time),
    ));
    out.push_str("}\n");

    fireworks_obs::json::validate(&out).expect("elastic_sweep emits valid JSON");
    print!("{out}");
}
