//! The paper's §2.2 motivation, measured: warm pools are ineffective for
//! unpopular functions.
//!
//! Shahrad et al. (the paper's citation 48) report that only 18.6% of functions are
//! called more than once a minute — so for the other 81.4%, a keep-alive
//! warm pool either misses (cold start) or wastes memory holding idle
//! sandboxes. Fireworks sidesteps the trade-off: every start restores the
//! shared snapshot, so there is nothing to keep alive.
//!
//! This binary replays a Zipf-popularity invocation trace against
//! OpenWhisk (60 s keep-alive, the provider practice) and Fireworks on
//! identical timelines, reporting hit rates, start-up latency by
//! popularity class, and idle warm-pool memory.

use fireworks_baselines::OpenWhiskPlatform;
use fireworks_core::api::{InvokeRequest, Platform};
use fireworks_core::fid;
use fireworks_core::{FireworksPlatform, PlatformConfig, PlatformEnv};
use fireworks_runtime::RuntimeKind;
use fireworks_sim::Nanos;
use fireworks_workloads::faasdom::Bench;
use fireworks_workloads::trace::{generate, TraceConfig};

const FUNCTIONS: usize = 24;
const EVENTS: usize = 400;
const TRACE_MINUTES: u64 = 30;

fn trace_config() -> TraceConfig {
    TraceConfig {
        functions: FUNCTIONS,
        horizon: Nanos::from_secs(TRACE_MINUTES * 60),
        total_events: EVENTS,
        alpha: 1.0,
        seed: 7,
    }
}

struct ClassStats {
    invocations: u64,
    startup: Nanos,
}

fn class_of(func: usize) -> usize {
    // Popularity classes: head (top 4), middle, tail.
    match func {
        0..=3 => 0,
        4..=11 => 1,
        _ => 2,
    }
}

const CLASS_NAMES: [&str; 3] = ["head (top 4)", "middle (5-12)", "tail (13-24)"];

fn main() {
    println!("=== §2.2 motivation: warm pools vs snapshot starts on a Zipf trace ===");
    println!(
        "{FUNCTIONS} functions, {EVENTS} invocations over {TRACE_MINUTES} virtual minutes, 60 s keep-alive\n"
    );
    let trace = generate(&trace_config());
    let bench = Bench::NetLatency;

    // --- OpenWhisk with a 60 s keep-alive.
    let ow_env = PlatformEnv::default_env();
    let mut ow = OpenWhiskPlatform::with_config(
        ow_env.clone(),
        PlatformConfig::builder()
            .keep_alive(Some(Nanos::from_secs(60)))
            .build(),
    );
    let mut ow_specs = Vec::new();
    for i in 0..FUNCTIONS {
        let mut spec = bench.spec(RuntimeKind::NodeLike);
        spec.name = format!("fn-{i}");
        ow.install(&spec).expect("install");
        ow_specs.push(spec);
    }
    let mut ow_stats: Vec<ClassStats> = (0..3)
        .map(|_| ClassStats {
            invocations: 0,
            startup: Nanos::ZERO,
        })
        .collect();
    let mut idle_samples: Vec<u64> = Vec::new();
    for event in &trace {
        if ow_env.clock.now() < event.at {
            ow_env.clock.advance(event.at - ow_env.clock.now());
        }
        let inv = ow
            .invoke(&InvokeRequest::new(
                fid(&ow_specs[event.function].name),
                bench.request_params(),
            ))
            .expect("invoke");
        let c = class_of(event.function);
        ow_stats[c].invocations += 1;
        ow_stats[c].startup += inv.breakdown.startup;
        idle_samples.push(ow.idle_warm_bytes());
    }
    let (cold, warm) = ow.start_counts();
    let avg_idle = idle_samples.iter().sum::<u64>() / idle_samples.len() as u64;

    // --- Fireworks on the identical trace.
    let fw_env = PlatformEnv::default_env();
    let mut fw = FireworksPlatform::new(fw_env.clone());
    let mut fw_specs = Vec::new();
    for i in 0..FUNCTIONS {
        let mut spec = bench.spec(RuntimeKind::NodeLike);
        spec.name = format!("fn-{i}");
        fw.install(&spec).expect("install");
        fw_specs.push(spec);
    }
    let mut fw_stats: Vec<ClassStats> = (0..3)
        .map(|_| ClassStats {
            invocations: 0,
            startup: Nanos::ZERO,
        })
        .collect();
    for event in &trace {
        if fw_env.clock.now() < event.at {
            fw_env.clock.advance(event.at - fw_env.clock.now());
        }
        let inv = fw
            .invoke(&InvokeRequest::new(
                fid(&fw_specs[event.function].name),
                bench.request_params(),
            ))
            .expect("invoke");
        let c = class_of(event.function);
        fw_stats[c].invocations += 1;
        fw_stats[c].startup += inv.breakdown.startup;
    }

    println!(
        "{:<16} {:>6} {:>18} {:>18} {:>9}",
        "popularity", "events", "ow avg startup", "fw avg startup", "speedup"
    );
    for c in 0..3 {
        let ow_avg = ow_stats[c].startup / ow_stats[c].invocations.max(1);
        let fw_avg = fw_stats[c].startup / fw_stats[c].invocations.max(1);
        println!(
            "{:<16} {:>6} {:>18} {:>18} {:>8.1}x",
            CLASS_NAMES[c],
            ow_stats[c].invocations,
            format!("{ow_avg}"),
            format!("{fw_avg}"),
            ow_avg.ratio(fw_avg),
        );
    }
    println!();
    println!(
        "openwhisk: {cold} cold / {warm} warm starts ({:.0}% warm hit rate)",
        warm as f64 / (cold + warm) as f64 * 100.0
    );
    println!(
        "openwhisk: {:.0} MiB average idle warm-pool memory held",
        avg_idle as f64 / (1 << 20) as f64
    );
    println!("fireworks: every start is a snapshot restore; zero idle sandboxes");
    println!();
    println!("Warm pools only help the popular head; the unpopular tail pays cold");
    println!("starts anyway *and* the host pays idle memory — the paper's argument");
    println!("for snapshot-based starts (§2.2).");
}
