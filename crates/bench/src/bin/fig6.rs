//! Fig. 6: latency comparison of the Node.js FaaSdom benchmarks.

use fireworks_bench::print_faasdom_figure;
use fireworks_runtime::RuntimeKind;

fn main() {
    print_faasdom_figure("Fig.6", RuntimeKind::NodeLike);
    println!();
    println!("paper: Fireworks up to 133x faster cold start-up, up to 3.8x faster warm");
    println!("       start-up; exec ~38% faster (cold) / ~25% faster (warm) on compute;");
    println!("       geomean (e): up to 8.6x shorter end-to-end latency.");
}
