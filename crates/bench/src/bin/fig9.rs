//! Fig. 9: real-world ServerlessBench applications — Alexa Skills and
//! Data Analysis — on Fireworks vs OpenWhisk (the two chain-capable
//! platforms).

use fireworks_baselines::OpenWhiskPlatform;
use fireworks_core::api::StartMode;
use fireworks_core::{FireworksPlatform, PlatformEnv};
use fireworks_lang::Value;
use fireworks_sim::Nanos;
use fireworks_workloads::generators::WageRecordGen;
use fireworks_workloads::serverlessbench::{AlexaApp, DataAnalysisApp, StageResult};

struct StageRow {
    stage: String,
    fw_startup: Nanos,
    fw_exec: Nanos,
    ow_startup: Nanos,
    ow_exec: Nanos,
}

fn print_rows(title: &str, rows: &[StageRow]) {
    println!("{title}");
    println!(
        "  {:<14} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "stage", "fw startup", "fw exec", "ow startup", "ow exec", "su ratio", "ex ratio"
    );
    for r in rows {
        println!(
            "  {:<14} {:>12} {:>12} {:>12} {:>12} {:>9.1}x {:>9.1}x",
            r.stage,
            format!("{}", r.fw_startup),
            format!("{}", r.fw_exec),
            format!("{}", r.ow_startup),
            format!("{}", r.ow_exec),
            r.ow_startup.ratio(r.fw_startup),
            r.ow_exec.ratio(r.fw_exec),
        );
    }
}

fn merge(stages_fw: &[StageResult], stages_ow: &[StageResult]) -> Vec<StageRow> {
    stages_fw
        .iter()
        .zip(stages_ow)
        .map(|(f, o)| StageRow {
            stage: f.stage.to_string(),
            fw_startup: f.invocation.breakdown.startup,
            fw_exec: f.invocation.breakdown.exec + f.invocation.breakdown.other,
            ow_startup: o.invocation.breakdown.startup,
            ow_exec: o.invocation.breakdown.exec + o.invocation.breakdown.other,
        })
        .collect()
}

fn main() {
    println!("=== Fig.9: Real-world serverless applications ===");
    println!("(exec columns include I/O time, as in the paper's breakdown)\n");

    // --- (a) Alexa Skills: fact, then reminder, then smart home, like the
    // paper's request sequence. Cold OpenWhisk (first arrival).
    let mut fw = FireworksPlatform::new(PlatformEnv::default_env());
    AlexaApp::install(&mut fw).expect("install fw");
    let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    AlexaApp::install(&mut ow).expect("install ow");

    let requests = [
        "alexa tell me a fact",
        "alexa remind me to submit report office",
        "alexa toggle the light",
    ];
    let mut all_rows = Vec::new();
    for utterance in requests {
        let f = AlexaApp::run(&mut fw, utterance, StartMode::Auto).expect("fw");
        let o = AlexaApp::run(&mut ow, utterance, StartMode::Auto).expect("ow");
        all_rows.extend(merge(&f, &o));
    }
    print_rows("Fig.9(a) Alexa Skills (per chain stage)", &all_rows);
    let (fs, fe, os, oe) = all_rows.iter().fold(
        (Nanos::ZERO, Nanos::ZERO, Nanos::ZERO, Nanos::ZERO),
        |(a, b, c, d), r| {
            (
                a + r.fw_startup,
                b + r.fw_exec,
                c + r.ow_startup,
                d + r.ow_exec,
            )
        },
    );
    println!(
        "  {:<14} {:>12} {:>12} {:>12} {:>12} {:>9.1}x {:>9.1}x",
        "TOTAL",
        format!("{fs}"),
        format!("{fe}"),
        format!("{os}"),
        format!("{oe}"),
        os.ratio(fs),
        oe.ratio(fe),
    );
    println!("  paper: 12.5x faster start-up, 2.4x faster execution\n");

    // --- (b) Data Analysis: insertion chain + DB-triggered analysis.
    let fw_env = PlatformEnv::default_env();
    let mut fw = FireworksPlatform::new(fw_env.clone());
    let mut fw_app = DataAnalysisApp::install(&mut fw, fw_env).expect("install fw");
    let ow_env = PlatformEnv::default_env();
    let mut ow = OpenWhiskPlatform::new(ow_env.clone());
    let mut ow_app = DataAnalysisApp::install(&mut ow, ow_env).expect("install ow");

    let mut gen_f = WageRecordGen::new(42);
    let mut gen_o = WageRecordGen::new(42);
    let mut insert_rows = Vec::new();
    let mut analysis_rows = Vec::new();
    for _ in 0..3 {
        let rf: Value = gen_f.next_record();
        let ro: Value = gen_o.next_record();
        let fi = fw_app
            .insert(&mut fw, &rf, StartMode::Auto)
            .expect("fw insert");
        let oi = ow_app
            .insert(&mut ow, &ro, StartMode::Auto)
            .expect("ow insert");
        insert_rows.extend(merge(&fi, &oi));
        let fa = fw_app
            .poll_trigger(&mut fw, StartMode::Auto)
            .expect("fw poll")
            .expect("fw triggered");
        let oa = ow_app
            .poll_trigger(&mut ow, StartMode::Auto)
            .expect("ow poll")
            .expect("ow triggered");
        analysis_rows.extend(merge(&fa, &oa));
    }
    print_rows("Fig.9(b) Data Analysis — insertion step", &insert_rows);
    println!("  paper: 25.6x shorter start-up, 11.8x faster execution\n");
    print_rows("Fig.9(b) Data Analysis — analysis step", &analysis_rows);
    println!("  paper: 27x faster start-up, 4.9x faster execution");
}
