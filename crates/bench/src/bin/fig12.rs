//! Fig. 12: factor analysis of memory — per-microVM PSS with 10
//! concurrent microVMs running the same benchmark, for plain Firecracker,
//! +OS snapshot, and +post-JIT (= Fireworks).

use fireworks_baselines::{FirecrackerPlatform, SnapshotPolicy};
use fireworks_core::api::Platform;
use fireworks_core::{FireworksPlatform, PlatformEnv};
use fireworks_runtime::RuntimeKind;
use fireworks_workloads::faasdom::Bench;

const VMS: usize = 10;

fn mib(b: u64) -> f64 {
    b as f64 / (1 << 20) as f64
}

fn main() {
    println!("=== Fig.12: Memory impact of Fireworks optimizations ===");
    println!("(PSS per microVM with {VMS} concurrent microVMs, light request)\n");
    println!(
        "{:<30} {:>14} {:>14} {:>14} {:>7} {:>7}",
        "benchmark", "baseline MiB", "+OS snap MiB", "+post-JIT MiB", "os %", "jit %"
    );

    for runtime in [RuntimeKind::NodeLike, RuntimeKind::PythonLike] {
        for bench in Bench::ALL {
            let spec = bench.spec(runtime);
            let args = bench.request_params();

            // Baseline: 10 cold-booted Firecracker VMs, fully private.
            let base = {
                let mut p =
                    FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
                p.install(&spec).expect("install");
                let vms: Vec<_> = (0..VMS)
                    .map(|_| p.invoke_resident(&spec.name, &args).expect("vm").1)
                    .collect();
                vms.iter().map(|v| v.pss_bytes()).sum::<u64>() / VMS as u64
            };

            // +OS snapshot: 10 VMs restored from the pre-execution image.
            let os_snap = {
                let mut p = FirecrackerPlatform::new(
                    PlatformEnv::default_env(),
                    SnapshotPolicy::OsSnapshot,
                );
                p.install(&spec).expect("install");
                let vms: Vec<_> = (0..VMS)
                    .map(|_| p.invoke_resident(&spec.name, &args).expect("vm").1)
                    .collect();
                vms.iter().map(|v| v.pss_bytes()).sum::<u64>() / VMS as u64
            };

            // +post-JIT: 10 Fireworks clones.
            let post_jit = {
                let mut p = FireworksPlatform::new(PlatformEnv::default_env());
                p.install(&spec).expect("install");
                let clones: Vec<_> = (0..VMS)
                    .map(|_| p.invoke_resident(&spec.name, &args).expect("clone").1)
                    .collect();
                clones.iter().map(|c| c.pss_bytes()).sum::<u64>() / VMS as u64
            };

            println!(
                "{:<30} {:>14.1} {:>14.1} {:>14.1} {:>6.0}% {:>6.0}%",
                spec.name,
                mib(base),
                mib(os_snap),
                mib(post_jit),
                (1.0 - os_snap as f64 / base as f64) * 100.0,
                (1.0 - post_jit as f64 / os_snap as f64) * 100.0,
            );
        }
    }
    println!();
    println!("(os % = reduction of +OS snapshot vs baseline;");
    println!(" jit % = additional reduction of +post-JIT vs +OS snapshot)");
    println!("paper: OS snapshot improves memory utilization by up to 73%;");
    println!("       post-JIT reduces Node.js memory up to a further 74% (V8's lazy");
    println!("       execution-state allocation lands in the shared snapshot), but");
    println!("       shows no significant improvement for Python (Numba/MCJIT");
    println!("       duplicates JITted code per module).");
}
