//! Fig. 12: factor analysis of memory — per-microVM PSS with 10
//! concurrent microVMs running the same benchmark, for plain Firecracker,
//! +OS snapshot, and +post-JIT (= Fireworks).
//!
//! The 10-VM population is built by the concurrent invocation engine: a
//! burst of 10 simultaneous requests admitted in retain mode, so all ten
//! sandboxes genuinely coexist (and share copy-on-write pages) when PSS
//! is sampled from their in-flight tokens.

use fireworks_baselines::{FirecrackerPlatform, SnapshotPolicy};
use fireworks_core::engine::{run_concurrent, EngineConfig};
use fireworks_core::fid;
use fireworks_core::{ConcurrentPlatform, FireworksPlatform, InFlightToken, PlatformEnv};
use fireworks_lang::Value;
use fireworks_runtime::RuntimeKind;
use fireworks_workloads::arrivals::burst;
use fireworks_workloads::faasdom::Bench;

const VMS: usize = 10;

fn mib(b: u64) -> f64 {
    b as f64 / (1 << 20) as f64
}

/// Boots `VMS` concurrent sandboxes via one engine burst and returns the
/// mean PSS across the retained (still-live) population.
fn mean_pss<P, F>(make: F, spec: &fireworks_core::api::FunctionSpec, args: &Value) -> u64
where
    P: ConcurrentPlatform,
    F: FnOnce(PlatformEnv) -> P,
{
    let env = PlatformEnv::default_env();
    let mut platform = make(env.clone());
    platform.install(spec).expect("install");
    let wave = burst(fid(&spec.name), args, VMS, env.clock.now());
    let report = run_concurrent(
        &mut platform,
        &env.clock,
        &env.obs,
        &EngineConfig::new(VMS).retain_completed(),
        &wave,
    );
    assert_eq!(report.peak_inflight, VMS, "all {VMS} microVMs must coexist");
    for c in &report.completions {
        assert!(c.result.is_ok(), "factor analysis is fault-free");
    }
    report
        .retained
        .iter()
        .map(InFlightToken::pss_bytes)
        .sum::<u64>()
        / VMS as u64
}

fn main() {
    println!("=== Fig.12: Memory impact of Fireworks optimizations ===");
    println!("(PSS per microVM with {VMS} concurrent microVMs, light request)\n");
    println!(
        "{:<30} {:>14} {:>14} {:>14} {:>7} {:>7}",
        "benchmark", "baseline MiB", "+OS snap MiB", "+post-JIT MiB", "os %", "jit %"
    );

    for runtime in [RuntimeKind::NodeLike, RuntimeKind::PythonLike] {
        for bench in Bench::ALL {
            let spec = bench.spec(runtime);
            let args = bench.request_params();

            // Baseline: 10 cold-booted Firecracker VMs, fully private.
            let base = mean_pss(
                |env| FirecrackerPlatform::new(env, SnapshotPolicy::None),
                &spec,
                &args,
            );

            // +OS snapshot: 10 VMs restored from the pre-execution image.
            let os_snap = mean_pss(
                |env| FirecrackerPlatform::new(env, SnapshotPolicy::OsSnapshot),
                &spec,
                &args,
            );

            // +post-JIT: 10 Fireworks clones.
            let post_jit = mean_pss(FireworksPlatform::new, &spec, &args);

            println!(
                "{:<30} {:>14.1} {:>14.1} {:>14.1} {:>6.0}% {:>6.0}%",
                spec.name,
                mib(base),
                mib(os_snap),
                mib(post_jit),
                (1.0 - os_snap as f64 / base as f64) * 100.0,
                (1.0 - post_jit as f64 / os_snap as f64) * 100.0,
            );
        }
    }
    println!();
    println!("(os % = reduction of +OS snapshot vs baseline;");
    println!(" jit % = additional reduction of +post-JIT vs +OS snapshot)");
    println!("paper: OS snapshot improves memory utilization by up to 73%;");
    println!("       post-JIT reduces Node.js memory up to a further 74% (V8's lazy");
    println!("       execution-state allocation lands in the shared snapshot), but");
    println!("       shows no significant improvement for Python (Numba/MCJIT");
    println!("       duplicates JITted code per module).");
}
