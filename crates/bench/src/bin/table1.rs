//! Table 1: design comparison of serverless platforms.

use fireworks_baselines::{FirecrackerPlatform, GvisorPlatform, OpenWhiskPlatform, SnapshotPolicy};
use fireworks_core::api::Platform;
use fireworks_core::{FireworksPlatform, PlatformEnv};

fn main() {
    println!("=== Table 1: Design comparison of serverless platforms ===\n");
    println!(
        "{:<28} {:<28} {:<26} {:<26}",
        "Serverless Platform", "Isolation", "Performance", "Memory Efficiency"
    );

    let fc = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::OsSnapshot);
    let ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    let gv = GvisorPlatform::new(PlatformEnv::default_env());
    let fw = FireworksPlatform::new(PlatformEnv::default_env());

    let rows: Vec<(&str, String, &str, &str)> = vec![
        (
            "Firecracker (Amazon)",
            fc.isolation().label().to_string(),
            "Medium (snapshot)",
            "High (snapshot)",
        ),
        (
            "OpenWhisk (IBM)",
            ow.isolation().label().to_string(),
            "Low (no optimization)",
            "Low (pre-launching)",
        ),
        (
            "gVisor (Google)",
            gv.isolation().label().to_string(),
            "Medium (snapshot)",
            "High (snapshot)",
        ),
        (
            "Cloudflare Workers",
            fireworks_sandbox::IsolationLevel::RuntimeOnly
                .label()
                .to_string(),
            "High (pre-launching)",
            "High (process sharing)",
        ),
        (
            "Catalyzer",
            "Med (container)".to_string(),
            "High (pre-launching)",
            "High (process sharing)",
        ),
        (
            "Fireworks",
            fw.isolation().label().to_string(),
            "Extreme (snapshot+JIT)",
            "Extreme (snapshot+JIT)",
        ),
    ];
    for (name, isolation, perf, mem) in rows {
        println!("{name:<28} {isolation:<28} {perf:<26} {mem:<26}");
    }
    println!();
    println!("(Cloudflare Workers and Catalyzer are shown for design comparison only —");
    println!(" like the paper, they are not in the quantitative evaluation.)");
}
