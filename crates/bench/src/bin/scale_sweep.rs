//! Planet-scale simulator throughput sweep: the Azure-shaped trace
//! (Zipf popularity over thousands of tenants, diurnal envelopes,
//! correlated bursts, log-normal durations) driven through a
//! cost-model cluster at 64–256 hosts and ≥1M virtual invocations.
//!
//! Two outputs, deliberately separated:
//!
//! - **stdout**: one JSON document that is a pure function of the
//!   seed and knobs — routing quality, latency quantiles, start mix,
//!   and the deterministic `events_processed` denominator. CI runs the
//!   sweep twice and byte-diffs this.
//! - **stderr**: one JSON line per point with wall-clock milliseconds
//!   and simulator events/sec — real-machine throughput, excluded from
//!   stdout so determinism survives noisy hardware.
//!
//! Usage: `scale_sweep [--hosts N] [--invocations N] [--seed N]
//! [--budget-ms N]`. With `--hosts` the sweep collapses to that single
//! width (CI smoke: `--hosts 16 --invocations 100000`); `--budget-ms`
//! asserts the whole run's wall clock stays under the budget.

use fireworks_bench::scale::{run_scale_point, ScalePoint, ScaleReport};

/// Default swept widths.
const HOSTS: [usize; 3] = [64, 128, 256];
/// Default trace size per point.
const INVOCATIONS: u64 = 1_000_000;

struct Args {
    hosts: Option<usize>,
    invocations: u64,
    seed: u64,
    budget_ms: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        hosts: None,
        invocations: INVOCATIONS,
        seed: 42,
        budget_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {name} needs a non-negative integer");
                eprintln!(
                    "usage: scale_sweep [--hosts N] [--invocations N] [--seed N] [--budget-ms N]"
                );
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--hosts" => args.hosts = Some(value("--hosts") as usize),
            "--invocations" => args.invocations = value("--invocations"),
            "--seed" => args.seed = value("--seed"),
            "--budget-ms" => args.budget_ms = Some(value("--budget-ms")),
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!(
                    "usage: scale_sweep [--hosts N] [--invocations N] [--seed N] [--budget-ms N]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let widths: Vec<usize> = match args.hosts {
        Some(h) => vec![h],
        None => HOSTS.to_vec(),
    };

    let sweep_clock = std::time::Instant::now();
    let mut reports: Vec<ScaleReport> = Vec::new();
    for hosts in widths {
        let point = ScalePoint::new(hosts, args.invocations, args.seed);
        let wall = std::time::Instant::now();
        let report = run_scale_point(&point);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        // Wall-clock throughput is machine-dependent: stderr only.
        eprintln!(
            "{{\"hosts\": {}, \"events\": {}, \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}}}",
            report.hosts,
            report.events_processed,
            wall_ms,
            report.events_processed as f64 / (wall_ms / 1e3).max(1e-9),
        );
        assert_eq!(report.failed, 0, "the sweep is fault-free by design");
        assert_eq!(
            report.completed, report.requests,
            "no request may be dropped"
        );
        assert!(
            report.warm_starts > report.cold_starts,
            "locality routing must make snapshot restores dominate \
             ({} warm vs {} cold on {} hosts)",
            report.warm_starts,
            report.cold_starts,
            report.hosts
        );
        reports.push(report);
    }
    let total_wall_ms = sweep_clock.elapsed().as_secs_f64() * 1e3;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"seed\": {},\n  \"invocations\": {},\n",
        args.seed, args.invocations
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"hosts\": {}, \"requests\": {}, \"functions\": {}, \"completed\": {}, \
             \"p50_start_ns\": {}, \"p99_start_ns\": {}, \"p50_sojourn_ns\": {}, \
             \"p99_sojourn_ns\": {}, \"locality_hits\": {}, \"rebalances\": {}, \
             \"cold_starts\": {}, \"warm_starts\": {}, \"events_processed\": {}, \
             \"makespan_ns\": {}, \"fingerprint\": {}}}{}\n",
            r.hosts,
            r.requests,
            r.functions,
            r.completed,
            r.p50_start.as_nanos(),
            r.p99_start.as_nanos(),
            r.p50_sojourn.as_nanos(),
            r.p99_sojourn.as_nanos(),
            r.locality_hits,
            r.rebalances,
            r.cold_starts,
            r.warm_starts,
            r.events_processed,
            r.makespan.as_nanos(),
            r.fingerprint,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    fireworks_obs::json::validate(&out).expect("scale_sweep emits valid JSON");
    print!("{out}");

    if let Some(budget) = args.budget_ms {
        assert!(
            total_wall_ms <= budget as f64,
            "scale_sweep blew its wall-clock budget: {total_wall_ms:.0}ms > {budget}ms"
        );
    }
}
