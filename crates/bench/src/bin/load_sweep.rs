//! Load sweep: tail latency under increasing request rate.
//!
//! Start-up latency is not only a per-request cost — on a consolidated
//! host with limited invoker slots it occupies capacity, so slow starts
//! inflate queueing delay and the p99 long before the host saturates.
//! This experiment measures each platform's idle-host invocation latency
//! (cold and warm), then replays identical Poisson arrival sequences
//! through a k-slot FCFS queue: OpenWhisk-style requests pay the cold
//! latency on each function's first arrival and warm afterwards;
//! Fireworks requests always pay the snapshot-restore latency.

use fireworks_baselines::OpenWhiskPlatform;
use fireworks_core::api::{Platform, StartMode};
use fireworks_core::{FireworksPlatform, PlatformEnv};
use fireworks_runtime::RuntimeKind;
use fireworks_sim::queueing::{poisson_arrivals, simulate, Arrival, Completion};
use fireworks_sim::rng::SplitMix64;
use fireworks_sim::Nanos;
use fireworks_workloads::faasdom::Bench;

const SLOTS: usize = 8;
const REQUESTS: usize = 2_000;
const FUNCTIONS: u64 = 40;

fn percentile(completions: &[Completion], p: f64) -> Nanos {
    let mut s: Vec<Nanos> = completions.iter().map(Completion::sojourn).collect();
    s.sort_unstable();
    let idx = ((s.len() as f64 - 1.0) * p / 100.0).round() as usize;
    s[idx]
}

fn main() {
    println!("=== Load sweep: sojourn time vs offered load ({SLOTS} invoker slots) ===");
    println!("{REQUESTS} requests across {FUNCTIONS} functions, Zipf-less uniform mix\n");

    // Measure idle-host latencies once (deterministic).
    let bench = Bench::Fact;
    let spec = bench.spec(RuntimeKind::NodeLike);
    let args = bench.request_params();

    let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
    ow.install(&spec).expect("install");
    let ow_cold = ow
        .invoke(&spec.name, &args, StartMode::Cold)
        .expect("cold")
        .total();
    let ow_warm = ow
        .invoke(&spec.name, &args, StartMode::Warm)
        .expect("warm")
        .total();

    let mut fw = FireworksPlatform::new(PlatformEnv::default_env());
    fw.install(&spec).expect("install");
    let fw_any = fw
        .invoke(&spec.name, &args, StartMode::Auto)
        .expect("fw")
        .total();

    println!("idle-host latencies: openwhisk cold {ow_cold}, warm {ow_warm}; fireworks {fw_any}\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "load", "ow p50", "ow p99", "fw p50", "fw p99", "p99 ratio", "util"
    );

    // Sweep mean inter-arrival times from light to heavy load.
    for mean_ms in [200u64, 100, 50, 25, 12] {
        let mean = Nanos::from_millis(mean_ms);
        // OpenWhisk: each function's first arrival in the sequence is
        // cold; later ones are warm (keep-alive assumed longer than the
        // run).
        let mut seen = std::collections::HashSet::new();
        let mut fn_rng = SplitMix64::new(99);
        let fn_of: Vec<u64> = (0..REQUESTS)
            .map(|_| fn_rng.next_below(FUNCTIONS))
            .collect();
        let ow_arrivals = poisson_arrivals(7, REQUESTS, mean, |i, _| {
            if seen.insert(fn_of[i]) {
                ow_cold
            } else {
                ow_warm
            }
        });
        // Fireworks: identical arrival instants, uniform service.
        let fw_arrivals: Vec<Arrival> = ow_arrivals
            .iter()
            .map(|a| Arrival {
                at: a.at,
                service: fw_any,
            })
            .collect();

        let ow_done = simulate(SLOTS, &ow_arrivals);
        let fw_done = simulate(SLOTS, &fw_arrivals);
        let horizon = ow_arrivals.last().expect("nonempty").at;
        let offered =
            fw_any.as_nanos() as f64 * REQUESTS as f64 / (horizon.as_nanos() as f64 * SLOTS as f64);
        println!(
            "{:>9}ms {:>12} {:>12} {:>12} {:>12} {:>11.1}x {:>11.2}",
            mean_ms,
            format!("{}", percentile(&ow_done, 50.0)),
            format!("{}", percentile(&ow_done, 99.0)),
            format!("{}", percentile(&fw_done, 50.0)),
            format!("{}", percentile(&fw_done, 99.0)),
            percentile(&ow_done, 99.0).ratio(percentile(&fw_done, 99.0)),
            offered,
        );
    }
    println!();
    println!("(load = mean inter-arrival time; util = Fireworks' offered utilisation)");
    println!("Cold starts poison the tail even at low load — and under pressure the");
    println!("slots they occupy push the whole queue out. Snapshot starts keep the");
    println!("p99 within a small factor of the p50.");
}
