//! Load sweep: tail latency under increasing request rate, measured with
//! real concurrent invocations.
//!
//! Start-up latency is not only a per-request cost — on a consolidated
//! host with limited invoker slots it occupies capacity, so slow starts
//! inflate queueing delay and the p99 long before the host saturates.
//! Identical open-loop Poisson schedules (from `workloads::arrivals`)
//! are driven through the concurrent invocation engine for OpenWhisk and
//! Fireworks: every request is a genuine invocation — cold starts happen
//! when a function's warm pool is empty (including simultaneous arrivals
//! racing for the same pool), snapshot restores contend for the cache,
//! and in-flight sandboxes hold guest memory until their completion
//! event.
//!
//! A second phase reruns the paper's density claim (§5.4) under the same
//! engine: at equal host RAM, Fireworks sustains more concurrent clones
//! than Firecracker+OS-snapshot because its post-JIT snapshot keeps the
//! JIT code and warmed heap in shared copy-on-write pages, while the OS
//! snapshot's clones re-JIT privately.
//!
//! Usage: `load_sweep [seed]` (default 42). Output is a pure function of
//! the seed: two same-seed runs are byte-identical.

use fireworks_baselines::{FirecrackerPlatform, OpenWhiskPlatform, SnapshotPolicy};
use fireworks_core::engine::{run_concurrent, EngineCompletion, EngineConfig};
use fireworks_core::env::EnvConfig;
use fireworks_core::fid;
use fireworks_core::{ConcurrentPlatform, FireworksPlatform, PlatformEnv};
use fireworks_lang::Value;
use fireworks_runtime::RuntimeKind;
use fireworks_sim::{CostModel, Nanos};
use fireworks_workloads::arrivals::{burst, poisson_schedule};
use fireworks_workloads::faasdom::Bench;

/// Invoker slots for the latency sweep.
const SLOTS: usize = 8;
/// Requests per swept rate.
const REQUESTS: usize = 240;
/// Functions in the request mix.
const FUNCTIONS: usize = 4;
/// Swept mean inter-arrival times (ms), light to heavy load.
const RATES_MS: [u64; 5] = [200, 100, 50, 25, 12];

/// Host RAM for the density phase; swap onset at 60% (vm.swappiness=60).
const DENSITY_RAM: u64 = 6 << 30;
/// Clones admitted per engine wave in the density phase.
const DENSITY_WAVE: usize = 8;
/// Safety cap on density waves.
const DENSITY_MAX_WAVES: usize = 200;

fn mix() -> Vec<(String, Value)> {
    let bench = Bench::Fact;
    (0..FUNCTIONS)
        .map(|i| (format!("fact-{i}"), bench.request_params()))
        .collect()
}

fn percentile(completions: &[EngineCompletion], p: f64) -> Nanos {
    let mut s: Vec<Nanos> = completions.iter().map(EngineCompletion::sojourn).collect();
    s.sort_unstable();
    let idx = ((s.len() as f64 - 1.0) * p / 100.0).round() as usize;
    s[idx]
}

/// Installs the mix and drives one rate point's schedule through the
/// engine; returns `(completions, peak_inflight, peak_queue_depth,
/// events_processed)`.
fn run_rate<P, F>(make: F, seed: u64, mean: Nanos) -> (Vec<EngineCompletion>, usize, usize, u64)
where
    P: ConcurrentPlatform,
    F: FnOnce(PlatformEnv) -> P,
{
    let env = PlatformEnv::default_env();
    let mut platform = make(env.clone());
    let spec_src = Bench::Fact.spec(RuntimeKind::NodeLike);
    let mix = mix();
    for (name, _) in &mix {
        let mut spec = spec_src.clone();
        spec.name = name.clone();
        platform.install(&spec).expect("install");
    }
    let interned: Vec<(fireworks_core::FunctionId, Value)> =
        mix.iter().map(|(n, a)| (fid(n), a.deep_clone())).collect();
    let schedule = poisson_schedule(seed, REQUESTS, mean, &interned);
    let report = run_concurrent(
        &mut platform,
        &env.clock,
        &env.obs,
        &EngineConfig::new(SLOTS),
        &schedule,
    );
    for c in &report.completions {
        assert!(c.result.is_ok(), "fault-free sweep");
    }
    (
        report.completions,
        report.peak_inflight,
        report.peak_queue_depth,
        report.events_processed,
    )
}

fn density_env() -> PlatformEnv {
    PlatformEnv::new(EnvConfig {
        ram_bytes: DENSITY_RAM,
        swappiness: 60,
        costs: CostModel::default(),
        ..EnvConfig::default()
    })
}

/// Admits waves of concurrent clones through the engine (retain mode)
/// until the host starts swapping; returns the sustained clone count.
fn density<P, F>(make: F) -> usize
where
    P: ConcurrentPlatform,
    F: FnOnce(PlatformEnv) -> P,
{
    let env = density_env();
    let mut platform = make(env.clone());
    let spec = Bench::Fact.paper_spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.paper_params();
    platform.install(&spec).expect("install");
    let mut resident: Vec<P::InFlight> = Vec::new();
    for _ in 0..DENSITY_MAX_WAVES {
        if env.host_mem.is_swapping() {
            break;
        }
        let wave = burst(fid(&spec.name), &args, DENSITY_WAVE, env.clock.now());
        let report = run_concurrent(
            &mut platform,
            &env.clock,
            &env.obs,
            &EngineConfig::new(DENSITY_WAVE).retain_completed(),
            &wave,
        );
        for c in &report.completions {
            assert!(c.result.is_ok(), "density waves are fault-free");
        }
        for token in report.retained {
            resident.push(token);
            if env.host_mem.is_swapping() {
                break;
            }
        }
    }
    // Count the clones live before swap onset.
    let mut count = resident.len();
    if env.host_mem.is_swapping() && count > 0 {
        count -= 1;
    }
    count
}

fn main() {
    let seed = match std::env::args().nth(1) {
        None => 42,
        Some(arg) => match arg.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed must be a non-negative integer, got {arg:?}");
                eprintln!("usage: load_sweep [seed]");
                std::process::exit(2);
            }
        },
    };

    println!("=== Load sweep: sojourn time vs offered load ({SLOTS} invoker slots) ===");
    println!(
        "{REQUESTS} concurrent invocations per rate across {FUNCTIONS} functions, seed {seed}\n"
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "load", "ow p50", "ow p99", "fw p50", "fw p99", "p99 ratio", "ow queue", "fw queue"
    );

    let wall = std::time::Instant::now();
    let mut events = 0u64;
    for mean_ms in RATES_MS {
        let mean = Nanos::from_millis(mean_ms);
        // Same seed → identical arrival schedules for both platforms.
        let (ow_done, _ow_peak, ow_queue, ow_events) =
            run_rate(OpenWhiskPlatform::new, seed.wrapping_add(mean_ms), mean);
        let (fw_done, fw_peak, fw_queue, fw_events) =
            run_rate(FireworksPlatform::new, seed.wrapping_add(mean_ms), mean);
        assert!(fw_peak >= 1);
        events += ow_events + fw_events;
        println!(
            "{:>9}ms {:>12} {:>12} {:>12} {:>12} {:>11.1}x {:>9} {:>9}",
            mean_ms,
            format!("{}", percentile(&ow_done, 50.0)),
            format!("{}", percentile(&ow_done, 99.0)),
            format!("{}", percentile(&fw_done, 50.0)),
            format!("{}", percentile(&fw_done, 99.0)),
            percentile(&ow_done, 99.0).ratio(percentile(&fw_done, 99.0)),
            ow_queue,
            fw_queue,
        );
    }
    println!();
    println!("simulator events processed: {events}");
    // Wall-clock throughput is machine-dependent: stderr only, so
    // stdout stays byte-identical across runs.
    eprintln!(
        "{{\"bench\": \"load_sweep\", \"events\": {events}, \"events_per_sec\": {:.0}}}",
        events as f64 / wall.elapsed().as_secs_f64().max(1e-9)
    );
    println!("(load = mean inter-arrival time; queue = peak admission-queue depth)");
    println!("Cold starts poison the tail even at low load — and under pressure the");
    println!("slots they occupy push the whole queue out. Snapshot starts keep the");
    println!("p99 within a small factor of the p50.\n");

    println!(
        "=== Density: concurrent clones at equal host RAM ({} GiB, swap onset 60%) ===",
        DENSITY_RAM >> 30
    );
    let fw_count = density(FireworksPlatform::new);
    let fc_count = density(|env| FirecrackerPlatform::new(env, SnapshotPolicy::OsSnapshot));
    println!("fireworks            : {fw_count} concurrent clones before swapping");
    println!("firecracker+snapshot : {fc_count} concurrent clones before swapping");
    assert!(
        fw_count > fc_count,
        "paper-shape violated: fireworks {fw_count} vs firecracker+snapshot {fc_count}"
    );
    println!(
        "consolidation        : {:.0}% more sandboxes (post-JIT snapshot keeps JIT code",
        (fw_count as f64 / fc_count as f64) * 100.0 - 100.0
    );
    println!("and warmed heap in shared CoW pages; OS-snapshot clones re-JIT privately)");
}
