//! §5.1: post-JIT snapshot creation time in the install phase.
//!
//! The paper reports 0.36–0.47 s (Node.js) and 0.38–0.44 s (Python) for
//! the snapshot write itself, on top of package install and JIT warm-up.

use fireworks_bench::mib;
use fireworks_core::api::Platform;
use fireworks_core::{FireworksPlatform, PlatformEnv};
use fireworks_runtime::RuntimeKind;
use fireworks_sim::CostModel;
use fireworks_workloads::faasdom::Bench;

fn main() {
    println!("=== §5.1: Post-JIT snapshot creation time (install phase) ===\n");
    println!(
        "{:<30} {:>14} {:>14} {:>14} {:>12}",
        "function", "install total", "snapshot write", "snapshot size", "@jit fns"
    );
    let costs = CostModel::default();
    for runtime in [RuntimeKind::NodeLike, RuntimeKind::PythonLike] {
        for bench in Bench::ALL {
            let mut platform = FireworksPlatform::new(PlatformEnv::default_env());
            let spec = bench.paper_spec(runtime);
            let report = platform.install(&spec).expect("install");
            let write = costs.microvm.snapshot_create_base
                + costs.microvm.snapshot_write_per_page * report.snapshot_pages as u64;
            println!(
                "{:<30} {:>14} {:>14} {:>14} {:>12}",
                spec.name,
                format!("{}", report.install_time),
                format!("{}", write),
                mib(report.snapshot_bytes),
                report.annotated_functions,
            );
        }
    }
    println!();
    println!("paper: snapshot write 0.36–0.47 s (Node.js), 0.38–0.44 s (Python);");
    println!("       install total dominated by package install + JIT warm-up.");
}
