//! Trace query: end-to-end request tracing over a multi-host cluster.
//!
//! Drives a seeded 4-host cluster (bounded snapshot caches, an 8-function
//! mix, locality routing), then reassembles the recorder's event log into
//! per-request causal trees with [`fireworks_obs::TraceForest`] and
//! reports:
//!
//! - the top-N slowest requests with their critical paths (the greedy
//!   longest-child descent from each request's root span),
//! - the cluster-wide latency decomposition (queueing / routing / fetch /
//!   restore / JIT-warmup / exec self-time),
//! - sojourn percentiles from merged per-function
//!   [`fireworks_obs::LogHistogram`] sketches,
//! - per-function SLO burn rates.
//!
//! The report is a pure function of the seed: two same-seed runs are
//! byte-identical (CI diffs them). Before printing, the binary verifies
//! its own trace plane — every request yields exactly one tree, no
//! orphan spans, per-request attribution sums to the sojourn — and
//! schema-checks the JSONL/Chrome/metrics exports, exiting non-zero on
//! any violation.
//!
//! Usage:
//!   `trace_query [seed] [top_n]`     — run + report (JSON on stdout)
//!   `trace_query --check-schema DIR` — schema-check exported artifacts
//!                                      (`*.jsonl`, `trace.chrome.json`,
//!                                      `metrics.json`) in `DIR`

use std::path::Path;
use std::process::ExitCode;

use fireworks_core::api::FunctionSpec;
use fireworks_core::cluster::{Cluster, ClusterConfig, LocalityAffinity};
use fireworks_core::{fid, FireworksPlatform, FunctionId, PlatformConfig};
use fireworks_lang::Value;
use fireworks_obs::{export, json, slo_burn, LogHistogram, PhaseClass, RequestTrace, TraceForest};
use fireworks_runtime::RuntimeKind;
use fireworks_sim::Nanos;
use fireworks_workloads::arrivals::poisson_schedule;

/// Hosts in the traced cluster.
const HOSTS: usize = 4;
/// Invoker slots per host.
const SLOTS_PER_HOST: usize = 2;
/// Functions in the request mix — more than one host's cache can hold.
const FUNCTIONS: usize = 8;
/// Requests driven through the cluster.
const REQUESTS: usize = 120;
/// Mean inter-arrival time. Roughly balances offered load against the
/// fleet's service rate, so slow requests split between queueing delay
/// and in-service work (fetch / restore / JIT warm-up) instead of
/// queueing swamping every critical path.
const RATE_MS: u64 = 250;
/// Per-host snapshot-cache budget: room for roughly two post-JIT
/// snapshots, so rebuilds (JIT warm-up) show up in the decomposition.
const CACHE_BUDGET: u64 = 340 << 20;
/// Per-request sojourn SLO target for the burn-rate report: generous
/// for a warm restore, blown by any rebuild-from-source.
const SLO: Nanos = Nanos::from_millis(100);
/// Allowed SLO violation fraction (99% target).
const SLO_BUDGET: f64 = 0.01;

const SRC: &str = "
    fn main(params) {
        let n = params[\"n\"];
        let t = 0;
        for (let i = 0; i < n; i = i + 1) { t = t + i; }
        return t;
    }";

fn mix() -> Vec<(String, Value)> {
    (0..FUNCTIONS)
        .map(|i| {
            (
                format!("svc-{i}"),
                Value::map([("n".to_string(), Value::Int(2_000))]),
            )
        })
        .collect()
}

/// Runs the traced cluster and returns its forest plus the exports to
/// self-validate.
fn run_cluster(seed: u64) -> Result<(TraceForest, usize), String> {
    let mut config = ClusterConfig::new(HOSTS, SLOTS_PER_HOST);
    config.platform = PlatformConfig::builder().cache_budget(CACHE_BUDGET).build();
    let mut cluster = Cluster::new(config, |env, cfg| {
        FireworksPlatform::with_config(env, cfg.clone())
    });
    let mix = mix();
    for (name, args) in &mix {
        let spec = FunctionSpec::new(name, SRC, RuntimeKind::NodeLike, args.deep_clone());
        cluster
            .install(&spec)
            .map_err(|e| format!("install {name}: {e:?}"))?;
    }
    let interned: Vec<(FunctionId, Value)> =
        mix.iter().map(|(n, a)| (fid(n), a.deep_clone())).collect();
    let schedule = poisson_schedule(seed, REQUESTS, Nanos::from_millis(RATE_MS), &interned);
    let mut router = LocalityAffinity::new();
    let report = cluster.run(&mut router, &schedule);
    for c in &report.completions {
        if c.result.is_err() {
            return Err(format!("fault-free run failed: {:?}", c.result));
        }
    }

    let obs = cluster.obs().clone();
    obs.recorder().finish();
    let now = cluster.clock().now();

    // Self-validation: the exports the trace plane would write must pass
    // their schema checks before we trust the forest built from them.
    export::schema::check_jsonl(&export::jsonl(obs.recorder()))
        .map_err(|e| format!("jsonl schema: {e}"))?;
    export::schema::check_chrome(&export::chrome_trace(&[("cluster", obs.recorder())]))
        .map_err(|e| format!("chrome schema: {e}"))?;
    export::schema::check_metrics(&obs.metrics().snapshot().to_json())
        .map_err(|e| format!("metrics schema: {e}"))?;

    let forest = TraceForest::build(&obs.recorder().events(), now);
    if !forest.orphans.is_empty() {
        return Err(format!("orphan spans: {:?}", forest.orphans));
    }
    if forest.requests.len() != REQUESTS {
        return Err(format!(
            "expected {REQUESTS} request trees, got {}",
            forest.requests.len()
        ));
    }
    for r in &forest.requests {
        if r.attribution.total() != r.sojourn {
            return Err(format!(
                "trace {}: attribution {:?} != sojourn {:?}",
                r.trace.raw(),
                r.attribution.total(),
                r.sojourn
            ));
        }
    }
    Ok((forest, REQUESTS))
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn sketch_json(h: &LogHistogram) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        h.count(),
        h.quantile(50.0),
        h.quantile(90.0),
        h.quantile(99.0),
        h.max().unwrap_or(0)
    )
}

fn slowest_json(requests: &[&RequestTrace]) -> String {
    let entries: Vec<String> = requests
        .iter()
        .map(|r| {
            let hops: Vec<String> = r
                .critical_path
                .iter()
                .map(|h| {
                    format!(
                        "{{\"name\":{},\"class\":{},\"dur_ns\":{}}}",
                        json_str(&h.name),
                        json_str(h.class.name()),
                        h.duration.as_nanos()
                    )
                })
                .collect();
            let hosts: Vec<String> = r.hosts.iter().map(u64::to_string).collect();
            format!(
                "{{\"trace\":{},\"function\":{},\"sojourn_ns\":{},\"spans\":{},\"hosts\":[{}],\"critical_path\":[{}]}}",
                r.trace.raw(),
                json_str(r.function.as_deref().unwrap_or("?")),
                r.sojourn.as_nanos(),
                r.spans,
                hosts.join(","),
                hops.join(",")
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn run(seed: u64, top_n: usize) -> Result<(), String> {
    let (forest, requests) = run_cluster(seed)?;

    // Per-function sojourn sketches, then merged cluster-wide — the
    // merge is the point: sketches built independently (per function,
    // per host, per shard) combine without re-reading samples.
    let mut per_fn: std::collections::BTreeMap<String, LogHistogram> =
        std::collections::BTreeMap::new();
    for r in &forest.requests {
        per_fn
            .entry(r.function.clone().unwrap_or_else(|| "?".to_string()))
            .or_default()
            .observe(r.sojourn.as_nanos());
    }
    let mut merged = LogHistogram::new();
    for h in per_fn.values() {
        merged.merge(h);
    }
    if merged.count() != forest.requests.len() as u64 {
        return Err("merged sketch lost samples".to_string());
    }

    let mut total = fireworks_obs::Attribution::default();
    for r in &forest.requests {
        total.merge(&r.attribution);
    }

    let mut slowest: Vec<&RequestTrace> = forest.requests.iter().collect();
    slowest.sort_by_key(|r| (std::cmp::Reverse(r.sojourn), r.trace.raw()));
    slowest.truncate(top_n);

    let attribution: Vec<String> = PhaseClass::all()
        .iter()
        .map(|c| format!("{}:{}", json_str(c.name()), total.get(*c).as_nanos()))
        .collect();
    let slo: Vec<String> = slo_burn(&forest.requests, SLO, SLO_BUDGET)
        .iter()
        .map(|s| {
            format!(
                "{{\"function\":{},\"total\":{},\"violations\":{},\"burn_rate\":{:.4}}}",
                json_str(&s.function),
                s.total,
                s.violations,
                s.burn_rate
            )
        })
        .collect();

    let slo_json = format!("[{}]", slo.join(","));
    let doc = format!(
        "{{\n\"seed\":{seed},\n\"hosts\":{HOSTS},\n\"requests\":{requests},\n\"traces\":{},\n\"orphans\":0,\n\"sojourn_ns\":{},\n\"attribution_ns\":{{{}}},\n\"slowest\":{},\n\"slo\":{slo_json}\n}}",
        forest.requests.len(),
        sketch_json(&merged),
        attribution.join(","),
        slowest_json(&slowest),
    );
    json::validate(&doc).map_err(|e| format!("report is invalid JSON: {e}"))?;
    println!("{doc}");
    Ok(())
}

/// Schema-checks previously exported artifacts (e.g. `trace_dump`
/// output): every `*.jsonl` line log, the Chrome trace, and the metrics
/// snapshot(s).
fn check_schema(dir: &Path) -> Result<(), String> {
    let mut checked = 0usize;
    let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    names.sort();
    for path in names {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let read =
            || std::fs::read_to_string(&path).map_err(|e| format!("cannot read {name}: {e}"));
        if name.ends_with(".jsonl") {
            export::schema::check_jsonl(&read()?).map_err(|e| format!("{name}: {e}"))?;
            checked += 1;
        } else if name == "trace.chrome.json" {
            export::schema::check_chrome(&read()?).map_err(|e| format!("{name}: {e}"))?;
            checked += 1;
        } else if name == "metrics.json" {
            // One snapshot, or a `{"label": snapshot, …}` wrapper (the
            // shape trace_dump writes) — accept both.
            let text = read()?;
            let v = json::parse(&text).map_err(|e| format!("{name}: {e}"))?;
            let snapshots: Vec<String> = if v.get("counters").is_some() {
                vec![text.clone()]
            } else {
                match &v {
                    json::Value::Object(members) => members
                        .iter()
                        .map(|(_, snap)| json::to_text(snap))
                        .collect(),
                    _ => return Err(format!("{name}: not a metrics snapshot")),
                }
            };
            for snap in &snapshots {
                export::schema::check_metrics(snap).map_err(|e| format!("{name}: {e}"))?;
            }
            checked += 1;
        }
    }
    if checked == 0 {
        return Err(format!("no artifacts found in {}", dir.display()));
    }
    println!(
        "trace_query: schema-checked {checked} artifacts in {}",
        dir.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--check-schema") => match args.get(1) {
            Some(dir) => check_schema(Path::new(dir)),
            None => Err("usage: trace_query --check-schema DIR".to_string()),
        },
        _ => {
            let seed = match args.first() {
                None => 42,
                Some(arg) => match arg.parse::<u64>() {
                    Ok(seed) => seed,
                    Err(_) => {
                        eprintln!("error: seed must be a non-negative integer, got {arg:?}");
                        eprintln!("usage: trace_query [seed] [top_n] | --check-schema DIR");
                        return ExitCode::from(2);
                    }
                },
            };
            let top_n = args
                .get(1)
                .and_then(|a| a.parse::<usize>().ok())
                .unwrap_or(5);
            run(seed, top_n)
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("trace_query: FAILED: {err}");
            ExitCode::FAILURE
        }
    }
}
