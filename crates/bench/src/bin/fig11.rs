//! Fig. 11: factor analysis of performance — starting from plain
//! Firecracker, adding a VM-level OS snapshot, then the post-JIT snapshot
//! (= Fireworks). Cold starts, end-to-end latency, all eight FaaSdom
//! variants.

use fireworks_baselines::{FirecrackerPlatform, SnapshotPolicy};
use fireworks_core::api::{InvokeRequest, Platform, StartMode};
use fireworks_core::fid;
use fireworks_core::{FireworksPlatform, PlatformEnv};
use fireworks_runtime::RuntimeKind;
use fireworks_sim::Nanos;
use fireworks_workloads::faasdom::Bench;

fn main() {
    println!("=== Fig.11: Performance impact of Fireworks optimizations ===");
    println!("(cold-start end-to-end latency; speedups are vs the Firecracker baseline)\n");
    println!(
        "{:<30} {:>12} {:>15} {:>15} {:>9} {:>9}",
        "benchmark", "baseline", "+OS snapshot", "+post-JIT", "os x", "jit x"
    );

    for runtime in [RuntimeKind::NodeLike, RuntimeKind::PythonLike] {
        for bench in Bench::ALL {
            let spec = bench.paper_spec(runtime);
            let args = bench.paper_params();
            let req = |mode: StartMode| {
                InvokeRequest::new(fid(&spec.name), args.deep_clone()).with_mode(mode)
            };

            let t_base = {
                let mut p =
                    FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
                p.install(&spec).expect("install");
                p.invoke(&req(StartMode::Cold)).expect("invoke").total()
            };
            let t_os = {
                let mut p = FirecrackerPlatform::new(
                    PlatformEnv::default_env(),
                    SnapshotPolicy::OsSnapshot,
                );
                p.install(&spec).expect("install");
                p.invoke(&req(StartMode::Cold)).expect("invoke").total()
            };
            let t_jit = {
                let mut p = FireworksPlatform::new(PlatformEnv::default_env());
                p.install(&spec).expect("install");
                p.invoke(&req(StartMode::Auto)).expect("invoke").total()
            };
            println!(
                "{:<30} {:>12} {:>15} {:>15} {:>8.1}x {:>8.1}x",
                spec.name,
                format!("{t_base}"),
                format!("{t_os}"),
                format!("{t_jit}"),
                t_base.ratio(t_os),
                t_base.ratio(t_jit),
            );
            debug_assert!(t_os <= t_base && t_jit <= t_os, "factor ordering");
            let _: Nanos = t_jit;
        }
    }
    println!();
    println!("paper: +OS snapshot gives ~2.3x on Node compute and up to 6.1x on");
    println!("       net-latency; +post-JIT adds large gains where JIT compilation");
    println!("       lands late in execution (Node I/O benchmarks) or never (Python).");
}
