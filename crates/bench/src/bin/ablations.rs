//! Ablations of Fireworks design choices discussed in the paper's §6:
//!
//! 1. **De-optimization**: invoke with argument types that differ from the
//!    JIT-warmed types (the paper's worst case) and compare against
//!    type-stable invocations and the no-JIT baseline.
//! 2. **Snapshot-cache disk budget**: bound the snapshot store and measure
//!    the latency cliff when an evicted function must be re-installed.
//! 3. **Security refresh**: periodically regenerate snapshots (the ASLR
//!    mitigation) and measure the maintenance cost.

use fireworks_baselines::{FirecrackerPlatform, SnapshotPolicy};
use fireworks_core::api::{FunctionSpec, InvokeRequest, Platform, StartMode};
use fireworks_core::audit::SecurityPolicy;
use fireworks_core::fid;
use fireworks_core::{FireworksPlatform, PlatformConfig, PlatformEnv};
use fireworks_lang::Value;
use fireworks_runtime::RuntimeKind;
use fireworks_sim::Nanos;
use fireworks_workloads::faasdom::Bench;

/// A function whose hot loop is type-specialised on ints during install
/// warm-up; string elements force guard failures and deopt at invoke.
const POLY_SRC: &str = r#"
    fn combine(a, b) { return a + b; }
    fn main(params) {
        let items = params["items"];
        let acc = items[0];
        for (let i = 1; i < len(items); i = i + 1) {
            acc = combine(acc, items[i]);
        }
        return acc;
    }
"#;

fn int_items(n: i64) -> Value {
    Value::map([(
        "items".to_string(),
        Value::array((0..n).map(Value::Int).collect()),
    )])
}

fn str_items(n: i64) -> Value {
    Value::map([(
        "items".to_string(),
        Value::array((0..n).map(|i| Value::str(format!("{i}-"))).collect()),
    )])
}

fn deopt_ablation() {
    println!("--- Ablation 1: de-optimization worst case (paper §6) ---\n");
    let spec = FunctionSpec::new("poly", POLY_SRC, RuntimeKind::NodeLike, int_items(2_000));
    let mut fw = FireworksPlatform::new(PlatformEnv::default_env());
    fw.install(&spec).expect("install");

    let stable = fw
        .invoke(&InvokeRequest::new(fid("poly"), int_items(2_000)))
        .expect("stable");
    let hostile = fw
        .invoke(&InvokeRequest::new(fid("poly"), str_items(2_000)))
        .expect("hostile");

    let mut base = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
    base.install(&spec).expect("install");
    let baseline = base
        .invoke(&InvokeRequest::new(fid("poly"), str_items(2_000)).with_mode(StartMode::Cold))
        .expect("cold");

    println!(
        "  type-stable invoke  : exec {:>10}  deopts {}",
        format!("{}", stable.breakdown.exec),
        stable.stats.deopts
    );
    println!(
        "  type-change invoke  : exec {:>10}  deopts {}  (guards fail, code deopts)",
        format!("{}", hostile.breakdown.exec),
        hostile.stats.deopts
    );
    println!(
        "  firecracker cold    : total {:>10}  (for scale)",
        format!("{}", baseline.total())
    );
    println!(
        "  end-to-end, hostile : fireworks {} vs cold baseline {} → still {:.1}x faster",
        hostile.total(),
        baseline.total(),
        baseline.total().ratio(hostile.total())
    );
    assert!(hostile.stats.deopts > 0, "worst case must actually deopt");
    println!();
}

fn cache_ablation() {
    println!("--- Ablation 2: snapshot-cache disk budget (paper §6) ---\n");
    println!(
        "  {:<16} {:>10} {:>14} {:>16}",
        "budget", "evictions", "hit startup", "miss startup"
    );
    let spec_a = Bench::Fact.spec(RuntimeKind::NodeLike);
    let mut spec_b = Bench::Fact.spec(RuntimeKind::NodeLike);
    spec_b.name = "fact-second".to_string();
    let args = Bench::Fact.request_params();

    for budget in [u64::MAX, 400 << 20, 150 << 20] {
        let mut p = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder().cache_budget(budget).build(),
        );
        p.install(&spec_a).expect("install a");
        p.install(&spec_b).expect("install b");
        // Invoking A after installing B: a hit under a big budget, a miss
        // (rebuild) when B's install evicted A.
        let inv = p
            .invoke(&InvokeRequest::new(fid(&spec_a.name), args.deep_clone()))
            .expect("invoke");
        let rebuild = inv.trace.total_for("snapshot_rebuild");
        let label = if budget == u64::MAX {
            "unbounded".to_string()
        } else {
            format!("{} MiB", budget >> 20)
        };
        println!(
            "  {:<16} {:>10} {:>14} {:>16}",
            label,
            p.cache_evictions(),
            format!("{}", inv.breakdown.startup - rebuild),
            if rebuild > Nanos::ZERO {
                format!("{rebuild}")
            } else {
                "-".to_string()
            },
        );
    }
    println!("\n  An evicted snapshot costs a full re-install (seconds) on the next");
    println!("  invocation — the paper's argument for an LRU policy that keeps");
    println!("  frequently accessed functions' snapshots.\n");
}

fn refresh_ablation() {
    println!("--- Ablation 3: periodic snapshot refresh for ASLR (paper §6) ---\n");
    println!(
        "  {:<22} {:>10} {:>14} {:>16}",
        "refresh period", "refreshes", "invoke latency", "maintenance time"
    );
    let spec = Bench::NetLatency.spec(RuntimeKind::NodeLike);
    for period in [0u64, 8, 2] {
        let mut p = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder()
                .security(SecurityPolicy {
                    reseed_rng_on_restore: true,
                    refresh_after_invocations: period,
                })
                .build(),
        );
        p.install(&spec).expect("install");
        let mut total = Nanos::ZERO;
        for _ in 0..16 {
            let inv = p
                .invoke(&InvokeRequest::new(fid(&spec.name), Value::map([])))
                .expect("invoke");
            total += inv.total();
        }
        let audit = p.audit(fid(&spec.name)).expect("audited");
        println!(
            "  {:<22} {:>10} {:>14} {:>16}",
            if period == 0 {
                "never".to_string()
            } else {
                format!("every {period} invokes")
            },
            audit.refreshes,
            format!("{}", total / 16),
            format!("{}", audit.refresh_time),
        );
    }
    println!("\n  Refreshes run off the invocation path: per-invocation latency is");
    println!("  unchanged, and the host pays the install pipeline per refresh.");
}

fn reap_ablation() {
    use fireworks_core::PagingPolicy;
    println!("--- Ablation 4: cold-storage paging + REAP prefetching (paper §7) ---\n");
    println!(
        "  {:<26} {:>14} {:>14}",
        "paging policy", "1st invocation", "2nd invocation"
    );
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.request_params();
    for (label, policy) in [
        ("warm page cache", PagingPolicy::WarmPageCache),
        ("cold storage", PagingPolicy::ColdStorage { reap: false }),
        (
            "cold storage + REAP",
            PagingPolicy::ColdStorage { reap: true },
        ),
    ] {
        let mut p = FireworksPlatform::with_config(
            PlatformEnv::default_env(),
            PlatformConfig::builder().paging(policy).build(),
        );
        p.install(&spec).expect("install");
        let req = InvokeRequest::new(fid(&spec.name), args.deep_clone());
        let first = p.invoke(&req).expect("1st");
        let second = p.invoke(&req).expect("2nd");
        println!(
            "  {:<26} {:>14} {:>14}",
            label,
            format!("{}", first.total()),
            format!("{}", second.total()),
        );
    }
    println!("\n  REAP's record-then-prefetch turns per-page random major faults into");
    println!("  one sequential read of the working set, recovering most of the");
    println!("  warm-page-cache latency for snapshots served from cold storage.");
}

fn main() {
    println!("=== Ablations of Fireworks design choices (paper §6) ===\n");
    deopt_ablation();
    cache_ablation();
    refresh_ablation();
    println!();
    reap_ablation();
}
