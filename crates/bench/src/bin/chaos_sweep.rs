//! Chaos sweep: Fireworks under an injected-fault storm.
//!
//! Sweeps uniform fault rates across every fault site (snapshot read
//! errors, page corruption, VM crashes, store outages, packet loss) and
//! reports, per rate, how the platform's recovery machinery holds up:
//! success rate, recovery actions taken (retries, quarantines, snapshot
//! rebuilds), circuit-breaker trips, and the latency cost of recovering.
//!
//! Invocations are driven through the concurrent invocation engine in
//! waves, so faults land on a genuinely concurrent population and the
//! engine gauges (`engine.inflight`, `engine.queue_depth`,
//! `engine.live_pss_bytes` and their peaks) appear in each rate point's
//! metrics snapshot.
//!
//! Output is a JSON document on stdout (one object per swept rate), so
//! runs under different seeds diff cleanly — the injected schedule is a
//! pure function of `(seed, rate)`. Each rate point also carries the
//! host's full metrics-registry snapshot (counters, gauges, histograms
//! from every layer) so recovery behaviour is auditable per rate.
//!
//! Usage: `chaos_sweep [seed]` (default seed 42).

use fireworks_core::api::{Platform, PlatformError};
use fireworks_core::engine::{run_concurrent, EngineConfig};
use fireworks_core::fid;
use fireworks_core::{FireworksPlatform, PlatformEnv};
use fireworks_obs::LogHistogram;
use fireworks_runtime::RuntimeKind;
use fireworks_sim::fault::FaultPlan;
use fireworks_sim::Nanos;
use fireworks_workloads::arrivals::burst;
use fireworks_workloads::faasdom::Bench;

/// Invocations per swept fault rate.
const INVOCATIONS: usize = 40;

/// Concurrent invocations admitted per engine wave.
const WAVE: usize = 8;

/// Invoker slots per wave — smaller than the wave so the admission
/// queue is exercised and `engine.queue_depth` is non-trivial.
const SLOTS: usize = 4;

/// The swept per-check fault probabilities.
const RATES: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

struct RatePoint {
    rate: f64,
    invocations: usize,
    successes: usize,
    vm_failures: usize,
    circuit_rejections: usize,
    other_failures: usize,
    injected_faults: usize,
    fault_checks: u64,
    recoveries: u64,
    quarantines: u64,
    rebuilds: u64,
    peak_inflight: usize,
    peak_queue_depth: usize,
    peak_live_pss_bytes: u64,
    mean_latency: Nanos,
    mean_recovery_latency: Nanos,
    p50_recovery_latency: Nanos,
    p99_recovery_latency: Nanos,
    schedule_fingerprint: u64,
    metrics_json: String,
}

fn run_rate(seed: u64, rate: f64) -> RatePoint {
    let env = PlatformEnv::with_fault_plan(FaultPlan::uniform(seed, rate));
    let mut platform = FireworksPlatform::new(env.clone());
    let spec = Bench::Fact.spec(RuntimeKind::NodeLike);
    let args = Bench::Fact.request_params();
    platform.install(&spec).expect("install is fault-free here");

    let mut successes = 0;
    let mut vm_failures = 0;
    let mut circuit_rejections = 0;
    let mut other_failures = 0;
    let mut total_latency = Nanos::ZERO;
    let mut recovery_latency = Nanos::ZERO;
    // Recovery latencies stream into a mergeable log-bucketed sketch
    // (quantiles within 2⁻⁵ relative error) instead of collect-and-sort.
    let mut recovery_latencies = LogHistogram::new();
    let mut peak_inflight = 0;
    let mut peak_queue_depth = 0;
    let mut peak_live_pss_bytes = 0;
    let mut remaining = INVOCATIONS;
    while remaining > 0 {
        let batch = remaining.min(WAVE);
        remaining -= batch;
        let wave = burst(fid(&spec.name), &args, batch, env.clock.now());
        let report = run_concurrent(
            &mut platform,
            &env.clock,
            &env.obs,
            &EngineConfig::new(SLOTS),
            &wave,
        );
        peak_inflight = peak_inflight.max(report.peak_inflight);
        peak_queue_depth = peak_queue_depth.max(report.peak_queue_depth);
        peak_live_pss_bytes = peak_live_pss_bytes.max(report.peak_live_pss_bytes);
        let mut breaker_tripped = false;
        for c in report.completions {
            match c.result {
                Ok(inv) => {
                    successes += 1;
                    total_latency += inv.total();
                    let recovered = inv.trace.total_for("recovery_backoff")
                        + inv.trace.total_for("snapshot_rebuild");
                    recovery_latency += recovered;
                    recovery_latencies.observe(recovered.as_nanos());
                }
                Err(PlatformError::Vm(_)) => vm_failures += 1,
                Err(PlatformError::CircuitOpen { .. }) => {
                    circuit_rejections += 1;
                    breaker_tripped = true;
                }
                Err(_) => other_failures += 1,
            }
        }
        if breaker_tripped {
            // Give the breaker a chance to half-open again so the
            // sweep measures recovery, not a stuck-open circuit.
            env.clock.advance(Nanos::from_secs(11));
        }
    }

    let health = platform.health(fid(&spec.name)).expect("installed");
    let injector = env.injector.borrow();
    RatePoint {
        rate,
        invocations: INVOCATIONS,
        successes,
        vm_failures,
        circuit_rejections,
        other_failures,
        injected_faults: injector.injected().len(),
        fault_checks: injector.checks(),
        recoveries: health.recoveries,
        quarantines: health.quarantines,
        rebuilds: health.rebuilds,
        peak_inflight,
        peak_queue_depth,
        peak_live_pss_bytes,
        mean_latency: if successes > 0 {
            Nanos::from_nanos(total_latency.as_nanos() / successes as u64)
        } else {
            Nanos::ZERO
        },
        mean_recovery_latency: if successes > 0 {
            Nanos::from_nanos(recovery_latency.as_nanos() / successes as u64)
        } else {
            Nanos::ZERO
        },
        p50_recovery_latency: Nanos::from_nanos(recovery_latencies.quantile(50.0)),
        p99_recovery_latency: Nanos::from_nanos(recovery_latencies.quantile(99.0)),
        schedule_fingerprint: injector.schedule_fingerprint(),
        metrics_json: env.obs.metrics().snapshot().to_json(),
    }
}

fn main() {
    let seed = match std::env::args().nth(1) {
        None => 42,
        Some(arg) => match arg.parse::<u64>() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!("error: seed must be a non-negative integer, got {arg:?}");
                eprintln!("usage: chaos_sweep [seed]");
                std::process::exit(2);
            }
        },
    };

    let points: Vec<RatePoint> = RATES.iter().map(|&rate| run_rate(seed, rate)).collect();

    // Hand-rolled JSON (the workspace carries no serde).
    println!("{{");
    println!("  \"bench\": \"chaos_sweep\",");
    println!("  \"seed\": {seed},");
    println!("  \"invocations_per_rate\": {INVOCATIONS},");
    println!("  \"engine\": {{ \"wave\": {WAVE}, \"slots\": {SLOTS} }},");
    println!("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!("    {{");
        println!("      \"rate\": {},", p.rate);
        println!("      \"invocations\": {},", p.invocations);
        println!("      \"successes\": {},", p.successes);
        println!("      \"vm_failures\": {},", p.vm_failures);
        println!("      \"circuit_rejections\": {},", p.circuit_rejections);
        println!("      \"other_failures\": {},", p.other_failures);
        println!("      \"injected_faults\": {},", p.injected_faults);
        println!("      \"fault_checks\": {},", p.fault_checks);
        println!("      \"recoveries\": {},", p.recoveries);
        println!("      \"quarantines\": {},", p.quarantines);
        println!("      \"rebuilds\": {},", p.rebuilds);
        println!("      \"peak_inflight\": {},", p.peak_inflight);
        println!("      \"peak_queue_depth\": {},", p.peak_queue_depth);
        println!("      \"peak_live_pss_bytes\": {},", p.peak_live_pss_bytes);
        println!(
            "      \"mean_latency_us\": {:.1},",
            p.mean_latency.as_nanos() as f64 / 1_000.0
        );
        println!(
            "      \"mean_recovery_latency_us\": {:.1},",
            p.mean_recovery_latency.as_nanos() as f64 / 1_000.0
        );
        println!(
            "      \"p50_recovery_latency_us\": {:.1},",
            p.p50_recovery_latency.as_nanos() as f64 / 1_000.0
        );
        println!(
            "      \"p99_recovery_latency_us\": {:.1},",
            p.p99_recovery_latency.as_nanos() as f64 / 1_000.0
        );
        println!(
            "      \"schedule_fingerprint\": \"{:016x}\",",
            p.schedule_fingerprint
        );
        println!("      \"metrics\": {}", p.metrics_json);
        println!("    }}{comma}");
    }
    println!("  ]");
    println!("}}");
}
