//! Planet-scale cluster simulation: a cost-model platform plus the
//! measurement harness behind the `scale_sweep` bench.
//!
//! The full [`fireworks_core::FireworksPlatform`] compiles guest source,
//! JITs it, and builds real snapshot images — milliseconds of host work
//! per function. At a million invocations over thousands of functions
//! that fidelity is wasted on what `scale_sweep` measures: the
//! *simulator's* routing, queueing, and event-loop throughput. So
//! [`SimPlatform`] keeps the whole `ConcurrentPlatform` contract (shared
//! virtual clock, residency-gated starts, in-flight tokens, install vs
//! register laziness) but replaces the service activity with a two-cost
//! model: a cold start pays [`SimPlatform::COLD_START`], a start on a
//! resident snapshot pays [`SimPlatform::WARM_START`], and execution
//! time is whatever the request carries as its `Value::Int(nanos)`
//! argument — which is how the Azure trace's log-normal durations flow
//! through the cluster unchanged.

use fireworks_core::api::{
    ConcurrentPlatform, FunctionSpec, InFlightToken, InstallReport, Invocation, InvokeRequest,
    Platform, PlatformError, SnapshotResidency, StartKind, StartMode,
};
use fireworks_core::cluster::{Cluster, ClusterConfig, LocalityAffinity};
use fireworks_core::engine::EngineRequest;
use fireworks_core::env::PlatformEnv;
use fireworks_core::{FunctionId, IdMap};
use fireworks_lang::Value;
use fireworks_obs::LogHistogram;
use fireworks_runtime::RuntimeKind;
use fireworks_sandbox::IsolationLevel;
use fireworks_sim::trace::{Breakdown, Trace};
use fireworks_sim::Nanos;
use fireworks_workloads::azure::TraceSpec;

/// In-flight token for [`SimPlatform`]: a nominal clone footprint so
/// cluster memory accounting has something to add up.
#[derive(Debug)]
pub struct SimFlight {
    pss: u64,
}

impl InFlightToken for SimFlight {
    fn pss_bytes(&self) -> u64 {
        self.pss
    }
}

/// The cost-model platform (see the module docs).
pub struct SimPlatform {
    env: PlatformEnv,
    registered: IdMap<()>,
    resident: IdMap<()>,
    cold_starts: u64,
    warm_starts: u64,
}

impl SimPlatform {
    /// Virtual cost of a start with no resident snapshot (a from-source
    /// rebuild; the paper's cold-boot order of magnitude).
    pub const COLD_START: Nanos = Nanos::from_millis(180);
    /// Virtual cost of a start on a resident post-JIT snapshot.
    pub const WARM_START: Nanos = Nanos::from_millis(2);
    /// Fallback execution time when a request carries no duration hint.
    pub const DEFAULT_EXEC: Nanos = Nanos::from_millis(10);
    /// Nominal per-clone guest footprint reported by the token.
    pub const CLONE_PSS: u64 = 24 << 20;

    /// A fresh platform on `env`.
    pub fn new(env: PlatformEnv) -> Self {
        SimPlatform {
            env,
            registered: IdMap::new(),
            resident: IdMap::new(),
            cold_starts: 0,
            warm_starts: 0,
        }
    }

    /// Starts served from a resident snapshot so far.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }

    /// Starts that paid the cold rebuild so far.
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    /// The execution time a request asks for: its `Value::Int` argument
    /// in nanoseconds, else [`SimPlatform::DEFAULT_EXEC`].
    fn exec_of(req: &InvokeRequest) -> Nanos {
        match req.args {
            Value::Int(ns) if ns > 0 => Nanos::from_nanos(ns as u64),
            _ => Self::DEFAULT_EXEC,
        }
    }
}

impl Platform for SimPlatform {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::Vm
    }

    fn install(&mut self, spec: &FunctionSpec) -> Result<InstallReport, PlatformError> {
        let function = fireworks_core::fid(&spec.name);
        self.registered.insert(function, ());
        self.resident.insert(function, ());
        Ok(InstallReport {
            install_time: Self::COLD_START,
            snapshot_pages: 0,
            snapshot_bytes: 0,
            annotated_functions: 0,
        })
    }

    fn invoke(&mut self, req: &InvokeRequest) -> Result<Invocation, PlatformError> {
        let (invocation, inflight) = self.begin_invoke(req)?;
        self.finish_invoke(inflight);
        Ok(invocation)
    }

    fn evict(&mut self, function: FunctionId) {
        self.resident.remove(function);
    }
}

impl ConcurrentPlatform for SimPlatform {
    type InFlight = SimFlight;

    fn begin_invoke(
        &mut self,
        req: &InvokeRequest,
    ) -> Result<(Invocation, Self::InFlight), PlatformError> {
        if !self.registered.contains(req.function) {
            return Err(PlatformError::UnknownFunction(
                req.function.name().to_string(),
            ));
        }
        let resident = self.resident.contains(req.function);
        let (start, startup) = match req.mode {
            StartMode::Warm if !resident => {
                return Err(PlatformError::NoWarmSandbox(
                    req.function.name().to_string(),
                ));
            }
            StartMode::Cold => (StartKind::ColdBoot, Self::COLD_START),
            _ if resident => (StartKind::SnapshotRestore, Self::WARM_START),
            _ => (StartKind::ColdBoot, Self::COLD_START),
        };
        match start {
            StartKind::ColdBoot => self.cold_starts += 1,
            _ => self.warm_starts += 1,
        }
        // A cold start leaves the snapshot behind: later requests for
        // this function on this host restore instead of rebuilding.
        self.resident.insert(req.function, ());
        let exec = Self::exec_of(req);
        self.env.clock.advance(startup + exec);
        let invocation = Invocation {
            value: Value::Int(exec.as_nanos() as i64),
            breakdown: Breakdown {
                startup,
                exec,
                other: Nanos::ZERO,
            },
            trace: Trace::new(),
            start,
            stats: Default::default(),
            printed: Vec::new(),
            response: None,
        };
        Ok((
            invocation,
            SimFlight {
                pss: Self::CLONE_PSS,
            },
        ))
    }

    fn finish_invoke(&mut self, _inflight: Self::InFlight) {}

    fn residency(&self, function: FunctionId) -> SnapshotResidency {
        if self.resident.contains(function) {
            SnapshotResidency::Full
        } else {
            SnapshotResidency::Absent
        }
    }

    fn hot_functions(&self) -> Vec<FunctionId> {
        self.resident.keys().collect()
    }

    fn prewarm(&mut self, function: FunctionId) -> bool {
        if self.registered.contains(function) {
            self.resident.insert(function, ());
            true
        } else {
            false
        }
    }

    fn retire(&mut self, function: FunctionId) -> bool {
        self.resident.remove(function).is_some()
    }

    fn register(&mut self, spec: &FunctionSpec) -> Result<(), PlatformError> {
        self.registered.insert(fireworks_core::fid(&spec.name), ());
        Ok(())
    }
}

/// One point of the scale sweep: the knobs.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ScalePoint {
    /// Cluster width.
    pub hosts: usize,
    /// Invoker slots per host.
    pub slots_per_host: usize,
    /// Expected invocation count over the trace horizon.
    pub invocations: u64,
    /// Tenants in the generated trace.
    pub tenants: u32,
    /// Functions per tenant.
    pub functions_per_tenant: u32,
    /// Trace seed.
    pub seed: u64,
}

impl ScalePoint {
    /// A point at `hosts` × `invocations` with the sweep's standard
    /// tenant population (2 000 tenants × 2 functions) and 8 slots per
    /// host.
    pub fn new(hosts: usize, invocations: u64, seed: u64) -> Self {
        ScalePoint {
            hosts,
            slots_per_host: 8,
            invocations,
            tenants: 2_000,
            functions_per_tenant: 2,
            seed,
        }
    }

    /// The trace spec this point drives.
    pub fn trace_spec(&self) -> TraceSpec {
        TraceSpec::new()
            .tenants(self.tenants)
            .functions_per_tenant(self.functions_per_tenant)
            .total_invocations(self.invocations)
            .seed(self.seed)
    }
}

/// What one scale point measured. Every field is a pure function of the
/// [`ScalePoint`] — wall-clock throughput is *not* in here (the bench
/// prints it to stderr) so stdout stays byte-identical across runs.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ScaleReport {
    /// The swept point.
    pub hosts: usize,
    /// Trace events driven through the cluster.
    pub requests: usize,
    /// Functions in the trace population.
    pub functions: u32,
    /// Requests that completed with a result.
    pub completed: usize,
    /// Requests that completed with an error.
    pub failed: usize,
    /// Median start latency.
    pub p50_start: Nanos,
    /// Tail start latency.
    pub p99_start: Nanos,
    /// Median sojourn (arrival → completion).
    pub p50_sojourn: Nanos,
    /// Tail sojourn.
    pub p99_sojourn: Nanos,
    /// Service starts on a host already holding the snapshot.
    pub locality_hits: u64,
    /// Requests moved off their preferred host.
    pub rebalances: u64,
    /// Cold rebuilds across all hosts.
    pub cold_starts: u64,
    /// Snapshot-restore starts across all hosts.
    pub warm_starts: u64,
    /// Simulator events (arrivals + completions) processed — the
    /// deterministic denominator of the events/sec metric.
    pub events_processed: u64,
    /// Virtual makespan of the run.
    pub makespan: Nanos,
    /// FNV fingerprint over every completion's (index, host, started,
    /// finished) — the CI two-run diff compares this.
    pub fingerprint: u64,
}

/// Runs one scale point: generates the Azure trace, drives it through a
/// [`SimPlatform`] cluster under locality-affinity routing, and folds
/// the completions into a [`ScaleReport`].
pub fn run_scale_point(point: &ScalePoint) -> ScaleReport {
    let spec = point.trace_spec();
    let trace = spec.generate();
    let mut cluster = Cluster::new(
        ClusterConfig::new(point.hosts, point.slots_per_host),
        |env, _| SimPlatform::new(env),
    );
    for f in 0..spec.functions() {
        let name = spec.function_id(f).name();
        cluster
            .install_home(&FunctionSpec::new(
                &*name,
                "",
                RuntimeKind::NodeLike,
                Value::Null,
            ))
            .expect("install_home");
    }
    let schedule: Vec<EngineRequest> = trace
        .events
        .iter()
        .map(|e| {
            EngineRequest::at(
                e.at,
                InvokeRequest::new(e.function, Value::Int(e.exec.as_nanos() as i64)),
            )
        })
        .collect();
    let mut router = LocalityAffinity::new();
    let report = cluster.run(&mut router, &schedule);

    let mut starts = LogHistogram::new();
    let mut sojourns = LogHistogram::new();
    let (mut completed, mut failed) = (0usize, 0usize);
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            fingerprint ^= b as u64;
            fingerprint = fingerprint.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for c in &report.completions {
        mix(c.index as u64);
        mix(c.host.map(|h| h.index() as u64 + 1).unwrap_or(0));
        mix(c.started.as_nanos());
        mix(c.finished.as_nanos());
        match (&c.result, c.start_latency()) {
            (Ok(_), Some(start)) => {
                completed += 1;
                starts.observe(start.as_nanos());
                sojourns.observe(c.sojourn().as_nanos());
            }
            _ => failed += 1,
        }
    }
    let (cold, warm) = (0..point.hosts).fold((0, 0), |(c, w), h| {
        let p = cluster.host(fireworks_core::HostId::from_index(h));
        (c + p.cold_starts(), w + p.warm_starts())
    });
    ScaleReport {
        hosts: point.hosts,
        requests: schedule.len(),
        functions: spec.functions(),
        completed,
        failed,
        p50_start: Nanos::from_nanos(starts.quantile(50.0)),
        p99_start: Nanos::from_nanos(starts.quantile(99.0)),
        p50_sojourn: Nanos::from_nanos(sojourns.quantile(50.0)),
        p99_sojourn: Nanos::from_nanos(sojourns.quantile(99.0)),
        locality_hits: report.locality_hits,
        rebalances: report.rebalances,
        cold_starts: cold,
        warm_starts: warm,
        events_processed: cluster.events_processed(),
        makespan: cluster.clock().now(),
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_core::fid;

    fn install(p: &mut SimPlatform, name: &str) -> FunctionId {
        p.install(&FunctionSpec::new(
            name,
            "",
            RuntimeKind::NodeLike,
            Value::Null,
        ))
        .expect("install");
        fid(name)
    }

    #[test]
    fn sim_platform_charges_the_two_cost_model() {
        let env = PlatformEnv::default_env();
        let clock = env.clock.clone();
        let mut p = SimPlatform::new(env);
        let f = install(&mut p, "sp-f");
        let exec = Nanos::from_millis(7);
        let before = clock.now();
        let inv = p
            .invoke(&InvokeRequest::new(f, Value::Int(exec.as_nanos() as i64)))
            .expect("invoke");
        assert_eq!(inv.start, StartKind::SnapshotRestore);
        assert_eq!(inv.breakdown.startup, SimPlatform::WARM_START);
        assert_eq!(inv.breakdown.exec, exec);
        assert_eq!(clock.now() - before, SimPlatform::WARM_START + exec);
        // A registered-only function pays the cold rebuild once, then
        // restores.
        p.register(&FunctionSpec::new(
            "sp-g",
            "",
            RuntimeKind::NodeLike,
            Value::Null,
        ))
        .expect("register");
        let cold = p
            .invoke(&InvokeRequest::new(fid("sp-g"), Value::Null))
            .expect("cold");
        assert_eq!(cold.start, StartKind::ColdBoot);
        assert_eq!(cold.breakdown.startup, SimPlatform::COLD_START);
        assert!(p.residency(fid("sp-g")).is_full());
        assert_eq!(p.cold_starts(), 1);
        assert_eq!(p.warm_starts(), 1);
    }

    #[test]
    fn sim_platform_honours_modes_and_unknowns() {
        let mut p = SimPlatform::new(PlatformEnv::default_env());
        let f = install(&mut p, "sp-m");
        assert!(matches!(
            p.invoke(&InvokeRequest::new(fid("sp-ghost"), Value::Null)),
            Err(PlatformError::UnknownFunction(_))
        ));
        let forced = p
            .invoke(&InvokeRequest::new(f, Value::Null).with_mode(StartMode::Cold))
            .expect("forced cold");
        assert_eq!(forced.start, StartKind::ColdBoot);
        p.evict(f);
        assert!(matches!(
            p.invoke(&InvokeRequest::new(f, Value::Null).with_mode(StartMode::Warm)),
            Err(PlatformError::NoWarmSandbox(_))
        ));
    }

    #[test]
    fn scale_point_runs_are_deterministic() {
        let point = {
            let mut p = ScalePoint::new(4, 2_000, 9);
            p.tenants = 50;
            p
        };
        let a = run_scale_point(&point);
        let b = run_scale_point(&point);
        assert_eq!(a.fingerprint, b.fingerprint, "same point, same bytes");
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.failed, 0, "fault-free sweep");
        assert_eq!(a.completed, a.requests);
        // Every completion is an arrival plus a completion event, and
        // admission-queue deferrals can only add to that.
        assert!(a.events_processed >= 2 * a.requests as u64);
        assert!(a.warm_starts > a.cold_starts, "snapshots must dominate");
    }
}
