//! Criterion microbenchmarks of the mechanisms themselves (real
//! wall-clock, unlike the virtual-time figure harness): snapshot
//! capture/restore, CoW faults, PSS accounting, interpreter vs JIT tier,
//! the annotator, the message bus, and NAT routing.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fireworks_annotator::{annotate, AnnotationConfig};
use fireworks_guestmem::{AddressSpace, HostMemory, SnapshotFile, PAGE_SIZE};
use fireworks_lang::{compile, JitPolicy, NoopHost, Outcome, TaggedValue, Value, Vm};
use fireworks_msgbus::MessageBus;
use fireworks_netsim::{HostNetwork, Ip, Mac};
use fireworks_obs::{LogHistogram, Metrics};
use fireworks_sim::cost::{BusCosts, NetCosts};
use fireworks_sim::Clock;

const FACT_SRC: &str = "
    fn factorize(n) {
        let factors = [];
        let m = n;
        let d = 2;
        while (d * d <= m) {
            while (m % d == 0) { push(factors, d); m = m / d; }
            d = d + 1;
        }
        if (m > 1) { push(factors, m); }
        return factors;
    }
    fn main(n) {
        let count = 0;
        for (let r = 0; r < 50; r = r + 1) {
            count = count + len(factorize(n + r));
        }
        return count;
    }";

fn host() -> HostMemory {
    HostMemory::new(Clock::new(), 64 << 30, 60)
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("guestmem");
    let pages = 16 * 1024; // 64 MiB image.
    group.throughput(Throughput::Bytes((pages * PAGE_SIZE) as u64));

    group.bench_function("snapshot_capture_64MiB", |b| {
        let h = host();
        let mut space = AddressSpace::new(h.clone(), 256 << 20);
        space.touch_dirty(0, (pages * PAGE_SIZE) as u64);
        b.iter(|| SnapshotFile::capture(&space, Vec::new()));
    });

    group.bench_function("snapshot_restore_64MiB", |b| {
        let h = host();
        let mut space = AddressSpace::new(h.clone(), 256 << 20);
        space.touch_dirty(0, (pages * PAGE_SIZE) as u64);
        let snap = SnapshotFile::capture(&space, Vec::new());
        b.iter(|| snap.restore(&h));
    });

    group.bench_function("cow_dirty_1000_pages_of_clone", |b| {
        let h = host();
        let mut space = AddressSpace::new(h.clone(), 256 << 20);
        space.touch_dirty(0, (pages * PAGE_SIZE) as u64);
        let snap = SnapshotFile::capture(&space, Vec::new());
        b.iter_batched(
            || snap.restore(&h),
            |mut clone| {
                clone.touch_dirty(0, 1000 * PAGE_SIZE as u64);
                clone
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("pss_of_shared_clone", |b| {
        let h = host();
        let mut space = AddressSpace::new(h.clone(), 256 << 20);
        space.touch_dirty(0, (pages * PAGE_SIZE) as u64);
        let snap = SnapshotFile::capture(&space, Vec::new());
        let clone = snap.restore(&h);
        b.iter(|| clone.pss_bytes());
    });
    group.finish();
}

fn run_vm(policy: JitPolicy) -> Value {
    let program = Rc::new(compile(FACT_SRC).expect("compiles"));
    let mut vm = Vm::with_policy(program, policy);
    vm.start("main", vec![Value::Int(1_000_003)])
        .expect("starts");
    match vm.run(&mut NoopHost).expect("runs") {
        Outcome::Done(v) => v,
        other => panic!("unexpected {other:?}"),
    }
}

fn bench_jit_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("flame_vm");
    group.bench_function("fact_interpreter_only", |b| {
        b.iter(|| run_vm(JitPolicy::Off));
    });
    group.bench_function("fact_with_jit", |b| {
        b.iter(|| {
            run_vm(JitPolicy::HotSpot {
                call_threshold: 2,
                loop_threshold: 8,
            })
        });
    });
    group.bench_function("warm_vm_snapshot_state", |b| {
        let program = Rc::new(compile(FACT_SRC).expect("compiles"));
        let mut vm = Vm::new(program);
        vm.start("main", vec![Value::Int(1_000_003)])
            .expect("starts");
        vm.run(&mut NoopHost).expect("runs");
        b.iter(|| vm.snapshot_state());
    });
    group.finish();
}

/// The value-representation ablation behind the VM's NaN-boxed stack: an
/// interpreter-shaped arithmetic kernel (push two operands, pop, add,
/// pop into an accumulator) over the boxed `Value` enum versus the
/// 8-byte `TaggedValue`. The tagged kernel is what `Vm` actually runs;
/// the enum kernel is the pre-tagging baseline kept for comparison.
fn bench_value_repr(c: &mut Criterion) {
    const N: i64 = 10_000;
    let mut group = c.benchmark_group("value_repr");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("enum_arith_kernel", |b| {
        b.iter(|| {
            let mut stack: Vec<Value> = Vec::with_capacity(8);
            let mut acc = 0i64;
            for i in 0..N {
                stack.push(Value::Int(i));
                stack.push(Value::Int(i ^ 7));
                let rhs = stack.pop().expect("rhs");
                let lhs = stack.pop().expect("lhs");
                if let (Value::Int(x), Value::Int(y)) = (lhs, rhs) {
                    stack.push(Value::Int(x.wrapping_add(y)));
                }
                if let Some(Value::Int(v)) = stack.pop() {
                    acc = acc.wrapping_add(v);
                }
            }
            acc
        });
    });

    group.bench_function("tagged_arith_kernel", |b| {
        b.iter(|| {
            let mut stack: Vec<TaggedValue> = Vec::with_capacity(8);
            let mut acc = 0i64;
            for i in 0..N {
                stack.push(TaggedValue::int(i));
                stack.push(TaggedValue::int(i ^ 7));
                let rhs = stack.pop().expect("rhs");
                let lhs = stack.pop().expect("lhs");
                if let (Some(x), Some(y)) = (lhs.as_int(), rhs.as_int()) {
                    stack.push(TaggedValue::int(x.wrapping_add(y)));
                }
                if let Some(v) = stack.pop().and_then(|v| v.as_int()) {
                    acc = acc.wrapping_add(v);
                }
            }
            acc
        });
    });
    group.finish();
}

fn bench_annotator(c: &mut Criterion) {
    let mut group = c.benchmark_group("annotator");
    group.bench_function("annotate_fact", |b| {
        let cfg = AnnotationConfig::default();
        let src = FACT_SRC.replace("fn main(n)", "fn main(params)");
        b.iter(|| annotate(&src, &cfg).expect("annotates"));
    });
    group.finish();
}

fn bench_msgbus(c: &mut Criterion) {
    let mut group = c.benchmark_group("msgbus");
    group.bench_function("produce_consume_latest", |b| {
        let mut bus: MessageBus<Value> = MessageBus::new(Clock::new(), BusCosts::default());
        bus.create_topic("t");
        let v = Value::map([("n".to_string(), Value::Int(42))]);
        b.iter(|| {
            bus.produce("t", v.deep_clone(), 64);
            bus.consume_latest("t", 64).expect("record")
        });
    });
    group.finish();
}

fn bench_netsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.bench_function("namespace_setup_and_deliver", |b| {
        b.iter_batched(
            || HostNetwork::new(Clock::new(), NetCosts::default()),
            |mut net| {
                let ns = net.create_namespace();
                let ip = Ip::new(172, 16, 0, 2);
                net.attach_tap(ns, "tap0", ip, Mac([6, 0, 0, 0, 0, 1]))
                    .expect("tap");
                let ext = net.alloc_external_ip(ns).expect("ip");
                net.install_nat(ns, ext, ip).expect("nat");
                net.deliver(ext, 579).expect("delivers")
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    // Cost per increment at each tier of the hot-path ladder: by-name
    // (key build + registry lookup every time), pre-resolved handle
    // (one shared Cell store), and write-buffered batch (local Cell
    // store, one shared update per 1024 increments).
    group.throughput(Throughput::Elements(1));
    group.bench_function("inc_by_name", |b| {
        let m = Metrics::new();
        b.iter(|| m.inc("engine.completions", &[("host", "0")]));
    });
    group.bench_function("inc_via_handle", |b| {
        let m = Metrics::new();
        let h = m.counter("engine.completions", &[("host", "0")]);
        b.iter(|| h.inc());
    });
    group.bench_function("inc_batched_flush_every_1024", |b| {
        let m = Metrics::new();
        let h = m.counter("engine.completions", &[("host", "0")]).batched();
        let mut n = 0u32;
        b.iter(|| {
            h.inc();
            n += 1;
            if n == 1024 {
                h.flush();
                n = 0;
            }
        });
    });
    group.bench_function("sketch_observe", |b| {
        let mut h = LogHistogram::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.observe(x >> (x % 50));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot,
    bench_jit_tiers,
    bench_value_repr,
    bench_annotator,
    bench_msgbus,
    bench_netsim,
    bench_metrics
);
criterion_main!(benches);
