//! Cross-platform coverage for function chains (paper §5.3).
//!
//! Only OpenWhisk and Fireworks can process a chain of serverless
//! functions; Firecracker and gVisor fall back to the `Platform` trait's
//! default `invoke_chain`, which must refuse with a descriptive error.
//! The `run_chain` helper itself pipes each stage's value into the next
//! stage's arguments on any platform and stops at the first failure.

use fireworks_baselines::{FirecrackerPlatform, GvisorPlatform, OpenWhiskPlatform, SnapshotPolicy};
use fireworks_core::api::{run_chain, InvokeRequest, PlatformError};
use fireworks_core::fid;
use fireworks_core::{FireworksPlatform, FunctionSpec, Platform, PlatformEnv};
use fireworks_lang::Value;
use fireworks_runtime::RuntimeKind;

/// Stage 1: sums 0..n, returning a bare integer.
const SUM_SRC: &str = "
    fn main(params) {
        let n = params[\"n\"];
        let t = 0;
        for (let i = 0; i < n; i = i + 1) { t = t + i; }
        return t;
    }";

/// Stage 2: wraps the previous stage's bare integer back into request
/// shape, doubling it — exercises value→args piping.
const WRAP_SRC: &str = "fn main(prev) { return { n: prev * 2 }; }";

fn args(n: i64) -> Value {
    Value::map([("n".to_string(), Value::Int(n))])
}

fn chain_req(n: i64) -> InvokeRequest {
    InvokeRequest::new(fid("sum"), args(n))
}

fn install_stages(platform: &mut dyn Platform) {
    platform
        .install(&FunctionSpec::new(
            "sum",
            SUM_SRC,
            RuntimeKind::NodeLike,
            args(100),
        ))
        .expect("install sum");
    platform
        .install(&FunctionSpec::new(
            "wrap",
            WRAP_SRC,
            RuntimeKind::NodeLike,
            Value::Int(1),
        ))
        .expect("install wrap");
}

/// The default `invoke_chain` must refuse even when every stage is
/// installed, and the error must name the refusing platform.
fn assert_chain_refused(platform: &mut dyn Platform) {
    assert!(!platform.supports_chains());
    install_stages(platform);
    let err = platform
        .invoke_chain(&[fid("sum"), fid("wrap")], &chain_req(10))
        .expect_err("chains must be refused");
    match err {
        PlatformError::Other(msg) => {
            assert!(
                msg.contains(platform.name()),
                "error should name the platform: {msg}"
            );
            assert!(msg.contains("chain"), "error should mention chains: {msg}");
        }
        other => panic!("expected PlatformError::Other, got {other}"),
    }
}

#[test]
fn firecracker_refuses_chains_with_descriptive_error() {
    for policy in [SnapshotPolicy::None, SnapshotPolicy::OsSnapshot] {
        let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), policy);
        assert_chain_refused(&mut p);
    }
}

#[test]
fn gvisor_refuses_chains_with_descriptive_error() {
    let mut p = GvisorPlatform::new(PlatformEnv::default_env());
    assert_chain_refused(&mut p);
}

/// `run_chain` pipes stage N's value into stage N+1's params; the final
/// value is sum(0..10) = 45, doubled and re-wrapped by `wrap` → {n: 90},
/// then summed again → sum(0..90) = 4005.
fn assert_chain_pipes(platform: &mut dyn Platform) {
    install_stages(platform);
    let results = run_chain(
        platform,
        &[fid("sum"), fid("wrap"), fid("sum")],
        &chain_req(10),
    )
    .expect("chain runs");
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].value, Value::Int(45));
    let Value::Map(m) = &results[1].value else {
        panic!("wrap must return a map, got {:?}", results[1].value)
    };
    assert_eq!(m.borrow()["n"], Value::Int(90));
    assert_eq!(results[2].value, Value::Int(4005));
}

#[test]
fn openwhisk_run_chain_pipes_values() {
    let mut p = OpenWhiskPlatform::new(PlatformEnv::default_env());
    assert!(p.supports_chains());
    assert_chain_pipes(&mut p);
}

#[test]
fn fireworks_run_chain_pipes_values() {
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    assert!(p.supports_chains());
    assert_chain_pipes(&mut p);
}

/// `invoke_chain` on the supporting platforms is `run_chain`: identical
/// staged values for the identical schedule.
#[test]
fn invoke_chain_matches_run_chain_on_supporting_platforms() {
    let mut via_invoke = OpenWhiskPlatform::new(PlatformEnv::default_env());
    install_stages(&mut via_invoke);
    let a = via_invoke
        .invoke_chain(&[fid("sum"), fid("wrap")], &chain_req(10))
        .expect("chain");

    let mut via_helper = OpenWhiskPlatform::new(PlatformEnv::default_env());
    install_stages(&mut via_helper);
    let b = run_chain(&mut via_helper, &[fid("sum"), fid("wrap")], &chain_req(10)).expect("chain");

    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.value, y.value);
    }
}

/// A failure mid-chain stops the pipeline: stage 1 completes, the
/// unknown stage 2 surfaces its error, stage 3 never runs.
#[test]
fn run_chain_stops_at_first_failure() {
    let mut p = FireworksPlatform::new(PlatformEnv::default_env());
    install_stages(&mut p);
    let err = run_chain(
        &mut p,
        &[fid("sum"), fid("missing"), fid("wrap")],
        &chain_req(10),
    )
    .expect_err("unknown stage must fail the chain");
    assert!(matches!(err, PlatformError::UnknownFunction(name) if name == "missing"));
}
