//! The OpenWhisk baseline: container platform with a controller front end.

use fireworks_core::api::{
    run_chain, ConcurrentPlatform, FunctionSpec, InFlightToken, InstallReport, Invocation,
    InvokeRequest, Platform, PlatformError, SnapshotResidency, StartKind, StartMode,
};
use fireworks_core::config::PlatformConfig;
use fireworks_core::env::PlatformEnv;
use fireworks_core::host::{GuestHost, NetMode};
use fireworks_core::{fid, FunctionId, IdMap};
use fireworks_lang::{JitConfig, Value};
use fireworks_runtime::RuntimeProfile;
use fireworks_sandbox::{Container, ContainerKind, ContainerManager, IsolationLevel};
use fireworks_sim::trace::{Phase, Trace};

struct Entry {
    spec: FunctionSpec,
    profile: RuntimeProfile,
}

/// The OpenWhisk-style container platform.
pub struct OpenWhiskPlatform {
    env: PlatformEnv,
    containers: ContainerManager,
    registry: IdMap<Entry>,
    warm: IdMap<Vec<(Container, fireworks_sim::Nanos)>>,
    keep_alive: Option<fireworks_sim::Nanos>,
    cold_starts: u64,
    warm_starts: u64,
}

impl OpenWhiskPlatform {
    /// Creates the platform with the default [`PlatformConfig`].
    pub fn new(env: PlatformEnv) -> Self {
        OpenWhiskPlatform::with_config(env, PlatformConfig::default())
    }

    /// Creates the platform from a [`PlatformConfig`] (API v2). OpenWhisk
    /// consumes the `keep_alive` field: idle warm containers are
    /// terminated after that much virtual time (the provider practice
    /// described in §2.2; `None` keeps them forever).
    pub fn with_config(env: PlatformEnv, config: PlatformConfig) -> Self {
        let containers =
            ContainerManager::new(env.clock.clone(), env.costs.clone(), env.host_mem.clone());
        OpenWhiskPlatform {
            env,
            containers,
            registry: IdMap::new(),
            warm: IdMap::new(),
            keep_alive: config.keep_alive,
            cold_starts: 0,
            warm_starts: 0,
        }
    }

    /// The environment this platform runs on.
    pub fn env(&self) -> &PlatformEnv {
        &self.env
    }

    /// (cold, warm) start counters since creation.
    pub fn start_counts(&self) -> (u64, u64) {
        (self.cold_starts, self.warm_starts)
    }

    /// Total resident bytes held by idle warm containers right now.
    pub fn idle_warm_bytes(&mut self) -> u64 {
        self.purge_expired();
        self.warm
            .values()
            .flat_map(|v| v.iter())
            .map(|(c, _)| c.rss_bytes())
            .sum()
    }

    /// Drops warm containers idle past the keep-alive timeout.
    fn purge_expired(&mut self) {
        let Some(timeout) = self.keep_alive else {
            return;
        };
        let now = self.env.clock.now();
        for pool in self.warm.values_mut() {
            pool.retain(|(_, last_used)| now - *last_used <= timeout);
        }
    }

    fn guest_host(&self, c: &Container, default_params: &Value) -> GuestHost {
        GuestHost::new(
            self.env.clock.clone(),
            c.io().clone(),
            &self.env.costs.net,
            NetMode::Direct,
            self.env.costs.microvm.mmds_lookup,
            self.env.bus.clone(),
            self.env.store.clone(),
            default_params.deep_clone(),
        )
    }

    /// The service activity of one invocation; the container stays
    /// checked out until [`ConcurrentPlatform::finish_invoke`].
    fn begin_invoke_internal(
        &mut self,
        function: FunctionId,
        args: &Value,
        mode: StartMode,
    ) -> Result<(Invocation, InFlightContainer), PlatformError> {
        if mode == StartMode::Cold {
            self.evict(function);
        }
        self.purge_expired();
        let (source, profile, default_params, timeout) = {
            let e = self
                .registry
                .get(function)
                .ok_or_else(|| PlatformError::UnknownFunction(function.name().to_string()))?;
            (
                e.spec.source.clone(),
                e.profile.clone(),
                e.spec.default_params.deep_clone(),
                e.spec.timeout,
            )
        };
        let clock = self.env.clock.clone();
        let mut trace = Trace::new();

        // Controller front end: authentication and dispatch to an invoker
        // (the paper's "authentication and message queue initialization"
        // cold-start overhead; the auth path is also on warm starts but
        // cheaper because the controller caches the subject).
        let costs = self.env.costs.clone();
        let have_warm = self
            .warm
            .get(function)
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        trace.scope(&clock, "controller", Phase::Startup, || {
            if have_warm {
                clock.advance(costs.container.controller_dispatch);
            } else {
                clock.advance(costs.container.controller_auth);
                clock.advance(costs.container.controller_dispatch);
            }
        });

        let (mut container, start) = match mode {
            StartMode::Warm | StartMode::Auto if have_warm => {
                let (mut c, _) = self
                    .warm
                    .get_mut(function)
                    .and_then(Vec::pop)
                    .expect("non-empty checked");
                trace.scope(&clock, "warm_attach", Phase::Startup, || {
                    self.containers.warm_attach(&mut c);
                });
                self.warm_starts += 1;
                (c, StartKind::WarmPool)
            }
            StartMode::Warm => {
                return Err(PlatformError::NoWarmSandbox(function.name().to_string()))
            }
            _ => {
                let c = trace.scope(&clock, "container_create", Phase::Startup, || {
                    self.containers.create(
                        ContainerKind::Plain,
                        profile,
                        &source,
                        JitConfig::default(),
                    )
                })?;
                self.cold_starts += 1;
                (c, StartKind::ColdBoot)
            }
        };

        // The `/init` + `/run` action proxy round trip.
        trace.scope(&clock, "action_proxy", Phase::Startup, || {
            clock.advance(self.env.costs.container.action_proxy);
        });

        let mut host = self.guest_host(&container, &default_params);
        let result = {
            let rt = container
                .runtime_mut()
                .ok_or_else(|| PlatformError::Other("container has no runtime".into()))?;
            rt.run_toplevel(&clock, &mut host)?;
            trace.scope(&clock, "framework", Phase::Exec, || {
                rt.charge_request_overhead(&clock);
            });
            rt.set_invocation_timeout(timeout);
            match rt.invoke(&clock, "main", vec![args.deep_clone()], &mut host) {
                Ok(r) => r,
                Err(fireworks_lang::LangError::Timeout { ops }) => {
                    return Err(PlatformError::Timeout {
                        function: function.name().to_string(),
                        ops,
                    })
                }
                Err(e) => return Err(e.into()),
            }
        };
        container.sync_runtime_memory();
        let anchor = clock.now();
        trace.record(
            "exec",
            Phase::Exec,
            anchor - result.exec_time - host.external_time,
            anchor - host.external_time,
        );
        trace.record(
            "guest_io",
            Phase::Other,
            anchor - host.external_time,
            anchor,
        );

        let invocation = Invocation {
            value: result.value,
            breakdown: trace.breakdown(),
            trace,
            start,
            stats: result.stats,
            printed: host.printed,
            response: host.responses.into_iter().next_back(),
        };
        let inflight = InFlightContainer {
            container,
            function,
        };
        Ok((invocation, inflight))
    }
}

/// An in-flight OpenWhisk invocation: the container serving it, checked
/// out of the warm pool until the completion event returns it.
#[derive(Debug)]
pub struct InFlightContainer {
    container: Container,
    function: FunctionId,
}

impl InFlightToken for InFlightContainer {
    fn pss_bytes(&self) -> u64 {
        // Containers share nothing across sandboxes; PSS equals RSS.
        self.container.rss_bytes()
    }
}

impl ConcurrentPlatform for OpenWhiskPlatform {
    type InFlight = InFlightContainer;

    fn begin_invoke(
        &mut self,
        req: &InvokeRequest,
    ) -> Result<(Invocation, InFlightContainer), PlatformError> {
        self.begin_invoke_internal(req.function, &req.args, req.mode)
    }

    fn finish_invoke(&mut self, inflight: InFlightContainer) {
        // Keep the container warm, stamped with its last-use time (the
        // invocation's virtual completion instant).
        let InFlightContainer {
            mut container,
            function,
        } = inflight;
        self.containers.pause(&mut container);
        let stamped = (container, self.env.clock.now());
        match self.warm.get_mut(function) {
            Some(pool) => pool.push(stamped),
            None => {
                self.warm.insert(function, vec![stamped]);
            }
        }
    }

    fn residency(&self, function: FunctionId) -> SnapshotResidency {
        // OpenWhisk has no snapshots; its ready-to-start artifact is a
        // non-empty warm pool. All-or-nothing, never `Partial`.
        if self
            .warm
            .get(function)
            .map(|pool| !pool.is_empty())
            .unwrap_or(false)
        {
            SnapshotResidency::Full
        } else {
            SnapshotResidency::Absent
        }
    }
}

impl Platform for OpenWhiskPlatform {
    fn name(&self) -> &'static str {
        "openwhisk"
    }

    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::Container
    }

    fn install(&mut self, spec: &FunctionSpec) -> Result<InstallReport, PlatformError> {
        // OpenWhisk registration is metadata-only (the action is stored);
        // sandboxes are created lazily on invocation.
        let t0 = self.env.clock.now();
        let profile = RuntimeProfile::for_kind(spec.runtime);
        self.registry.insert(
            fid(&spec.name),
            Entry {
                spec: spec.clone(),
                profile,
            },
        );
        Ok(InstallReport {
            install_time: self.env.clock.now() - t0,
            snapshot_pages: 0,
            snapshot_bytes: 0,
            annotated_functions: 0,
        })
    }

    fn invoke(&mut self, req: &InvokeRequest) -> Result<Invocation, PlatformError> {
        // A blocking invoke is the degenerate one-event schedule: service
        // and completion at the same instant.
        let (invocation, inflight) =
            self.begin_invoke_internal(req.function, &req.args, req.mode)?;
        self.finish_invoke(inflight);
        Ok(invocation)
    }

    fn evict(&mut self, function: FunctionId) {
        self.warm.remove(function);
    }

    fn supports_chains(&self) -> bool {
        true
    }

    fn invoke_chain(
        &mut self,
        stages: &[FunctionId],
        req: &InvokeRequest,
    ) -> Result<Vec<Invocation>, PlatformError> {
        run_chain(self, stages, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_runtime::RuntimeKind;
    use fireworks_sim::Nanos;

    const SRC: &str = "
        fn main(params) {
            let n = params[\"n\"];
            let t = 0;
            for (let i = 0; i < n; i = i + 1) { t = t + i; }
            return t;
        }";

    fn spec() -> FunctionSpec {
        FunctionSpec::new(
            "f",
            SRC,
            RuntimeKind::NodeLike,
            Value::map([("n".to_string(), Value::Int(100))]),
        )
    }

    fn args(n: i64) -> Value {
        Value::map([("n".to_string(), Value::Int(n))])
    }

    fn req(n: i64, mode: StartMode) -> InvokeRequest {
        InvokeRequest::new(fid("f"), args(n)).with_mode(mode)
    }

    #[test]
    fn cold_start_includes_controller_and_container() {
        let mut p = OpenWhiskPlatform::new(PlatformEnv::default_env());
        p.install(&spec()).expect("installs");
        let inv = p.invoke(&req(10, StartMode::Cold)).expect("invokes");
        assert_eq!(inv.start, StartKind::ColdBoot);
        assert_eq!(inv.value, Value::Int(45));
        assert!(inv.trace.total_for("controller") > Nanos::ZERO);
        assert!(inv.trace.total_for("container_create") > Nanos::ZERO);
    }

    #[test]
    fn openwhisk_cold_is_faster_than_firecracker_cold() {
        // §5.2.1: the container platform's cold start beats the microVM's.
        let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
        ow.install(&spec()).expect("installs");
        let ow_cold = ow.invoke(&req(10, StartMode::Cold)).expect("ow");

        let mut fc = crate::FirecrackerPlatform::new(
            PlatformEnv::default_env(),
            crate::SnapshotPolicy::None,
        );
        fc.install(&spec()).expect("installs");
        let fc_cold = fc.invoke(&req(10, StartMode::Cold)).expect("fc");

        assert!(
            ow_cold.breakdown.startup < fc_cold.breakdown.startup,
            "openwhisk {} vs firecracker {}",
            ow_cold.breakdown.startup,
            fc_cold.breakdown.startup
        );
    }

    #[test]
    fn warm_start_reuses_container() {
        let mut p = OpenWhiskPlatform::new(PlatformEnv::default_env());
        p.install(&spec()).expect("installs");
        assert!(
            !p.residency(fid("f")).is_full(),
            "no warm artifact before first run"
        );
        let cold = p.invoke(&req(10, StartMode::Cold)).expect("cold");
        assert!(
            p.residency(fid("f")).is_full(),
            "warm pool counts as held artifact"
        );
        let warm = p.invoke(&req(10, StartMode::Warm)).expect("warm");
        assert_eq!(warm.start, StartKind::WarmPool);
        assert!(warm.breakdown.startup.as_nanos() * 5 < cold.breakdown.startup.as_nanos());
    }

    #[test]
    fn chains_pipe_results_between_functions() {
        let mut p = OpenWhiskPlatform::new(PlatformEnv::default_env());
        p.install(&spec()).expect("installs");
        p.install(&FunctionSpec::new(
            "wrap",
            "fn main(prev) { return { n: prev * 2 }; }",
            RuntimeKind::NodeLike,
            Value::Int(1),
        ))
        .expect("installs");
        assert!(p.supports_chains());
        let results = p
            .invoke_chain(
                &[fid("f"), fid("wrap")],
                &InvokeRequest::new(fid("f"), args(10)),
            )
            .expect("chain");
        // f(10) = 45, wrap → { n: 90 }.
        let Value::Map(m) = &results[1].value else {
            panic!("map")
        };
        assert_eq!(m.borrow()["n"], Value::Int(90));
    }

    #[test]
    fn keep_alive_expires_idle_containers() {
        use fireworks_sim::Nanos;
        let env = PlatformEnv::default_env();
        let mut p = OpenWhiskPlatform::with_config(
            env.clone(),
            PlatformConfig::builder()
                .keep_alive(Some(Nanos::from_secs(60)))
                .build(),
        );
        p.install(&spec()).expect("installs");

        p.invoke(&req(1, StartMode::Cold)).expect("cold");
        assert!(p.idle_warm_bytes() > 0, "warm container held in memory");

        // Within the window: warm hit.
        env.clock.advance(Nanos::from_secs(30));
        let inv = p.invoke(&req(1, StartMode::Auto)).expect("warm");
        assert_eq!(inv.start, StartKind::WarmPool);

        // Past the window: the container expired; cold again, and the
        // idle memory was released.
        env.clock.advance(Nanos::from_secs(61));
        assert_eq!(p.idle_warm_bytes(), 0);
        let inv = p.invoke(&req(1, StartMode::Auto)).expect("cold again");
        assert_eq!(inv.start, StartKind::ColdBoot);
        let (cold, warm) = p.start_counts();
        assert_eq!((cold, warm), (2, 1));
    }

    #[test]
    fn eviction_forces_cold_path() {
        let mut p = OpenWhiskPlatform::new(PlatformEnv::default_env());
        p.install(&spec()).expect("installs");
        p.invoke(&req(1, StartMode::Cold)).expect("cold");
        p.evict(fid("f"));
        let inv = p.invoke(&req(1, StartMode::Auto)).expect("again");
        assert_eq!(inv.start, StartKind::ColdBoot);
    }
}
