//! The Firecracker baseline: microVM sandbox manager.

use std::rc::Rc;

use fireworks_core::api::{
    ConcurrentPlatform, FunctionSpec, InFlightToken, InstallReport, Invocation, InvokeRequest,
    Platform, PlatformError, SnapshotResidency, StartKind, StartMode,
};
use fireworks_core::config::PlatformConfig;
use fireworks_core::env::PlatformEnv;
use fireworks_core::host::{GuestHost, NetMode};
use fireworks_core::{fid, FunctionId, IdMap};
use fireworks_lang::{JitConfig, Value};
use fireworks_microvm::{MicroVm, MicroVmConfig, VmFullSnapshot, VmManager};
use fireworks_obs::cat;
use fireworks_runtime::RuntimeProfile;
use fireworks_sandbox::{IoPath, IoPathKind, IsolationLevel};
use fireworks_sim::trace::{Phase, Trace};

/// Whether the platform uses VM-level snapshots for starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotPolicy {
    /// Plain Firecracker: every cold start boots a fresh VM.
    None,
    /// The Fig. 11 "+VM-level OS snapshot" factor: install captures a
    /// snapshot after boot + runtime launch + app load (no execution, no
    /// JIT); starts restore it.
    OsSnapshot,
}

struct Entry {
    spec: FunctionSpec,
    profile: RuntimeProfile,
    snapshot: Option<Rc<VmFullSnapshot>>,
}

/// A resident Firecracker sandbox (for memory experiments).
#[derive(Debug)]
pub struct ResidentVm {
    vm: MicroVm,
}

impl ResidentVm {
    /// Proportional set size of the VM's guest memory.
    pub fn pss_bytes(&self) -> u64 {
        self.vm.pss_bytes()
    }

    /// Resident set size of the VM's guest memory.
    pub fn rss_bytes(&self) -> u64 {
        self.vm.rss_bytes()
    }

    /// Ages the VM by `extra_ops` guest ops of continued service (see
    /// [`fireworks_microvm::MicroVm::age_ops`]).
    pub fn age_ops(&mut self, extra_ops: u64) {
        self.vm.age_ops(extra_ops);
    }
}

/// The Firecracker sandbox-manager baseline.
pub struct FirecrackerPlatform {
    env: PlatformEnv,
    mgr: VmManager,
    policy: SnapshotPolicy,
    registry: IdMap<Entry>,
    warm: IdMap<Vec<(MicroVm, fireworks_sim::Nanos)>>,
    keep_alive: Option<fireworks_sim::Nanos>,
}

impl FirecrackerPlatform {
    /// Creates the baseline with the given snapshot policy and the
    /// default [`PlatformConfig`].
    pub fn new(env: PlatformEnv, policy: SnapshotPolicy) -> Self {
        FirecrackerPlatform::with_config(env, policy, PlatformConfig::default())
    }

    /// Creates the baseline from a [`PlatformConfig`] (API v2).
    /// Firecracker consumes the `keep_alive` field: paused warm VMs idle
    /// past the window are terminated, releasing their guest memory.
    pub fn with_config(env: PlatformEnv, policy: SnapshotPolicy, config: PlatformConfig) -> Self {
        let mut mgr = VmManager::new(env.clock.clone(), env.costs.clone(), env.host_mem.clone());
        mgr.set_obs(env.obs.clone());
        FirecrackerPlatform {
            env,
            mgr,
            policy,
            registry: IdMap::new(),
            warm: IdMap::new(),
            keep_alive: config.keep_alive,
        }
    }

    /// The environment this platform runs on.
    pub fn env(&self) -> &PlatformEnv {
        &self.env
    }

    /// Drops warm VMs idle past the keep-alive timeout.
    fn purge_expired(&mut self) {
        let Some(timeout) = self.keep_alive else {
            return;
        };
        let now = self.env.clock.now();
        for pool in self.warm.values_mut() {
            pool.retain(|(_, last_used)| now - *last_used <= timeout);
        }
    }

    /// The active snapshot policy.
    pub fn policy(&self) -> SnapshotPolicy {
        self.policy
    }

    fn guest_host(&self, default_params: &Value) -> GuestHost {
        GuestHost::new(
            self.env.clock.clone(),
            IoPath::new(IoPathKind::VirtioBlk, self.env.costs.clone()),
            &self.env.costs.net,
            NetMode::Direct,
            self.env.costs.microvm.mmds_lookup,
            self.env.bus.clone(),
            self.env.store.clone(),
            default_params.deep_clone(),
        )
    }

    /// Builds a fresh VM with the function loaded (cold-boot path).
    fn cold_boot(&mut self, function: FunctionId) -> Result<MicroVm, PlatformError> {
        let (source, profile) = {
            let e = self
                .registry
                .get(function)
                .ok_or_else(|| PlatformError::UnknownFunction(function.name().to_string()))?;
            (e.spec.source.clone(), e.profile.clone())
        };
        let mut vm = self.mgr.create(MicroVmConfig::default());
        self.mgr.boot(&mut vm)?;
        self.mgr
            .launch_runtime(&mut vm, profile, &source, JitConfig::default())?;
        Ok(vm)
    }

    fn execute(
        &mut self,
        function: FunctionId,
        vm: &mut MicroVm,
        args: &Value,
        trace: &mut Trace,
        rec: &fireworks_obs::Recorder,
    ) -> Result<(Value, fireworks_lang::ExecStats, GuestHost), PlatformError> {
        let clock = self.env.clock.clone();
        let (default_params, timeout) = {
            let e = self.registry.get(function).expect("checked by caller");
            (e.spec.default_params.deep_clone(), e.spec.timeout)
        };
        let mut host = self.guest_host(&default_params);
        let result = {
            let rt = vm
                .runtime_mut()
                .ok_or_else(|| PlatformError::Other("VM has no runtime".into()))?;
            rt.run_toplevel(&clock, &mut host)?;
            // Framework request path: interpreted and cold on the first
            // request of a fresh or OS-snapshot-restored VM.
            let sp = rec.start_phase("framework", cat::EXEC, Phase::Exec);
            trace.scope(&clock, "framework", Phase::Exec, || {
                rt.charge_request_overhead(&clock);
            });
            rec.end(sp);
            rt.set_invocation_timeout(timeout);
            match rt.invoke(&clock, "main", vec![args.deep_clone()], &mut host) {
                Ok(r) => r,
                Err(fireworks_lang::LangError::Timeout { ops }) => {
                    return Err(PlatformError::Timeout {
                        function: function.name().to_string(),
                        ops,
                    })
                }
                Err(e) => return Err(e.into()),
            }
        };
        trace.scope(&clock, "page_faults", Phase::Exec, || {
            vm.sync_runtime_memory();
            vm.dirty_invocation();
        });
        let anchor = clock.now();
        trace.record(
            "exec",
            Phase::Exec,
            anchor - result.exec_time - host.external_time,
            anchor - host.external_time,
        );
        trace.record(
            "guest_io",
            Phase::Other,
            anchor - host.external_time,
            anchor,
        );
        rec.record_closed(
            "exec",
            cat::EXEC,
            Phase::Exec,
            anchor - result.exec_time - host.external_time,
            anchor - host.external_time,
        );
        rec.record_closed(
            "guest_io",
            cat::EXEC,
            Phase::Other,
            anchor - host.external_time,
            anchor,
        );
        Ok((result.value, result.stats, host))
    }

    fn invoke_on_vm(
        &mut self,
        function: FunctionId,
        args: &Value,
        mode: StartMode,
        trace_ctx: Option<fireworks_obs::SpanContext>,
    ) -> Result<(Invocation, MicroVm), PlatformError> {
        // Root observability span mirroring the one Fireworks records, so
        // side-by-side traces line up (`trace_dump`). The VM manager's
        // boot/restore/resume spans nest underneath it. A propagated
        // context is adopted only when no ambient span is open (a cluster
        // driver's service span already carries the trace).
        let obs = self.env.obs.clone();
        let rec = obs.recorder().clone();
        let inv_span = match trace_ctx.filter(|_| rec.current().is_none()) {
            Some(ctx) => rec.start_under(ctx.parent, "invoke", cat::INVOKE),
            None => rec.start("invoke", cat::INVOKE),
        };
        let fname = function.name();
        rec.attr(inv_span, "function", &*fname);
        rec.attr(inv_span, "platform", self.name());
        obs.metrics()
            .inc("baseline.invoke.attempts", &[("function", &fname)]);
        let result = self.invoke_on_vm_inner(function, args, mode, &rec);
        if result.is_err() {
            obs.metrics()
                .inc("baseline.invoke.failures", &[("function", &fname)]);
        }
        rec.end(inv_span);
        result
    }

    fn invoke_on_vm_inner(
        &mut self,
        function: FunctionId,
        args: &Value,
        mode: StartMode,
        rec: &fireworks_obs::Recorder,
    ) -> Result<(Invocation, MicroVm), PlatformError> {
        if !self.registry.contains(function) {
            return Err(PlatformError::UnknownFunction(function.name().to_string()));
        }
        self.purge_expired();
        let clock = self.env.clock.clone();
        let mut trace = Trace::new();

        let (mut vm, start) = match mode {
            StartMode::Warm | StartMode::Auto
                if self
                    .warm
                    .get(function)
                    .map(|v| !v.is_empty())
                    .unwrap_or(false) =>
            {
                let (mut vm, _) = self
                    .warm
                    .get_mut(function)
                    .and_then(Vec::pop)
                    .expect("non-empty checked");
                trace.scope(&clock, "vm_resume", Phase::Startup, || {
                    self.mgr.resume(&mut vm);
                });
                (vm, StartKind::WarmPool)
            }
            StartMode::Warm => {
                return Err(PlatformError::NoWarmSandbox(function.name().to_string()))
            }
            _ => {
                let snapshot = self.registry.get(function).and_then(|e| e.snapshot.clone());
                match snapshot {
                    Some(snap) => {
                        let vm = trace.scope(&clock, "snapshot_restore", Phase::Startup, || {
                            // Clones restored from one snapshot need the
                            // same network-for-clones setup as Fireworks
                            // (namespace + tap + NAT); charged here as a
                            // cost (routing state is not exercised by the
                            // baseline).
                            let net_costs = &self.env.costs.net;
                            clock.advance(net_costs.netns_create);
                            clock.advance(net_costs.tap_create);
                            clock.advance(net_costs.nat_rule_install);
                            self.mgr.restore(&snap)
                        })?;
                        (vm, StartKind::SnapshotRestore)
                    }
                    None => {
                        let vm = trace.scope(&clock, "vm_boot", Phase::Startup, || {
                            self.cold_boot(function)
                        })?;
                        (vm, StartKind::ColdBoot)
                    }
                }
            }
        };

        let (value, stats, host) = self.execute(function, &mut vm, args, &mut trace, rec)?;
        let invocation = Invocation {
            value,
            breakdown: trace.breakdown(),
            trace,
            start,
            stats,
            printed: host.printed,
            response: host.responses.into_iter().next_back(),
        };
        Ok((invocation, vm))
    }

    /// Invokes without releasing the serving VM; pair with
    /// [`ConcurrentPlatform::finish_invoke`] at the invocation's virtual
    /// completion instant. While the token lives, the VM's guest memory
    /// stays charged against the host, so concurrent populations contend
    /// for RAM.
    fn begin_invoke_internal(
        &mut self,
        function: FunctionId,
        args: &Value,
        mode: StartMode,
        trace_ctx: Option<fireworks_obs::SpanContext>,
    ) -> Result<(Invocation, InFlightVm), PlatformError> {
        if mode == StartMode::Cold {
            self.evict(function);
        }
        let (invocation, vm) = self.invoke_on_vm(function, args, mode, trace_ctx)?;
        let inflight = InFlightVm { vm, function };
        Ok((invocation, inflight))
    }

    /// Invokes and keeps the VM resident (for Fig. 10's density sweep).
    pub fn invoke_resident(
        &mut self,
        function: FunctionId,
        args: &Value,
    ) -> Result<(Invocation, ResidentVm), PlatformError> {
        let (invocation, vm) = self.invoke_on_vm(function, args, StartMode::Cold, None)?;
        Ok((invocation, ResidentVm { vm }))
    }

    /// Releases a resident VM.
    pub fn release_resident(&mut self, vm: ResidentVm) {
        drop(vm);
    }
}

/// An in-flight Firecracker invocation: the VM serving it, checked out of
/// the pool until the completion event returns it warm.
#[derive(Debug)]
pub struct InFlightVm {
    vm: MicroVm,
    function: FunctionId,
}

impl InFlightVm {
    /// Ages the VM by `extra_ops` guest ops of continued service.
    pub fn age_ops(&mut self, extra_ops: u64) {
        self.vm.age_ops(extra_ops);
    }

    /// Resident set size of the VM's guest memory.
    pub fn rss_bytes(&self) -> u64 {
        self.vm.rss_bytes()
    }
}

impl InFlightToken for InFlightVm {
    fn pss_bytes(&self) -> u64 {
        self.vm.pss_bytes()
    }
}

impl ConcurrentPlatform for FirecrackerPlatform {
    type InFlight = InFlightVm;

    fn begin_invoke(
        &mut self,
        req: &InvokeRequest,
    ) -> Result<(Invocation, InFlightVm), PlatformError> {
        self.begin_invoke_internal(req.function, &req.args, req.mode, req.trace)
    }

    fn finish_invoke(&mut self, inflight: InFlightVm) {
        // Completion keeps the sandbox warm (paused in memory), like the
        // paper's warm configuration, stamped with its last-use time.
        let InFlightVm { mut vm, function } = inflight;
        self.mgr.pause(&mut vm);
        let stamped = (vm, self.env.clock.now());
        match self.warm.get_mut(function) {
            Some(pool) => pool.push(stamped),
            None => {
                self.warm.insert(function, vec![stamped]);
            }
        }
    }

    fn residency(&self, function: FunctionId) -> SnapshotResidency {
        // Ready-to-restore artifacts: an OS snapshot captured at install,
        // or a paused warm VM. Firecracker's artifacts are monolithic, so
        // residency is all-or-nothing — never `Partial`.
        let snapshot = self
            .registry
            .get(function)
            .map(|e| e.snapshot.is_some())
            .unwrap_or(false);
        if snapshot
            || self
                .warm
                .get(function)
                .map(|pool| !pool.is_empty())
                .unwrap_or(false)
        {
            SnapshotResidency::Full
        } else {
            SnapshotResidency::Absent
        }
    }
}

impl Platform for FirecrackerPlatform {
    fn name(&self) -> &'static str {
        match self.policy {
            SnapshotPolicy::None => "firecracker",
            SnapshotPolicy::OsSnapshot => "firecracker+snapshot",
        }
    }

    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::Vm
    }

    fn install(&mut self, spec: &FunctionSpec) -> Result<InstallReport, PlatformError> {
        let clock = self.env.clock.clone();
        let t0 = clock.now();
        let function = fid(&spec.name);
        let profile = RuntimeProfile::for_kind(spec.runtime);
        self.registry.insert(
            function,
            Entry {
                spec: spec.clone(),
                profile,
                snapshot: None,
            },
        );
        let (pages, bytes) = if self.policy == SnapshotPolicy::OsSnapshot {
            // Snapshot after boot + runtime + load, before execution: no
            // JIT code, no warm profile.
            let mut vm = self.cold_boot(function)?;
            let snap = Rc::new(self.mgr.snapshot(&mut vm));
            assert!(!snap.is_post_jit(), "OS snapshot must predate JIT");
            let info = (snap.pages(), snap.file_bytes());
            self.registry
                .get_mut(function)
                .expect("inserted above")
                .snapshot = Some(snap);
            info
        } else {
            (0, 0)
        };
        Ok(InstallReport {
            install_time: clock.now() - t0,
            snapshot_pages: pages,
            snapshot_bytes: bytes,
            annotated_functions: 0,
        })
    }

    fn invoke(&mut self, req: &InvokeRequest) -> Result<Invocation, PlatformError> {
        // A blocking invoke is the degenerate one-event schedule: service
        // and completion at the same instant.
        let (invocation, inflight) =
            self.begin_invoke_internal(req.function, &req.args, req.mode, req.trace)?;
        self.finish_invoke(inflight);
        Ok(invocation)
    }

    fn evict(&mut self, function: FunctionId) {
        self.warm.remove(function);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_runtime::RuntimeKind;
    use fireworks_sim::Nanos;

    const SRC: &str = "
        fn main(params) {
            let n = params[\"n\"];
            let t = 0;
            for (let i = 0; i < n; i = i + 1) { t = t + i; }
            return t;
        }";

    fn spec() -> FunctionSpec {
        FunctionSpec::new(
            "f",
            SRC,
            RuntimeKind::NodeLike,
            Value::map([("n".to_string(), Value::Int(1000))]),
        )
    }

    fn args(n: i64) -> Value {
        Value::map([("n".to_string(), Value::Int(n))])
    }

    fn req(n: i64, mode: StartMode) -> InvokeRequest {
        InvokeRequest::new(fid("f"), args(n)).with_mode(mode)
    }

    #[test]
    fn cold_start_boots_a_full_vm() {
        let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
        p.install(&spec()).expect("installs");
        let inv = p.invoke(&req(10, StartMode::Cold)).expect("invokes");
        assert_eq!(inv.start, StartKind::ColdBoot);
        assert_eq!(inv.value, Value::Int(45));
        // VM + OS + runtime + load: seconds of start-up.
        assert!(inv.breakdown.startup > Nanos::from_millis(1_500));
    }

    #[test]
    fn warm_start_resumes_paused_vm() {
        let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
        p.install(&spec()).expect("installs");
        let cold = p.invoke(&req(10, StartMode::Cold)).expect("cold");
        let warm = p.invoke(&req(10, StartMode::Warm)).expect("warm");
        assert_eq!(warm.start, StartKind::WarmPool);
        assert!(
            warm.breakdown.startup.as_nanos() * 20 < cold.breakdown.startup.as_nanos(),
            "warm {} vs cold {}",
            warm.breakdown.startup,
            cold.breakdown.startup
        );
    }

    #[test]
    fn keep_alive_expires_idle_warm_vms() {
        let env = PlatformEnv::default_env();
        let mut p = FirecrackerPlatform::with_config(
            env.clone(),
            SnapshotPolicy::None,
            PlatformConfig::builder()
                .keep_alive(Some(Nanos::from_secs(60)))
                .build(),
        );
        p.install(&spec()).expect("installs");
        p.invoke(&req(10, StartMode::Cold)).expect("cold");
        assert!(p.residency(fid("f")).is_full(), "warm VM held");
        env.clock.advance(Nanos::from_secs(61));
        let inv = p.invoke(&req(10, StartMode::Auto)).expect("again");
        assert_eq!(inv.start, StartKind::ColdBoot, "warm VM expired");
    }

    #[test]
    fn warm_without_pool_errors() {
        let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
        p.install(&spec()).expect("installs");
        assert!(matches!(
            p.invoke(&req(1, StartMode::Warm)),
            Err(PlatformError::NoWarmSandbox(_))
        ));
    }

    #[test]
    fn os_snapshot_policy_restores_instead_of_booting() {
        let mut p =
            FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::OsSnapshot);
        p.install(&spec()).expect("installs");
        assert!(
            p.residency(fid("f")).is_full(),
            "OS snapshot captured at install"
        );
        let inv = p.invoke(&req(10, StartMode::Cold)).expect("invokes");
        assert_eq!(inv.start, StartKind::SnapshotRestore);
        assert!(
            inv.breakdown.startup < Nanos::from_millis(100),
            "snapshot start {} should be fast",
            inv.breakdown.startup
        );
    }

    #[test]
    fn os_snapshot_still_pays_jit_at_execution() {
        // Unlike Fireworks, the OS snapshot contains no JIT code, so hot
        // code compiles during the invocation.
        let mut p =
            FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::OsSnapshot);
        p.install(&spec()).expect("installs");
        let inv = p.invoke(&req(300_000, StartMode::Cold)).expect("invokes");
        assert!(inv.stats.compiles > 0, "JIT happens during execution");
    }

    #[test]
    fn warm_execution_is_faster_than_cold_for_node() {
        let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
        p.install(&spec()).expect("installs");
        let cold = p.invoke(&req(200_000, StartMode::Cold)).expect("cold");
        let warm = p.invoke(&req(200_000, StartMode::Warm)).expect("warm");
        assert!(
            warm.breakdown.exec < cold.breakdown.exec,
            "warm exec {} vs cold exec {}",
            warm.breakdown.exec,
            cold.breakdown.exec
        );
    }

    #[test]
    fn chains_are_not_supported() {
        let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
        p.install(&spec()).expect("installs");
        assert!(!p.supports_chains());
        assert!(p
            .invoke_chain(&[fid("f")], &InvokeRequest::new(fid("f"), args(1)))
            .is_err());
    }

    #[test]
    fn resident_vms_have_private_memory() {
        let mut p = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
        p.install(&spec()).expect("installs");
        let (_, a) = p.invoke_resident(fid("f"), &args(10)).expect("a");
        let (_, b) = p.invoke_resident(fid("f"), &args(10)).expect("b");
        // Cold-booted VMs share nothing: PSS equals RSS.
        assert_eq!(a.pss_bytes(), a.rss_bytes());
        assert_eq!(b.pss_bytes(), b.rss_bytes());
        p.release_resident(a);
        p.release_resident(b);
    }
}
