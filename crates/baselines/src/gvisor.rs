//! The gVisor baseline: secure-container sandbox manager.

use fireworks_core::api::{
    ConcurrentPlatform, FunctionSpec, InFlightToken, InstallReport, Invocation, InvokeRequest,
    Platform, PlatformError, SnapshotResidency, StartKind, StartMode,
};
use fireworks_core::config::PlatformConfig;
use fireworks_core::env::PlatformEnv;
use fireworks_core::host::{GuestHost, NetMode};
use fireworks_core::{fid, FunctionId, IdMap};
use fireworks_lang::{JitConfig, Value};
use fireworks_runtime::RuntimeProfile;
use fireworks_sandbox::container::ContainerCheckpoint;
use fireworks_sandbox::{Container, ContainerKind, ContainerManager, IsolationLevel};
use fireworks_sim::trace::{Phase, Trace};

struct Entry {
    spec: FunctionSpec,
    profile: RuntimeProfile,
    checkpoint: Option<ContainerCheckpoint>,
}

/// The gVisor sandbox-manager baseline (Sentry + Gofer), optionally with
/// process checkpoints for starts (Table 1's "Medium (snapshot)"
/// performance column).
pub struct GvisorPlatform {
    env: PlatformEnv,
    containers: ContainerManager,
    registry: IdMap<Entry>,
    warm: IdMap<Vec<(Container, fireworks_sim::Nanos)>>,
    use_checkpoints: bool,
    keep_alive: Option<fireworks_sim::Nanos>,
}

impl GvisorPlatform {
    /// Creates the platform without checkpoint-based starts (the paper's
    /// Fig. 6/7 configuration: cold and warm starts only).
    pub fn new(env: PlatformEnv) -> Self {
        GvisorPlatform::with_checkpoints(env, false)
    }

    /// Creates the platform; with `use_checkpoints`, installs capture a
    /// post-load checkpoint and non-warm starts restore it.
    pub fn with_checkpoints(env: PlatformEnv, use_checkpoints: bool) -> Self {
        GvisorPlatform::with_config(env, use_checkpoints, PlatformConfig::default())
    }

    /// Creates the platform from a [`PlatformConfig`] (API v2). gVisor
    /// consumes the `keep_alive` field: idle warm sandboxes past the
    /// window are terminated.
    pub fn with_config(env: PlatformEnv, use_checkpoints: bool, config: PlatformConfig) -> Self {
        let containers =
            ContainerManager::new(env.clock.clone(), env.costs.clone(), env.host_mem.clone());
        GvisorPlatform {
            env,
            containers,
            registry: IdMap::new(),
            warm: IdMap::new(),
            use_checkpoints,
            keep_alive: config.keep_alive,
        }
    }

    /// The environment this platform runs on.
    pub fn env(&self) -> &PlatformEnv {
        &self.env
    }

    /// Drops warm sandboxes idle past the keep-alive timeout.
    fn purge_expired(&mut self) {
        let Some(timeout) = self.keep_alive else {
            return;
        };
        let now = self.env.clock.now();
        for pool in self.warm.values_mut() {
            pool.retain(|(_, last_used)| now - *last_used <= timeout);
        }
    }

    /// The service activity of one invocation; the sandbox stays checked
    /// out until [`ConcurrentPlatform::finish_invoke`].
    fn begin_invoke_internal(
        &mut self,
        function: FunctionId,
        args: &Value,
        mode: StartMode,
    ) -> Result<(Invocation, InFlightSandbox), PlatformError> {
        if mode == StartMode::Cold {
            self.evict(function);
        }
        self.purge_expired();
        let (source, profile, default_params, timeout) = {
            let e = self
                .registry
                .get(function)
                .ok_or_else(|| PlatformError::UnknownFunction(function.name().to_string()))?;
            (
                e.spec.source.clone(),
                e.profile.clone(),
                e.spec.default_params.deep_clone(),
                e.spec.timeout,
            )
        };
        let clock = self.env.clock.clone();
        let mut trace = Trace::new();
        let have_warm = self
            .warm
            .get(function)
            .map(|v| !v.is_empty())
            .unwrap_or(false);

        let (mut container, start) = match mode {
            StartMode::Warm | StartMode::Auto if have_warm => {
                let (mut c, _) = self
                    .warm
                    .get_mut(function)
                    .and_then(Vec::pop)
                    .expect("non-empty checked");
                trace.scope(&clock, "warm_attach", Phase::Startup, || {
                    self.containers.warm_attach(&mut c);
                });
                (c, StartKind::WarmPool)
            }
            StartMode::Warm => {
                return Err(PlatformError::NoWarmSandbox(function.name().to_string()))
            }
            _ => {
                let checkpoint = self
                    .registry
                    .get(function)
                    .and_then(|e| e.checkpoint.as_ref());
                match checkpoint {
                    Some(ckpt) => {
                        let c = trace.scope(&clock, "checkpoint_restore", Phase::Startup, || {
                            self.containers.restore(ckpt)
                        });
                        (c, StartKind::SnapshotRestore)
                    }
                    None => {
                        let c = trace.scope(&clock, "sandbox_create", Phase::Startup, || {
                            self.containers.create(
                                ContainerKind::Gvisor,
                                profile,
                                &source,
                                JitConfig::default(),
                            )
                        })?;
                        (c, StartKind::ColdBoot)
                    }
                }
            }
        };

        let mut host = GuestHost::new(
            clock.clone(),
            container.io().clone(),
            &self.env.costs.net,
            NetMode::Direct,
            self.env.costs.microvm.mmds_lookup,
            self.env.bus.clone(),
            self.env.store.clone(),
            default_params,
        );
        let result = {
            let rt = container
                .runtime_mut()
                .ok_or_else(|| PlatformError::Other("sandbox has no runtime".into()))?;
            rt.run_toplevel(&clock, &mut host)?;
            trace.scope(&clock, "framework", Phase::Exec, || {
                rt.charge_request_overhead(&clock);
            });
            rt.set_invocation_timeout(timeout);
            match rt.invoke(&clock, "main", vec![args.deep_clone()], &mut host) {
                Ok(r) => r,
                Err(fireworks_lang::LangError::Timeout { ops }) => {
                    return Err(PlatformError::Timeout {
                        function: function.name().to_string(),
                        ops,
                    })
                }
                Err(e) => return Err(e.into()),
            }
        };
        // Sentry intercepts the guest's syscalls; charge interception for
        // the call-outs the guest made.
        let intercepts = result.stats.host_calls + result.stats.builtin_calls;
        trace.scope(&clock, "sentry_intercept", Phase::Exec, || {
            container.io().charge_syscalls(&clock, intercepts);
        });
        container.sync_runtime_memory();
        let anchor = clock.now();
        trace.record(
            "exec",
            Phase::Exec,
            anchor - result.exec_time - host.external_time,
            anchor - host.external_time,
        );
        trace.record(
            "guest_io",
            Phase::Other,
            anchor - host.external_time,
            anchor,
        );

        let invocation = Invocation {
            value: result.value,
            breakdown: trace.breakdown(),
            trace,
            start,
            stats: result.stats,
            printed: host.printed,
            response: host.responses.into_iter().next_back(),
        };
        let inflight = InFlightSandbox {
            container,
            function,
        };
        Ok((invocation, inflight))
    }
}

/// An in-flight gVisor invocation: the sandbox serving it, checked out
/// of the warm pool until the completion event returns it.
#[derive(Debug)]
pub struct InFlightSandbox {
    container: Container,
    function: FunctionId,
}

impl InFlightToken for InFlightSandbox {
    fn pss_bytes(&self) -> u64 {
        // Sandboxes share nothing; PSS equals RSS.
        self.container.rss_bytes()
    }
}

impl ConcurrentPlatform for GvisorPlatform {
    type InFlight = InFlightSandbox;

    fn begin_invoke(
        &mut self,
        req: &InvokeRequest,
    ) -> Result<(Invocation, InFlightSandbox), PlatformError> {
        self.begin_invoke_internal(req.function, &req.args, req.mode)
    }

    fn finish_invoke(&mut self, inflight: InFlightSandbox) {
        let InFlightSandbox {
            mut container,
            function,
        } = inflight;
        self.containers.pause(&mut container);
        let stamped = (container, self.env.clock.now());
        match self.warm.get_mut(function) {
            Some(pool) => pool.push(stamped),
            None => {
                self.warm.insert(function, vec![stamped]);
            }
        }
    }

    fn residency(&self, function: FunctionId) -> SnapshotResidency {
        // Ready-to-restore artifacts: a process checkpoint captured at
        // install, or a paused warm sandbox. All-or-nothing, never
        // `Partial`.
        let checkpoint = self
            .registry
            .get(function)
            .map(|e| e.checkpoint.is_some())
            .unwrap_or(false);
        if checkpoint
            || self
                .warm
                .get(function)
                .map(|pool| !pool.is_empty())
                .unwrap_or(false)
        {
            SnapshotResidency::Full
        } else {
            SnapshotResidency::Absent
        }
    }
}

impl Platform for GvisorPlatform {
    fn name(&self) -> &'static str {
        "gvisor"
    }

    fn isolation(&self) -> IsolationLevel {
        IsolationLevel::SecureContainer
    }

    fn install(&mut self, spec: &FunctionSpec) -> Result<InstallReport, PlatformError> {
        let t0 = self.env.clock.now();
        let profile = RuntimeProfile::for_kind(spec.runtime);
        let checkpoint = if self.use_checkpoints {
            // Catalyzer-style: boot once, load the function, checkpoint
            // the process before any execution.
            let mut c = self.containers.create(
                ContainerKind::Gvisor,
                profile.clone(),
                &spec.source,
                JitConfig::default(),
            )?;
            Some(self.containers.checkpoint(&mut c))
        } else {
            None
        };
        let (pages, bytes) = checkpoint
            .as_ref()
            .map(|c| (c.pages(), c.file_bytes()))
            .unwrap_or((0, 0));
        self.registry.insert(
            fid(&spec.name),
            Entry {
                spec: spec.clone(),
                profile,
                checkpoint,
            },
        );
        Ok(InstallReport {
            install_time: self.env.clock.now() - t0,
            snapshot_pages: pages,
            snapshot_bytes: bytes,
            annotated_functions: 0,
        })
    }

    fn invoke(&mut self, req: &InvokeRequest) -> Result<Invocation, PlatformError> {
        // A blocking invoke is the degenerate one-event schedule: service
        // and completion at the same instant.
        let (invocation, inflight) =
            self.begin_invoke_internal(req.function, &req.args, req.mode)?;
        self.finish_invoke(inflight);
        Ok(invocation)
    }

    fn evict(&mut self, function: FunctionId) {
        self.warm.remove(function);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FirecrackerPlatform, OpenWhiskPlatform, SnapshotPolicy};
    use fireworks_runtime::RuntimeKind;

    const DISKIO_SRC: &str = "
        fn main(params) {
            let n = params[\"ops\"];
            let total = 0;
            for (let i = 0; i < n; i = i + 1) {
                total = total + io_read(\"data\", 10);
                io_write(\"data\", 10);
            }
            return total;
        }";

    fn spec() -> FunctionSpec {
        FunctionSpec::new(
            "diskio",
            DISKIO_SRC,
            RuntimeKind::NodeLike,
            Value::map([("ops".to_string(), Value::Int(10))]),
        )
    }

    fn args(ops: i64) -> Value {
        Value::map([("ops".to_string(), Value::Int(ops))])
    }

    fn req(ops: i64, mode: StartMode) -> InvokeRequest {
        InvokeRequest::new(fid("diskio"), args(ops)).with_mode(mode)
    }

    #[test]
    fn gvisor_cold_start_is_slowest_container_path() {
        let mut gv = GvisorPlatform::new(PlatformEnv::default_env());
        gv.install(&spec()).expect("installs");
        let gv_inv = gv.invoke(&req(1, StartMode::Cold)).expect("gv");

        let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
        ow.install(&spec()).expect("installs");
        let ow_inv = ow.invoke(&req(1, StartMode::Cold)).expect("ow");

        assert!(
            gv_inv.breakdown.startup > ow_inv.breakdown.startup,
            "gvisor {} vs openwhisk {}",
            gv_inv.breakdown.startup,
            ow_inv.breakdown.startup
        );
    }

    #[test]
    fn gvisor_io_is_slowest_of_all_sandboxes() {
        // §5.2.1(2): Sentry+Gofer I/O costs dominate; container overlayfs
        // is fastest, virtio in between.
        let io_time = |inv: &Invocation| inv.trace.total_for("guest_io");

        let mut gv = GvisorPlatform::new(PlatformEnv::default_env());
        gv.install(&spec()).expect("installs");
        let gv_io = io_time(&gv.invoke(&req(100, StartMode::Cold)).expect("gv"));

        let mut ow = OpenWhiskPlatform::new(PlatformEnv::default_env());
        ow.install(&spec()).expect("installs");
        let ow_io = io_time(&ow.invoke(&req(100, StartMode::Cold)).expect("ow"));

        let mut fc = FirecrackerPlatform::new(PlatformEnv::default_env(), SnapshotPolicy::None);
        fc.install(&spec()).expect("installs");
        let fc_io = io_time(&fc.invoke(&req(100, StartMode::Cold)).expect("fc"));

        assert!(ow_io < fc_io, "overlayfs {ow_io} < virtio {fc_io}");
        assert!(fc_io < gv_io, "virtio {fc_io} < gofer {gv_io}");
        assert!(gv_io.as_nanos() > 3 * ow_io.as_nanos());
    }

    #[test]
    fn warm_pool_works() {
        let mut p = GvisorPlatform::new(PlatformEnv::default_env());
        p.install(&spec()).expect("installs");
        assert!(!p.residency(fid("diskio")).is_full());
        p.invoke(&req(1, StartMode::Cold)).expect("cold");
        assert!(p.residency(fid("diskio")).is_full(), "warm sandbox held");
        let warm = p.invoke(&req(1, StartMode::Warm)).expect("warm");
        assert_eq!(warm.start, StartKind::WarmPool);
    }

    #[test]
    fn checkpoint_mode_restores_instead_of_booting() {
        let mut p = GvisorPlatform::with_checkpoints(PlatformEnv::default_env(), true);
        let report = p.install(&spec()).expect("installs");
        assert!(report.snapshot_pages > 0, "install captured a checkpoint");
        assert!(
            p.residency(fid("diskio")).is_full(),
            "checkpoint counts as held"
        );
        let inv = p.invoke(&req(1, StartMode::Cold)).expect("invokes");
        assert_eq!(inv.start, fireworks_core::api::StartKind::SnapshotRestore);

        // Checkpoint start is far faster than a Sentry cold boot.
        let mut cold = GvisorPlatform::new(PlatformEnv::default_env());
        cold.install(&spec()).expect("installs");
        let cold_inv = cold.invoke(&req(1, StartMode::Cold)).expect("cold");
        assert!(
            inv.breakdown.startup.as_nanos() * 5 < cold_inv.breakdown.startup.as_nanos(),
            "checkpoint {} vs cold {}",
            inv.breakdown.startup,
            cold_inv.breakdown.startup
        );
    }

    #[test]
    fn chains_are_not_supported() {
        let mut p = GvisorPlatform::new(PlatformEnv::default_env());
        p.install(&spec()).expect("installs");
        assert!(!p.supports_chains());
        assert!(p
            .invoke_chain(
                &[fid("diskio")],
                &InvokeRequest::new(fid("diskio"), args(1))
            )
            .is_err());
    }
}
