//! The baseline serverless platforms of the paper's evaluation (§5.1):
//!
//! - [`FirecrackerPlatform`]: microVM sandbox manager. Cold starts boot a
//!   full VM; warm starts resume a paused one; an optional OS-level
//!   snapshot policy (the "+VM-level OS snapshot" factor of Fig. 11)
//!   snapshots after boot + runtime launch + app load, *before any
//!   execution or JIT*.
//! - [`OpenWhiskPlatform`]: container platform with controller overheads
//!   (authentication, dispatch), a warm container pool, and support for
//!   chains of functions (action sequences).
//! - [`GvisorPlatform`]: secure-container sandbox manager (Sentry+Gofer
//!   boot, intercepted I/O path).
//!
//! All three implement [`fireworks_core::api::Platform`], so the
//! benchmark harness can sweep platforms uniformly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod firecracker;
pub mod gvisor;
pub mod openwhisk;

pub use firecracker::{FirecrackerPlatform, SnapshotPolicy};
pub use gvisor::GvisorPlatform;
pub use openwhisk::OpenWhiskPlatform;
