//! The microVM manager: lifecycle operations with their costs.

use std::collections::BTreeMap;
use std::rc::Rc;

use fireworks_guestmem::{AddressSpace, HostMemory, SnapshotFile};
use fireworks_lang::{JitConfig, JitPolicy, LangError};
use fireworks_obs::{cat, Obs, SpanId};
use fireworks_runtime::{GuestRuntime, MemoryModel, RuntimeProfile};
use fireworks_sim::fault::{FaultSite, SharedInjector};
use fireworks_sim::{Clock, CostModel, Nanos};

use crate::error::VmError;
use crate::vm::{MicroVm, MicroVmConfig, RegionExtents, VmFullSnapshot, VmState};

/// Creates, boots, snapshots, and restores microVMs on one host.
///
/// # Examples
///
/// ```
/// use fireworks_microvm::{VmManager, MicroVmConfig};
/// use fireworks_guestmem::HostMemory;
/// use fireworks_sim::{Clock, CostModel};
/// use std::rc::Rc;
///
/// let clock = Clock::new();
/// let host = HostMemory::new(clock.clone(), 8 << 30, 60);
/// let mut mgr = VmManager::new(clock, Rc::new(CostModel::default()), host);
/// let mut vm = mgr.create(MicroVmConfig::default());
/// mgr.boot(&mut vm).expect("no faults armed");
/// assert!(vm.boot_time().as_millis() > 500, "cold boots are expensive");
/// ```
#[derive(Debug)]
pub struct VmManager {
    clock: Clock,
    costs: Rc<CostModel>,
    host_mem: HostMemory,
    next_id: u64,
    injector: Option<SharedInjector>,
    obs: Option<Obs>,
}

impl VmManager {
    /// Creates a manager allocating guest memory from `host_mem`.
    pub fn new(clock: Clock, costs: Rc<CostModel>, host_mem: HostMemory) -> Self {
        VmManager {
            clock,
            costs,
            host_mem,
            next_id: 1,
            injector: None,
            obs: None,
        }
    }

    /// Attaches a fault injector; boot and restore consult it at their
    /// fault sites. Without one, both operations are infallible.
    pub fn set_fault_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// Attaches an observability plane; lifecycle operations then record
    /// spans (boot stages, pause/resume, snapshot capture/restore) and
    /// counters. Without one, operations record nothing.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    fn span_start(&self, name: &'static str, category: &'static str) -> Option<SpanId> {
        self.obs
            .as_ref()
            .map(|o| o.recorder().start(name, category))
    }

    fn span_end(&self, id: Option<SpanId>) {
        if let (Some(obs), Some(id)) = (&self.obs, id) {
            obs.recorder().end(id);
        }
    }

    fn count(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        if let Some(obs) = &self.obs {
            obs.metrics().add(name, labels, delta);
        }
    }

    /// Asks the attached injector (if any) whether `site` fails now.
    fn should_fail(&self, site: FaultSite) -> bool {
        self.injector
            .as_ref()
            .map(|inj| inj.borrow_mut().should_fail(site))
            .unwrap_or(false)
    }

    /// The virtual clock all operations charge against.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The cost table in use.
    pub fn costs(&self) -> &Rc<CostModel> {
        &self.costs
    }

    /// The host memory VMs allocate from.
    pub fn host_mem(&self) -> &HostMemory {
        &self.host_mem
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Spawns and configures a VMM process (no guest boot yet).
    pub fn create(&mut self, config: MicroVmConfig) -> MicroVm {
        let start = self.clock.now();
        let span = self.span_start("vmm_setup", cat::BOOT);
        self.clock.advance(self.costs.microvm.vmm_setup);
        self.span_end(span);
        MicroVm {
            id: self.next_id(),
            config,
            state: VmState::Created,
            space: AddressSpace::new(self.host_mem.clone(), config.mem_bytes),
            runtime: None,
            mmds: BTreeMap::new(),
            extents: RegionExtents::default(),
            memmodel: MemoryModel::default(),
            boot_time: self.clock.now() - start,
            aged_ops: 0,
        }
    }

    /// Boots the guest kernel and userspace, materialising the OS image.
    ///
    /// With a fault injector attached, the VMM can crash mid-boot
    /// ([`FaultSite::VmCrash`]): the boot time is still charged (the
    /// wasted work is real), the VM stays in [`VmState::Created`], and
    /// the caller may retry.
    ///
    /// # Panics
    ///
    /// Panics if the VM is not in [`VmState::Created`].
    pub fn boot(&mut self, vm: &mut MicroVm) -> Result<(), VmError> {
        assert_eq!(vm.state, VmState::Created, "boot from Created only");
        let start = self.clock.now();
        let boot_span = self.span_start("vm_boot", cat::BOOT);
        let kernel = self.span_start("kernel_boot", cat::BOOT);
        self.clock.advance(self.costs.microvm.kernel_boot);
        self.span_end(kernel);
        if self.should_fail(FaultSite::VmCrash) {
            vm.boot_time += self.clock.now() - start;
            self.count("microvm.manager.boot_crashes", &[], 1);
            self.span_end(boot_span);
            return Err(VmError::BootCrash);
        }
        let init = self.span_start("guest_init", cat::BOOT);
        self.clock.advance(self.costs.microvm.guest_init);
        self.span_end(init);
        vm.sync_runtime_memory(); // Materialises the OS region.
        vm.state = VmState::Running;
        vm.boot_time += self.clock.now() - start;
        self.count("microvm.manager.boots", &[], 1);
        self.span_end(boot_span);
        Ok(())
    }

    /// Launches a language runtime inside the VM and loads `source`.
    ///
    /// `jit` is the platform-level JIT shape ([`JitConfig`]): tier-up
    /// policy override, code-cache budget, and inline-cache limits. Use
    /// [`JitConfig::default`] for the runtime profile's stock behaviour.
    pub fn launch_runtime(
        &mut self,
        vm: &mut MicroVm,
        profile: RuntimeProfile,
        source: &str,
        jit: JitConfig,
    ) -> Result<(), LangError> {
        assert_eq!(vm.state, VmState::Running, "runtime needs a booted guest");
        let start = self.clock.now();
        let span = self.span_start("runtime_launch", cat::BOOT);
        let result = GuestRuntime::launch(&self.clock, profile, source, jit);
        self.span_end(span);
        let rt = result?;
        vm.runtime = Some(rt);
        vm.sync_runtime_memory();
        vm.boot_time += self.clock.now() - start;
        Ok(())
    }

    /// Launches a language runtime with a bare tier-up policy override.
    #[deprecated(
        since = "0.4.0",
        note = "use `launch_runtime` with a `JitConfig` (wrap the policy \
                via `JitConfig::default().with_policy(..)`)"
    )]
    pub fn launch_runtime_with_policy(
        &mut self,
        vm: &mut MicroVm,
        profile: RuntimeProfile,
        source: &str,
        policy: Option<JitPolicy>,
    ) -> Result<(), LangError> {
        self.launch_runtime(
            vm,
            profile,
            source,
            JitConfig::default().with_policy(policy),
        )
    }

    /// Pauses a running VM in memory (warm pool).
    pub fn pause(&mut self, vm: &mut MicroVm) {
        assert_eq!(vm.state, VmState::Running, "pause a running VM");
        let span = self.span_start("vm_pause", cat::BOOT);
        self.clock.advance(self.costs.microvm.pause);
        self.span_end(span);
        vm.state = VmState::Paused;
    }

    /// Resumes a paused VM — the Firecracker warm start.
    pub fn resume(&mut self, vm: &mut MicroVm) {
        assert_eq!(vm.state, VmState::Paused, "resume a paused VM");
        let span = self.span_start("vm_resume", cat::BOOT);
        self.clock.advance(self.costs.microvm.resume_paused);
        self.span_end(span);
        vm.state = VmState::Running;
    }

    /// Reads an MMDS key from inside the guest, charging the lookup.
    pub fn mmds_get(&self, vm: &MicroVm, key: &str) -> Option<String> {
        self.clock.advance(self.costs.microvm.mmds_lookup);
        vm.mmds_get_raw(key).map(str::to_string)
    }

    /// Creates a full-VM snapshot (memory file + device/runtime state),
    /// charging per resident page written — this is the paper's §5.1
    /// install-time cost.
    pub fn snapshot(&mut self, vm: &mut MicroVm) -> VmFullSnapshot {
        vm.sync_runtime_memory();
        let span = self.span_start("snapshot_capture", cat::SNAPSHOT);
        self.clock.advance(self.costs.microvm.snapshot_create_base);
        let pages = vm.space.resident_pages() as u64;
        self.clock
            .advance(self.costs.microvm.snapshot_write_per_page * pages);
        let snap = VmFullSnapshot {
            mem: SnapshotFile::capture(&vm.space, Vec::new()),
            runtime: vm.runtime.as_ref().map(|r| Rc::new(r.snapshot())),
            config: vm.config,
            extents: vm.extents,
            memmodel: vm.memmodel,
        };
        if let (Some(obs), Some(id)) = (&self.obs, span) {
            obs.recorder().attr(id, "pages", pages);
            obs.recorder().attr(id, "bytes", snap.file_bytes());
        }
        self.count("microvm.snapshot.captures", &[], 1);
        self.count("microvm.snapshot.pages_written", &[], pages);
        self.span_end(span);
        snap
    }

    /// Restores a snapshot into a fresh microVM, mapping all pages shared.
    /// This is the Fireworks start path: a small fixed cost plus lazy
    /// mapping, instead of the boot pipeline.
    ///
    /// With a fault injector attached, three things can go wrong, in
    /// order: the snapshot file read can fail transiently
    /// ([`FaultSite::SnapshotRead`]); a stored page can be corrupt —
    /// [`FaultSite::SnapshotCorruption`] physically damages a
    /// deterministic page, and the per-page checksums recorded at capture
    /// time then catch it (along with any pre-existing damage) before any
    /// page is mapped; and the VMM can crash after mapping
    /// ([`FaultSite::VmCrash`]). Costs accrued before the failure stay
    /// charged.
    pub fn restore(&mut self, snapshot: &VmFullSnapshot) -> Result<MicroVm, VmError> {
        let restore_span = self.span_start("snapshot_restore", cat::RESTORE);
        if let (Some(obs), Some(id)) = (&self.obs, restore_span) {
            obs.recorder().attr(id, "pages", snapshot.mem.pages());
        }
        self.count("microvm.restore.attempts", &[], 1);
        let read = self.span_start("restore_read", cat::RESTORE);
        self.clock.advance(self.costs.microvm.snapshot_restore_base);
        if self.should_fail(FaultSite::SnapshotRead) {
            self.count("microvm.restore.failures", &[("kind", "read")], 1);
            self.span_end(restore_span); // Closes the open read child too.
            return Err(VmError::SnapshotRead);
        }
        self.span_end(read);
        let verify = self.span_start("page_verify", cat::RESTORE);
        if snapshot.mem.pages() > 0 && self.should_fail(FaultSite::SnapshotCorruption) {
            // Damage a deterministic (occurrence-dependent) page so the
            // checksum machinery does real detection work below.
            let occurrence = self
                .injector
                .as_ref()
                .map(|inj| inj.borrow().injected_at(FaultSite::SnapshotCorruption))
                .unwrap_or(1);
            let index = occurrence.wrapping_mul(7919) % snapshot.mem.pages();
            snapshot.mem.corrupt_page(index);
        }
        if let Err(err) = snapshot.mem.verify() {
            self.count("microvm.restore.failures", &[("kind", "corrupt")], 1);
            self.span_end(restore_span);
            return Err(err.into());
        }
        self.count(
            "microvm.restore.pages_verified",
            &[],
            snapshot.mem.pages() as u64,
        );
        self.span_end(verify);
        let map = self.span_start("map_pages", cat::RESTORE);
        self.clock
            .advance(self.costs.microvm.snapshot_map_per_page * snapshot.mem.pages() as u64);
        if self.should_fail(FaultSite::VmCrash) {
            self.count("microvm.restore.failures", &[("kind", "crash")], 1);
            self.span_end(restore_span);
            return Err(VmError::RestoreCrash);
        }
        let space = snapshot.mem.restore(&self.host_mem);
        self.span_end(map);
        self.span_end(restore_span);
        Ok(MicroVm {
            id: self.next_id(),
            config: snapshot.config,
            state: VmState::Running,
            space,
            runtime: snapshot
                .runtime
                .as_ref()
                .map(|r| GuestRuntime::from_snapshot(r)),
            mmds: BTreeMap::new(),
            extents: snapshot.extents,
            memmodel: snapshot.memmodel,
            boot_time: Nanos::ZERO,
            aged_ops: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_lang::{NoopHost, Value};
    use fireworks_runtime::guest::RunOutcome;
    use fireworks_sim::fault::{self, FaultInjector, FaultPlan};

    const SRC: &str = "
        fn work(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }
        fn main(n) { return work(n); }";

    const INSTALL_SRC: &str = "
        @jit fn work(n) { let t = 0; for (let i = 0; i < n; i = i + 1) { t = t + i; } return t; }
        fn installer(n) {
            work(n);
            work(n);
            fireworks_snapshot();
            return work(n);
        }";

    fn manager() -> VmManager {
        let clock = Clock::new();
        let host = HostMemory::new(clock.clone(), 16 << 30, 60);
        VmManager::new(clock, Rc::new(CostModel::default()), host)
    }

    fn booted_vm(mgr: &mut VmManager, src: &str, jit: JitConfig) -> MicroVm {
        let mut vm = mgr.create(MicroVmConfig::default());
        mgr.boot(&mut vm).expect("boots");
        mgr.launch_runtime(&mut vm, RuntimeProfile::node(), src, jit)
            .expect("launches");
        vm
    }

    #[test]
    fn cold_boot_charges_full_pipeline() {
        let mut mgr = manager();
        let vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        // VMM + kernel + init + runtime launch + app load ≈ 2 s.
        assert!(
            vm.boot_time().as_millis() > 1_500,
            "boot {} too fast",
            vm.boot_time()
        );
        assert_eq!(vm.state(), VmState::Running);
    }

    #[test]
    fn boot_materialises_os_image() {
        let mut mgr = manager();
        let mut vm = mgr.create(MicroVmConfig::default());
        assert_eq!(vm.rss_bytes(), 0);
        mgr.boot(&mut vm).expect("boots");
        assert!(vm.rss_bytes() >= crate::vm::OS_IMAGE_BYTES);
    }

    #[test]
    fn pause_resume_is_cheap() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        mgr.pause(&mut vm);
        let before = mgr.clock().now();
        mgr.resume(&mut vm);
        let warm = mgr.clock().now() - before;
        assert!(warm < Nanos::from_millis(50));
        assert!(warm.as_nanos() * 10 < vm.boot_time().as_nanos());
    }

    #[test]
    fn snapshot_cost_scales_with_resident_pages() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        let before = mgr.clock().now();
        let snap = mgr.snapshot(&mut vm);
        let took = mgr.clock().now() - before;
        // §5.1: several hundred ms for a ~140 MiB image.
        assert!(
            (0.1..1.0).contains(&took.as_secs_f64()),
            "snapshot took {took}"
        );
        assert!(snap.pages() > 20_000);
    }

    #[test]
    fn restore_is_orders_of_magnitude_faster_than_boot() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        let boot = vm.boot_time();
        let snap = mgr.snapshot(&mut vm);
        let before = mgr.clock().now();
        let restored = mgr.restore(&snap).expect("restores");
        let restore_time = mgr.clock().now() - before;
        assert!(
            restore_time.as_nanos() * 50 < boot.as_nanos(),
            "restore {restore_time} vs boot {boot}"
        );
        assert_eq!(restored.state(), VmState::Running);
        assert_eq!(restored.boot_time(), Nanos::ZERO);
    }

    #[test]
    fn restored_vm_shares_memory_until_invocation() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        let snap = mgr.snapshot(&mut vm);
        drop(vm);
        let a = mgr.restore(&snap).expect("restores");
        let b = mgr.restore(&snap).expect("restores");
        // Fully shared: PSS is half of RSS for two clones.
        assert_eq!(a.rss_bytes(), b.rss_bytes());
        assert!(a.pss_bytes() <= a.rss_bytes() / 2 + 4096);

        // After one clone runs an invocation, its PSS grows.
        let mut a = a;
        let rt = a.runtime_mut().expect("runtime");
        rt.invoke(mgr.clock(), "main", vec![Value::Int(100)], &mut NoopHost)
            .expect("runs");
        a.sync_runtime_memory();
        a.dirty_invocation();
        assert!(a.pss_bytes() > b.pss_bytes());
    }

    #[test]
    fn post_jit_snapshot_round_trip_resumes_with_jit() {
        let mut mgr = manager();
        let mut vm = mgr.create(MicroVmConfig::default());
        mgr.boot(&mut vm).expect("boots");
        mgr.launch_runtime(
            &mut vm,
            RuntimeProfile::python(),
            INSTALL_SRC,
            JitConfig::default().with_policy(Some(JitPolicy::AnnotatedEager)),
        )
        .expect("launches");

        // Install phase: run to the snapshot point.
        let rt = vm.runtime_mut().expect("runtime");
        rt.start("installer", vec![Value::Int(5_000)])
            .expect("starts");
        let clock = mgr.clock().clone();
        let RunOutcome::SnapshotPoint = rt.run(&clock, &mut NoopHost).expect("runs") else {
            panic!("expected snapshot point");
        };
        let snap = mgr.snapshot(&mut vm);
        assert!(snap.is_post_jit(), "snapshot must carry JIT code");

        // Invoke phase: restore and resume.
        let mut clone = mgr.restore(&snap).expect("restores");
        let rt = clone.runtime_mut().expect("runtime restored");
        assert!(rt.is_suspended(), "clone resumes mid-program");
        let RunOutcome::Done(r) = rt.run(&clock, &mut NoopHost).expect("resumes") else {
            panic!("expected completion");
        };
        assert_eq!(r.value, Value::Int(12_497_500));
        assert_eq!(r.stats.compiles, 0, "no compile cost after restore");
    }

    #[test]
    fn mmds_is_per_instance_not_in_snapshot() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        vm.mmds_set("instance-id", "original");
        let snap = mgr.snapshot(&mut vm);
        let mut a = mgr.restore(&snap).expect("restores");
        let mut b = mgr.restore(&snap).expect("restores");
        assert_eq!(
            mgr.mmds_get(&a, "instance-id"),
            None,
            "MMDS not snapshotted"
        );
        a.mmds_set("instance-id", "vm-a");
        b.mmds_set("instance-id", "vm-b");
        assert_eq!(mgr.mmds_get(&a, "instance-id").as_deref(), Some("vm-a"));
        assert_eq!(mgr.mmds_get(&b, "instance-id").as_deref(), Some("vm-b"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_policy_launch_matches_jitconfig_launch() {
        let mut mgr_a = manager();
        let mut vm_a = mgr_a.create(MicroVmConfig::default());
        mgr_a.boot(&mut vm_a).expect("boots");
        mgr_a
            .launch_runtime_with_policy(
                &mut vm_a,
                RuntimeProfile::node(),
                SRC,
                Some(JitPolicy::Off),
            )
            .expect("launches");

        let mut mgr_b = manager();
        let mut vm_b = mgr_b.create(MicroVmConfig::default());
        mgr_b.boot(&mut vm_b).expect("boots");
        mgr_b
            .launch_runtime(
                &mut vm_b,
                RuntimeProfile::node(),
                SRC,
                JitConfig::default().with_policy(Some(JitPolicy::Off)),
            )
            .expect("launches");

        assert_eq!(vm_a.boot_time(), vm_b.boot_time());
        let ra = vm_a
            .runtime_mut()
            .expect("rt")
            .invoke(mgr_a.clock(), "main", vec![Value::Int(500)], &mut NoopHost)
            .expect("runs");
        let rb = vm_b
            .runtime_mut()
            .expect("rt")
            .invoke(mgr_b.clock(), "main", vec![Value::Int(500)], &mut NoopHost)
            .expect("runs");
        assert_eq!(ra.value, rb.value);
        assert_eq!(ra.exec_time, rb.exec_time);
    }

    #[test]
    fn vm_ids_are_unique() {
        let mut mgr = manager();
        let a = mgr.create(MicroVmConfig::default());
        let b = mgr.create(MicroVmConfig::default());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn working_set_covers_code_heap_and_exec_state() {
        let mut mgr = manager();
        let vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        let ranges = vm.working_set_ranges();
        assert!(!ranges.is_empty());
        let total_pages: usize = ranges.iter().map(|(_, n)| n).sum();
        // The working set is a substantial fraction of — but well below —
        // the full image.
        assert!(total_pages > 2_000, "ws {total_pages} pages");
        assert!(total_pages < vm.rss_bytes() as usize / 4096);
        // Ranges must not overlap (REAP would double-count).
        let mut sorted = ranges.clone();
        sorted.sort_by_key(|(first, _)| *first);
        for w in sorted.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn aging_dirties_churn_progressively_up_to_the_arena_cap() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        let snap = mgr.snapshot(&mut vm);
        let mut clone = mgr.restore(&snap).expect("restores");
        let base = clone.pss_bytes();
        clone.age_ops(10_000_000);
        let aged_10m = clone.pss_bytes();
        assert!(aged_10m > base, "aging must privatise churn pages");
        clone.age_ops(40_000_000);
        let aged_50m = clone.pss_bytes();
        assert!(aged_50m > aged_10m);
        // The arena caps churn: further aging saturates.
        clone.age_ops(u64::MAX / 2);
        let saturated = clone.pss_bytes();
        clone.age_ops(1_000_000);
        assert_eq!(clone.pss_bytes(), saturated, "arena cap reached");
    }

    #[test]
    fn jit_growth_after_restore_dirties_only_new_pages() {
        let mut mgr = manager();
        // Snapshot without JIT (plain OS+runtime snapshot).
        let mut vm = booted_vm(
            &mut mgr,
            SRC,
            JitConfig::default().with_policy(Some(JitPolicy::Off)),
        );
        let snap = mgr.snapshot(&mut vm);
        let mut clone = mgr.restore(&snap).expect("restores");
        let rss_before = clone.rss_bytes();

        // Run hot code with JIT enabled after restore? The restored
        // runtime keeps its policy; instead verify heap growth dirties.
        let rt = clone.runtime_mut().expect("rt");
        rt.invoke(mgr.clock(), "main", vec![Value::Int(50_000)], &mut NoopHost)
            .expect("runs");
        clone.sync_runtime_memory();
        // Heap may grow a little; RSS must never shrink and extents only
        // extend.
        assert!(clone.rss_bytes() >= rss_before);
    }

    #[test]
    fn boot_crash_leaves_vm_retryable() {
        let mut mgr = manager();
        let plan = FaultPlan::new(7).nth(FaultSite::VmCrash, 1);
        mgr.set_fault_injector(fault::shared(FaultInjector::new(plan)));
        let mut vm = mgr.create(MicroVmConfig::default());
        assert_eq!(mgr.boot(&mut vm), Err(VmError::BootCrash));
        assert_eq!(vm.state(), VmState::Created);
        assert!(
            vm.boot_time() > Nanos::ZERO,
            "failed boot still burned time"
        );
        mgr.boot(&mut vm).expect("second attempt is clean");
        assert_eq!(vm.state(), VmState::Running);
    }

    #[test]
    fn restore_read_fault_is_transient() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        let snap = mgr.snapshot(&mut vm);
        let plan = FaultPlan::new(3).nth(FaultSite::SnapshotRead, 1);
        mgr.set_fault_injector(fault::shared(FaultInjector::new(plan)));
        let err = mgr.restore(&snap).expect_err("read fails once");
        assert_eq!(err, VmError::SnapshotRead);
        assert!(err.is_transient());
        mgr.restore(&snap).expect("retry succeeds");
    }

    #[test]
    fn injected_corruption_is_caught_by_checksums_and_persists() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        let snap = mgr.snapshot(&mut vm);
        let plan = FaultPlan::new(11).nth(FaultSite::SnapshotCorruption, 1);
        mgr.set_fault_injector(fault::shared(FaultInjector::new(plan)));
        let err = mgr.restore(&snap).expect_err("corruption detected");
        assert!(matches!(err, VmError::Corrupt(_)), "got {err:?}");
        assert!(!err.is_transient());
        // The damage is physical: with the fault rule exhausted, the
        // snapshot is still bad on the next attempt.
        let err2 = mgr.restore(&snap).expect_err("still corrupt");
        assert!(matches!(err2, VmError::Corrupt(_)));
    }

    #[test]
    fn pristine_snapshot_restores_even_with_injector_at_rate_zero() {
        let mut mgr = manager();
        let mut vm = booted_vm(&mut mgr, SRC, JitConfig::default());
        let snap = mgr.snapshot(&mut vm);
        mgr.set_fault_injector(fault::shared(FaultInjector::new(FaultPlan::uniform(
            42, 0.0,
        ))));
        mgr.restore(&snap).expect("rate-0 injector never fires");
    }
}
