//! REAP-style working-set recording and prefetching (Ustiugov et al.,
//! ASPLOS '21), the snapshot-loading optimisation the paper names as
//! complementary to Fireworks (§7: "FIREWORKS can also employ REAP's
//! prefetching to further reduce the overhead for reading snapshots from
//! disk").
//!
//! When a snapshot's pages are *not* resident in the host page cache
//! (cold storage, or thousands of functions competing for cache), every
//! first touch after restore is a major fault: a random read from the
//! snapshot file. REAP records the set of pages an invocation actually
//! touches (the working set) and, on later restores, loads exactly those
//! pages with one sequential read — turning many random major faults into
//! one bulk prefetch.

use std::collections::BTreeSet;

use fireworks_guestmem::SnapshotFile;
use fireworks_obs::{cat, BatchedCounter, Obs};
use fireworks_sim::fault::{FaultSite, SharedInjector};
use fireworks_sim::{Clock, Nanos};

use crate::error::VmError;

/// Cost model for snapshot-file paging.
#[derive(Debug, Clone)]
pub struct PagingCosts {
    /// One random major fault (seek + 4 KiB read + fault handling).
    pub major_fault: Nanos,
    /// Per-page cost of one bulk sequential read (amortised).
    pub sequential_read_per_page: Nanos,
    /// Fixed cost of issuing the prefetch (open, iovec setup).
    pub prefetch_base: Nanos,
}

impl Default for PagingCosts {
    fn default() -> Self {
        PagingCosts {
            major_fault: Nanos::from_micros(11),
            sequential_read_per_page: Nanos::from_nanos(900),
            prefetch_base: Nanos::from_micros(250),
        }
    }
}

/// Operating mode of the REAP mechanism for one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReapMode {
    /// No recording, no prefetching: every first touch of a non-resident
    /// snapshot page is a random major fault.
    Off,
    /// Record the pages touched by this invocation (the first invocation
    /// after deploying to cold storage).
    Record,
    /// Prefetch the recorded working set before resuming; accesses outside
    /// the recorded set still fault individually.
    Prefetch,
}

/// The recorded working set of one function's invocations.
#[derive(Debug, Clone, Default)]
pub struct WorkingSet {
    pages: BTreeSet<usize>,
}

impl WorkingSet {
    /// Creates an empty working set.
    pub fn new() -> Self {
        WorkingSet::default()
    }

    /// Records a touched page.
    pub fn record(&mut self, page: usize) {
        self.pages.insert(page);
    }

    /// Records a contiguous page range.
    pub fn record_range(&mut self, first: usize, count: usize) {
        for p in first..first + count {
            self.pages.insert(p);
        }
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether a page is in the set.
    pub fn contains(&self, page: usize) -> bool {
        self.pages.contains(&page)
    }
}

/// Tracks paging state of one restored VM whose snapshot lives in cold
/// storage, charging faults or prefetches on the clock.
#[derive(Debug)]
pub struct ReapSession {
    mode: ReapMode,
    costs: PagingCosts,
    touched: WorkingSet,
    resident: BTreeSet<usize>,
    major_faults: u64,
    prefetched_pages: u64,
    /// Write-buffered fault/hit counters: `touch` runs once per guest
    /// page, so increments batch locally and flush when the session
    /// drops (or on [`ReapSession::flush_metrics`]).
    fault_ctr: Option<BatchedCounter>,
    hit_ctr: Option<BatchedCounter>,
}

impl ReapSession {
    /// Starts a session. In [`ReapMode::Prefetch`], `working_set` is the
    /// set recorded by an earlier [`ReapMode::Record`] session.
    pub fn start(
        clock: &Clock,
        mode: ReapMode,
        costs: PagingCosts,
        working_set: WorkingSet,
    ) -> Self {
        match Self::start_with_faults(clock, mode, costs, working_set, None, None) {
            Ok(session) => session,
            Err(_) => unreachable!("no fault sources supplied"),
        }
    }

    /// Starts a session like [`ReapSession::start`], but the prefetch bulk
    /// read consults a fault injector ([`FaultSite::SnapshotRead`] — the
    /// read from cold storage can fail transiently) and, when the backing
    /// [`SnapshotFile`] is supplied, re-checksums each working-set page as
    /// it is read, so stored-page corruption is caught at prefetch time
    /// rather than when the guest executes the page.
    ///
    /// On failure the fixed prefetch-issue cost has already been charged;
    /// the per-page read cost is only charged when the read succeeds.
    pub fn start_with_faults(
        clock: &Clock,
        mode: ReapMode,
        costs: PagingCosts,
        working_set: WorkingSet,
        injector: Option<&SharedInjector>,
        snapshot: Option<&SnapshotFile>,
    ) -> Result<Self, VmError> {
        Self::start_observed(clock, mode, costs, working_set, injector, snapshot, None)
    }

    /// Starts a session like [`ReapSession::start_with_faults`] and, when
    /// an observability plane is supplied, records the prefetch bulk read
    /// as a span (category `prefetch`) plus prefetch/fault counters:
    /// `microvm.reap.prefetched_pages`, `microvm.reap.prefetch_hits`,
    /// `microvm.reap.major_faults`, and `microvm.reap.prefetch_failures`.
    #[allow(clippy::too_many_arguments)]
    pub fn start_observed(
        clock: &Clock,
        mode: ReapMode,
        costs: PagingCosts,
        working_set: WorkingSet,
        injector: Option<&SharedInjector>,
        snapshot: Option<&SnapshotFile>,
        obs: Option<&Obs>,
    ) -> Result<Self, VmError> {
        let mut resident = BTreeSet::new();
        let mut prefetched_pages = 0;
        if mode == ReapMode::Prefetch && !working_set.is_empty() {
            let span = obs.map(|o| {
                let id = o.recorder().start("reap_prefetch", cat::PREFETCH);
                o.recorder().attr(id, "pages", working_set.len());
                id
            });
            let end_span = |failed: bool| {
                if let (Some(o), Some(id)) = (obs, span) {
                    if failed {
                        o.recorder().attr(id, "failed", true);
                        o.metrics().inc("microvm.reap.prefetch_failures", &[]);
                    }
                    o.recorder().end(id);
                }
            };
            clock.advance(costs.prefetch_base);
            let read_fails = injector
                .map(|inj| inj.borrow_mut().should_fail(FaultSite::SnapshotRead))
                .unwrap_or(false);
            if read_fails {
                end_span(true);
                return Err(VmError::SnapshotRead);
            }
            // One bulk sequential read of the whole working set.
            clock.advance(costs.sequential_read_per_page * working_set.len() as u64);
            if let Some(snap) = snapshot {
                for page in &working_set.pages {
                    if let Err(err) = snap.verify_guest_page(*page) {
                        end_span(true);
                        return Err(err.into());
                    }
                }
            }
            resident.extend(working_set.pages.iter().copied());
            prefetched_pages = working_set.len() as u64;
            if let Some(o) = obs {
                o.metrics()
                    .add("microvm.reap.prefetched_pages", &[], prefetched_pages);
            }
            end_span(false);
        }
        Ok(ReapSession {
            mode,
            costs,
            touched: WorkingSet::new(),
            resident,
            major_faults: 0,
            prefetched_pages,
            fault_ctr: obs.map(|o| {
                o.metrics()
                    .counter("microvm.reap.major_faults", &[])
                    .batched()
            }),
            hit_ctr: obs.map(|o| {
                o.metrics()
                    .counter("microvm.reap.prefetch_hits", &[])
                    .batched()
            }),
        })
    }

    /// Notes that the guest touched `page` of the snapshot file, charging
    /// a major fault if it is not resident yet.
    pub fn touch(&mut self, clock: &Clock, page: usize) {
        self.touched.record(page);
        if self.resident.insert(page) {
            clock.advance(self.costs.major_fault);
            self.major_faults += 1;
            if let Some(c) = &self.fault_ctr {
                c.inc();
            }
        } else if let Some(c) = &self.hit_ctr {
            c.inc();
        }
    }

    /// Pushes buffered fault/hit increments to the shared registry so a
    /// metrics snapshot taken mid-session sees them; dropping the
    /// session flushes the tail automatically.
    pub fn flush_metrics(&self) {
        if let Some(c) = &self.fault_ctr {
            c.flush();
        }
        if let Some(c) = &self.hit_ctr {
            c.flush();
        }
    }

    /// Notes a touched page range.
    pub fn touch_range(&mut self, clock: &Clock, first: usize, count: usize) {
        for p in first..first + count {
            self.touch(clock, p);
        }
    }

    /// Finishes the session; in [`ReapMode::Record`] returns the recorded
    /// working set for future prefetching.
    pub fn finish(self) -> Option<WorkingSet> {
        match self.mode {
            ReapMode::Record => Some(self.touched),
            _ => None,
        }
    }

    /// Major faults taken so far.
    pub fn major_faults(&self) -> u64 {
        self.major_faults
    }

    /// Pages loaded by the upfront prefetch.
    pub fn prefetched_pages(&self) -> u64 {
        self.prefetched_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch_workload(session: &mut ReapSession, clock: &Clock) {
        // A working set of 3 ranges, 700 pages total.
        session.touch_range(clock, 0, 200);
        session.touch_range(clock, 10_000, 400);
        session.touch_range(clock, 40_000, 100);
    }

    #[test]
    fn off_mode_pays_one_major_fault_per_page() {
        let clock = Clock::new();
        let mut s = ReapSession::start(
            &clock,
            ReapMode::Off,
            PagingCosts::default(),
            WorkingSet::new(),
        );
        touch_workload(&mut s, &clock);
        assert_eq!(s.major_faults(), 700);
        let expected = PagingCosts::default().major_fault * 700;
        assert_eq!(clock.now(), expected);
        assert!(s.finish().is_none());
    }

    #[test]
    fn repeated_touches_fault_once() {
        let clock = Clock::new();
        let mut s = ReapSession::start(
            &clock,
            ReapMode::Off,
            PagingCosts::default(),
            WorkingSet::new(),
        );
        s.touch(&clock, 42);
        s.touch(&clock, 42);
        s.touch(&clock, 42);
        assert_eq!(s.major_faults(), 1);
    }

    #[test]
    fn record_mode_captures_the_working_set() {
        let clock = Clock::new();
        let mut s = ReapSession::start(
            &clock,
            ReapMode::Record,
            PagingCosts::default(),
            WorkingSet::new(),
        );
        touch_workload(&mut s, &clock);
        let ws = s.finish().expect("record mode returns a set");
        assert_eq!(ws.len(), 700);
        assert!(ws.contains(0) && ws.contains(10_399) && ws.contains(40_099));
        assert!(!ws.contains(500));
    }

    #[test]
    fn prefetch_is_much_cheaper_than_faulting() {
        let costs = PagingCosts::default();

        // Record pass.
        let clock = Clock::new();
        let mut rec =
            ReapSession::start(&clock, ReapMode::Record, costs.clone(), WorkingSet::new());
        touch_workload(&mut rec, &clock);
        let faulting_time = clock.now();
        let ws = rec.finish().expect("working set");

        // Prefetch pass: same accesses, no major faults.
        let clock2 = Clock::new();
        let mut pre = ReapSession::start(&clock2, ReapMode::Prefetch, costs, ws);
        let after_prefetch = clock2.now();
        touch_workload(&mut pre, &clock2);
        assert_eq!(pre.major_faults(), 0, "all accesses hit the prefetched set");
        assert_eq!(clock2.now(), after_prefetch, "no further paging cost");
        assert_eq!(pre.prefetched_pages(), 700);
        // REAP's headline effect: bulk sequential read ≪ random faults.
        assert!(
            clock2.now().as_nanos() * 5 < faulting_time.as_nanos(),
            "prefetch {} vs faulting {}",
            clock2.now(),
            faulting_time
        );
    }

    #[test]
    fn accesses_outside_the_recorded_set_still_fault() {
        let clock = Clock::new();
        let mut ws = WorkingSet::new();
        ws.record_range(0, 10);
        let mut s = ReapSession::start(&clock, ReapMode::Prefetch, PagingCosts::default(), ws);
        s.touch(&clock, 5); // In set: free.
        assert_eq!(s.major_faults(), 0);
        s.touch(&clock, 99_999); // Outside: major fault.
        assert_eq!(s.major_faults(), 1);
    }

    #[test]
    fn prefetch_read_fault_aborts_after_issue_cost() {
        use fireworks_sim::fault::{self, FaultInjector, FaultPlan};
        let clock = Clock::new();
        let costs = PagingCosts::default();
        let inj = fault::shared(FaultInjector::new(
            FaultPlan::new(5).nth(FaultSite::SnapshotRead, 1),
        ));
        let mut ws = WorkingSet::new();
        ws.record_range(0, 100);
        let err = ReapSession::start_with_faults(
            &clock,
            ReapMode::Prefetch,
            costs.clone(),
            ws.clone(),
            Some(&inj),
            None,
        )
        .expect_err("bulk read fails");
        assert_eq!(err, VmError::SnapshotRead);
        // Only the fixed issue cost was charged, not the per-page read.
        assert_eq!(clock.now(), costs.prefetch_base);
        // The retry succeeds (nth-trigger already fired).
        let s =
            ReapSession::start_with_faults(&clock, ReapMode::Prefetch, costs, ws, Some(&inj), None)
                .expect("retry succeeds");
        assert_eq!(s.prefetched_pages(), 100);
    }

    #[test]
    fn prefetch_detects_corrupt_working_set_pages() {
        use fireworks_guestmem::{AddressSpace, HostMemory, PAGE_SIZE};
        let clock = Clock::new();
        let host = HostMemory::new(clock.clone(), 1 << 30, 60);
        let mut space = AddressSpace::new(host.clone(), 1 << 20);
        space.write(0, &[7u8; 4 * PAGE_SIZE]);
        let snap = SnapshotFile::capture(&space, Vec::new());
        snap.corrupt_page(2); // Guest page 2 — inside the working set.

        let mut ws = WorkingSet::new();
        ws.record_range(0, 4);
        let err = ReapSession::start_with_faults(
            &clock,
            ReapMode::Prefetch,
            PagingCosts::default(),
            ws,
            None,
            Some(&snap),
        )
        .expect_err("prefetch reads the bad page");
        assert!(matches!(err, VmError::Corrupt(detail) if detail.page == 2));

        // Pages outside the snapshot or outside the damage verify fine.
        let mut clean = WorkingSet::new();
        clean.record(0);
        clean.record(50_000); // Not in the snapshot: nothing to verify.
        ReapSession::start_with_faults(
            &clock,
            ReapMode::Prefetch,
            PagingCosts::default(),
            clean,
            None,
            Some(&snap),
        )
        .expect("clean pages prefetch");
    }
}
