//! Typed failures of microVM lifecycle operations.

use std::fmt;

use fireworks_guestmem::SnapshotIntegrityError;

/// A microVM lifecycle operation failed.
///
/// Boot and restore are the platform's single points of failure under
/// load: the snapshot file can be unreadable, its pages can have rotted,
/// and the VMM itself can crash mid-operation. Each case is typed so the
/// platform can pick the right recovery (retry, quarantine + rebuild, or
/// give up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// The VMM crashed while booting the guest; the VM is left in its
    /// pre-boot state and may be booted again.
    BootCrash,
    /// The VMM crashed while restoring a snapshot; no VM was produced.
    RestoreCrash,
    /// An I/O error occurred reading the snapshot file (transient; a
    /// retry may succeed).
    SnapshotRead,
    /// The snapshot failed checksum verification (persistent; the
    /// snapshot must be rebuilt).
    Corrupt(SnapshotIntegrityError),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BootCrash => write!(f, "VM crashed during boot"),
            VmError::RestoreCrash => write!(f, "VM crashed during snapshot restore"),
            VmError::SnapshotRead => write!(f, "I/O error reading snapshot file"),
            VmError::Corrupt(e) => write!(f, "snapshot integrity failure: {e}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<SnapshotIntegrityError> for VmError {
    fn from(e: SnapshotIntegrityError) -> Self {
        VmError::Corrupt(e)
    }
}

impl VmError {
    /// Whether a retry of the same operation can plausibly succeed
    /// (transient faults) — corruption never heals on its own.
    pub fn is_transient(&self) -> bool {
        !matches!(self, VmError::Corrupt(_))
    }
}
