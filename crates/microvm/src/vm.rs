//! One microVM: guest memory + runtime + metadata.

use std::collections::BTreeMap;
use std::rc::Rc;

use fireworks_guestmem::{AddressSpace, SnapshotFile};
use fireworks_runtime::{GuestRuntime, MemoryModel, RuntimeSnapshot};
use fireworks_sim::Nanos;

/// Guest memory reserved for the kernel and guest userspace after boot.
pub const OS_IMAGE_BYTES: u64 = 72 << 20;

/// MicroVM resource configuration. The default matches the paper's §5.1
/// setup: one vCPU, 512 MiB memory, 2 GiB disk.
#[derive(Debug, Clone, Copy)]
pub struct MicroVmConfig {
    /// Number of virtual CPUs.
    pub vcpus: u8,
    /// Guest memory size in bytes.
    pub mem_bytes: u64,
    /// Virtual disk size in bytes.
    pub disk_bytes: u64,
}

impl Default for MicroVmConfig {
    fn default() -> Self {
        MicroVmConfig {
            vcpus: 1,
            mem_bytes: 512 << 20,
            disk_bytes: 2 << 30,
        }
    }
}

/// Lifecycle state of a microVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// VMM configured, guest not booted.
    Created,
    /// Guest OS booted (or snapshot restored) and executing.
    Running,
    /// Paused in memory (the Firecracker warm-start pool state).
    Paused,
}

/// Bytes of each runtime region already materialised in guest memory,
/// used to dirty only *growth* after restores.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RegionExtents {
    pub os: u64,
    pub runtime: u64,
    pub code: u64,
    pub jit: u64,
    pub heap: u64,
    pub first_run: u64,
    pub churn: u64,
}

/// A microVM instance.
#[derive(Debug)]
pub struct MicroVm {
    pub(crate) id: u64,
    pub(crate) config: MicroVmConfig,
    pub(crate) state: VmState,
    pub(crate) space: AddressSpace,
    pub(crate) runtime: Option<GuestRuntime>,
    pub(crate) mmds: BTreeMap<String, String>,
    pub(crate) extents: RegionExtents,
    pub(crate) memmodel: MemoryModel,
    /// Total virtual time this VM spent in boot stages (for breakdowns).
    pub(crate) boot_time: Nanos,
    /// Synthetic extra guest ops from [`MicroVm::age_ops`].
    pub(crate) aged_ops: u64,
}

impl MicroVm {
    /// The VM's host-assigned id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// The VM's resource configuration.
    pub fn config(&self) -> MicroVmConfig {
        self.config
    }

    /// Virtual time spent booting this VM (zero for restored VMs).
    pub fn boot_time(&self) -> Nanos {
        self.boot_time
    }

    /// The guest runtime, if one has been launched or restored.
    pub fn runtime(&self) -> Option<&GuestRuntime> {
        self.runtime.as_ref()
    }

    /// Mutable access to the guest runtime.
    pub fn runtime_mut(&mut self) -> Option<&mut GuestRuntime> {
        self.runtime.as_mut()
    }

    /// Sets an MMDS key (host side, e.g. the instance id before resume).
    pub fn mmds_set(&mut self, key: &str, value: &str) {
        self.mmds.insert(key.to_string(), value.to_string());
    }

    /// Reads an MMDS key (guest side). The manager charges the lookup.
    pub fn mmds_get_raw(&self, key: &str) -> Option<&str> {
        self.mmds.get(key).map(String::as_str)
    }

    /// Guest-physical resident set size.
    pub fn rss_bytes(&self) -> u64 {
        self.space.rss_bytes()
    }

    /// Guest-physical proportional set size (what `smem` reports).
    pub fn pss_bytes(&self) -> u64 {
        self.space.pss_bytes()
    }

    /// Shared/private split of the resident set (CoW sharing with the
    /// snapshot file and sibling clones vs privately dirtied pages).
    pub fn sharing_stats(&self) -> fireworks_guestmem::SharingStats {
        self.space.sharing_stats()
    }

    /// Extends guest-memory regions to the runtime's current sizes,
    /// dirtying only growth beyond what is already materialised. Call
    /// after execution slices so JIT-code and heap growth is accounted.
    pub fn sync_runtime_memory(&mut self) {
        if self.extents.os < OS_IMAGE_BYTES {
            self.space.touch_dirty(0, OS_IMAGE_BYTES);
            self.extents.os = OS_IMAGE_BYTES;
        }
        let Some(rt) = &self.runtime else { return };
        let p = rt.profile();
        let grow = |space: &mut AddressSpace, base: u64, old: u64, new: u64| {
            if new > old {
                space.touch_dirty(base + old, new - old);
            }
            new.max(old)
        };
        self.extents.runtime = grow(
            &mut self.space,
            MemoryModel::RUNTIME_BASE,
            self.extents.runtime,
            p.base_image_bytes,
        );
        let code_bytes = p.code_bytes_per_op * rt.program().total_ops() as u64;
        self.extents.code = grow(
            &mut self.space,
            MemoryModel::APP_CODE_BASE,
            self.extents.code,
            code_bytes,
        );
        self.extents.jit = grow(
            &mut self.space,
            MemoryModel::JIT_CODE_BASE,
            self.extents.jit,
            rt.jit_code_bytes(),
        );
        self.extents.heap = grow(
            &mut self.space,
            MemoryModel::HEAP_BASE,
            self.extents.heap,
            rt.heap_bytes().max(1 << 20),
        );
        if rt.first_run_done() {
            self.extents.first_run = grow(
                &mut self.space,
                MemoryModel::FIRST_RUN_BASE,
                self.extents.first_run,
                p.first_run_state_bytes,
            );
        }
        self.extents.churn = grow(
            &mut self.space,
            MemoryModel::CHURN_BASE,
            self.extents.churn,
            MemoryModel::churn_bytes(p, rt.ops_since_reset()),
        );
    }

    /// The page ranges (first page, count) one invocation reads or
    /// writes: the loaded code, JIT cache, heap, execution state, and a
    /// fraction of the runtime image and OS — the working set REAP-style
    /// prefetching targets. Whole pages, derived from current extents.
    pub fn working_set_ranges(&self) -> Vec<(usize, usize)> {
        use fireworks_guestmem::PAGE_SIZE;
        let page = |addr: u64| (addr as usize) / PAGE_SIZE;
        let pages = |bytes: u64| (bytes as usize).div_ceil(PAGE_SIZE);
        let mut ranges = Vec::new();
        // A slice of the OS (syscall paths, page cache metadata).
        ranges.push((0, pages(OS_IMAGE_BYTES / 10)));
        // A fraction of the runtime image (interpreter hot paths, stdlib).
        if self.extents.runtime > 0 {
            ranges.push((
                page(MemoryModel::RUNTIME_BASE),
                pages(self.extents.runtime / 4),
            ));
        }
        // All loaded code, JIT code, and heap; the full exec-state region.
        for (base, extent) in [
            (MemoryModel::APP_CODE_BASE, self.extents.code),
            (MemoryModel::JIT_CODE_BASE, self.extents.jit),
            (MemoryModel::HEAP_BASE, self.extents.heap),
            (MemoryModel::FIRST_RUN_BASE, self.extents.first_run),
        ] {
            if extent > 0 {
                ranges.push((page(base), pages(extent)));
            }
        }
        if let Some(rt) = &self.runtime {
            ranges.push((
                page(MemoryModel::EXEC_STATE_BASE),
                pages(rt.profile().exec_state_bytes),
            ));
        }
        ranges
    }

    /// Ages the VM by `extra_ops` guest ops of continued service, dirtying
    /// the GC-churn arena accordingly. Used by long-running density
    /// experiments (paper Fig. 10 runs every microVM until the host
    /// swaps) without paying the real-time cost of executing those ops.
    pub fn age_ops(&mut self, extra_ops: u64) {
        let Some(rt) = &self.runtime else { return };
        let total = rt
            .ops_since_reset()
            .saturating_add(self.aged_ops)
            .saturating_add(extra_ops);
        self.aged_ops = self.aged_ops.saturating_add(extra_ops);
        let churn = MemoryModel::churn_bytes(rt.profile(), total);
        if churn > 0 {
            self.space.touch_dirty(MemoryModel::CHURN_BASE, churn);
            self.extents.churn = self.extents.churn.max(churn);
        }
    }

    /// Dirties the per-invocation write set: execution state, a heap
    /// fraction, first-run state allocated in this instance, and the GC
    /// churn accumulated by this instance's execution (which rewrites —
    /// and therefore CoW-copies — arena pages that came shared out of a
    /// snapshot). Call once per invocation.
    pub fn dirty_invocation(&mut self) {
        let Some(rt) = &self.runtime else { return };
        let model = self.memmodel;
        let p = rt.profile();
        let exec_bytes = p.exec_state_bytes;
        let heap = rt
            .heap_bytes()
            .max(1 << 20)
            .min(self.extents.heap.max(1 << 20));
        let first_run = rt.first_run_local().then_some(p.first_run_state_bytes);
        let churn = MemoryModel::churn_bytes(p, rt.ops_since_reset());
        self.space
            .touch_dirty(MemoryModel::EXEC_STATE_BASE, exec_bytes);
        let dirty = (heap as f64 * model.heap_dirty_fraction) as u64;
        if dirty > 0 {
            self.space.touch_dirty(MemoryModel::HEAP_BASE, dirty);
        }
        if let Some(bytes) = first_run {
            self.space.touch_dirty(MemoryModel::FIRST_RUN_BASE, bytes);
            self.extents.first_run = self.extents.first_run.max(bytes);
        }
        if churn > 0 {
            self.space.touch_dirty(MemoryModel::CHURN_BASE, churn);
            self.extents.churn = self.extents.churn.max(churn);
        }
    }
}

/// A complete microVM snapshot: the memory file plus runtime state and
/// the VM configuration (Firecracker's `snapshot.mem` + `snapshot.json`).
#[derive(Debug)]
pub struct VmFullSnapshot {
    pub(crate) mem: SnapshotFile,
    pub(crate) runtime: Option<Rc<RuntimeSnapshot>>,
    pub(crate) config: MicroVmConfig,
    pub(crate) extents: RegionExtents,
    pub(crate) memmodel: MemoryModel,
}

impl VmFullSnapshot {
    /// The snapshot memory file, with its per-page checksums.
    pub fn mem(&self) -> &SnapshotFile {
        &self.mem
    }

    /// Guest pages stored in the snapshot memory file.
    pub fn pages(&self) -> usize {
        self.mem.pages()
    }

    /// On-disk size of the snapshot.
    pub fn file_bytes(&self) -> u64 {
        self.mem.file_bytes()
    }

    /// The runtime state captured in the snapshot, if any.
    pub fn runtime(&self) -> Option<&Rc<RuntimeSnapshot>> {
        self.runtime.as_ref()
    }

    /// Whether the captured runtime holds JIT-compiled code (i.e. this is
    /// a *post-JIT* snapshot rather than a plain OS snapshot).
    pub fn is_post_jit(&self) -> bool {
        self.runtime
            .as_ref()
            .map(|r| r.jit_code_ops() > 0)
            .unwrap_or(false)
    }

    /// The snapshot's host-agnostic metadata — everything except guest
    /// memory. A peer host that has reassembled the memory file from
    /// content-addressed chunks combines it with this template via
    /// [`VmFullSnapshot::from_template`] to obtain a restorable snapshot
    /// without ever running the source function.
    pub fn template(&self) -> SnapshotTemplate {
        SnapshotTemplate {
            runtime: self.runtime.clone(),
            config: self.config,
            extents: self.extents,
            memmodel: self.memmodel,
        }
    }

    /// Recombines a reassembled memory file with a snapshot's metadata
    /// template (the delta-fetch receive side).
    pub fn from_template(mem: SnapshotFile, template: &SnapshotTemplate) -> Self {
        VmFullSnapshot {
            mem,
            runtime: template.runtime.clone(),
            config: template.config,
            extents: template.extents,
            memmodel: template.memmodel,
        }
    }
}

/// The host-agnostic parts of a [`VmFullSnapshot`]: runtime state handle,
/// VM configuration, region extents, and memory model — but no guest
/// memory. Cheap to clone and safe to share across simulated hosts
/// (frame ids are host-local; none appear here), which makes it the
/// piece a cluster mesh publishes alongside a content-addressed
/// manifest.
#[derive(Debug, Clone)]
pub struct SnapshotTemplate {
    runtime: Option<Rc<RuntimeSnapshot>>,
    config: MicroVmConfig,
    extents: RegionExtents,
    memmodel: MemoryModel,
}
