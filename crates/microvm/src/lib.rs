//! A Firecracker-style microVM layer.
//!
//! [`VmManager`] creates, boots, pauses, resumes, snapshots, and restores
//! [`MicroVm`]s. A microVM couples:
//!
//! - a guest-physical [`fireworks_guestmem::AddressSpace`] whose pages are
//!   shared copy-on-write with snapshot files,
//! - a [`fireworks_runtime::GuestRuntime`] (language runtime + loaded
//!   function) whose regions are laid out in that address space,
//! - an MMDS-style metadata map, set from the host per instance (this is
//!   how restored clones learn their identity, paper §3.5/3.6).
//!
//! Boot charges the VMM-setup → kernel-boot → guest-init pipeline;
//! snapshot creation charges per resident page written; restore charges a
//! small fixed cost plus lazy page mapping — the asymmetry at the heart of
//! the paper's start-up results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod manager;
pub mod reap;
pub mod vm;

pub use error::VmError;
pub use manager::VmManager;
pub use reap::{PagingCosts, ReapMode, ReapSession, WorkingSet};
pub use vm::{MicroVm, MicroVmConfig, SnapshotTemplate, VmFullSnapshot, VmState};
