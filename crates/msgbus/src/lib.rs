//! A Kafka-style message bus (the paper's parameter passer substrate,
//! §3.6 and Fig. 3 line 23).
//!
//! Fireworks passes invocation arguments to restored microVMs through a
//! per-instance topic: the invoker *produces* the arguments before
//! resuming the VM, and the resumed guest *consumes* the latest record
//! (the paper shells out to `kafkacat -o -1 -c 1`). This crate provides
//! exactly those semantics as an append-only log per topic with offsets,
//! plus consumer groups for the platform's internal queues.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

use fireworks_sim::cost::BusCosts;
use fireworks_sim::Clock;

/// Message-bus errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// Topic does not exist.
    NoSuchTopic(String),
    /// Offset is past the end of the log.
    OffsetOutOfRange {
        /// The requested topic.
        topic: String,
        /// The requested offset.
        offset: u64,
        /// Current end of the log.
        end: u64,
    },
    /// The topic exists but holds no records yet.
    Empty(String),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::NoSuchTopic(t) => write!(f, "no such topic `{t}`"),
            BusError::OffsetOutOfRange { topic, offset, end } => {
                write!(f, "offset {offset} out of range for `{topic}` (end {end})")
            }
            BusError::Empty(t) => write!(f, "topic `{t}` is empty"),
        }
    }
}

impl std::error::Error for BusError {}

#[derive(Debug, Clone)]
struct Topic<T> {
    records: Vec<T>,
}

/// An append-only, offset-addressed message bus.
///
/// Generic over the record type so the platform can pass structured
/// values without a serialisation dependency; `approx_bytes` lets the
/// cost model account for payload size anyway.
///
/// # Examples
///
/// ```
/// use fireworks_msgbus::MessageBus;
/// use fireworks_sim::{Clock, cost::BusCosts};
///
/// let mut bus: MessageBus<String> = MessageBus::new(Clock::new(), BusCosts::default());
/// bus.create_topic("params-7");
/// bus.produce("params-7", "n=12".to_string(), 4);
/// let latest = bus.consume_latest("params-7", 4).expect("record");
/// assert_eq!(latest, "n=12");
/// ```
#[derive(Debug)]
pub struct MessageBus<T> {
    clock: Clock,
    costs: BusCosts,
    topics: HashMap<String, Topic<T>>,
    /// Committed offsets per (topic, group).
    groups: HashMap<(String, String), u64>,
}

impl<T: Clone> MessageBus<T> {
    /// Creates an empty bus.
    pub fn new(clock: Clock, costs: BusCosts) -> Self {
        MessageBus {
            clock,
            costs,
            topics: HashMap::new(),
            groups: HashMap::new(),
        }
    }

    /// Creates a topic (idempotent).
    pub fn create_topic(&mut self, name: &str) {
        if !self.topics.contains_key(name) {
            self.clock.advance(self.costs.topic_create);
            self.topics.insert(
                name.to_string(),
                Topic {
                    records: Vec::new(),
                },
            );
        }
    }

    /// Whether a topic exists.
    pub fn has_topic(&self, name: &str) -> bool {
        self.topics.contains_key(name)
    }

    /// Appends a record, creating the topic if needed; returns its offset.
    pub fn produce(&mut self, topic: &str, record: T, approx_bytes: u64) -> u64 {
        self.create_topic(topic);
        self.clock
            .advance(self.costs.produce + self.costs.per_kib * approx_bytes.div_ceil(1024));
        let t = self.topics.get_mut(topic).expect("created above");
        t.records.push(record);
        (t.records.len() - 1) as u64
    }

    /// Reads the record at `offset`.
    pub fn fetch(&self, topic: &str, offset: u64, approx_bytes: u64) -> Result<T, BusError> {
        let t = self
            .topics
            .get(topic)
            .ok_or_else(|| BusError::NoSuchTopic(topic.to_string()))?;
        let record =
            t.records
                .get(offset as usize)
                .cloned()
                .ok_or_else(|| BusError::OffsetOutOfRange {
                    topic: topic.to_string(),
                    offset,
                    end: t.records.len() as u64,
                })?;
        self.clock
            .advance(self.costs.consume + self.costs.per_kib * approx_bytes.div_ceil(1024));
        Ok(record)
    }

    /// Reads the most recent record — `kafkacat -o -1 -c 1` semantics,
    /// what a resumed Fireworks guest does to get its arguments.
    pub fn consume_latest(&self, topic: &str, approx_bytes: u64) -> Result<T, BusError> {
        let t = self
            .topics
            .get(topic)
            .ok_or_else(|| BusError::NoSuchTopic(topic.to_string()))?;
        let record = t
            .records
            .last()
            .cloned()
            .ok_or_else(|| BusError::Empty(topic.to_string()))?;
        self.clock
            .advance(self.costs.consume + self.costs.per_kib * approx_bytes.div_ceil(1024));
        Ok(record)
    }

    /// Consumes the next record for a consumer group, advancing the
    /// group's committed offset.
    pub fn consume_group(
        &mut self,
        topic: &str,
        group: &str,
        approx_bytes: u64,
    ) -> Result<(u64, T), BusError> {
        let key = (topic.to_string(), group.to_string());
        let offset = self.groups.get(&key).copied().unwrap_or(0);
        let record = self.fetch(topic, offset, approx_bytes)?;
        self.groups.insert(key, offset + 1);
        Ok((offset, record))
    }

    /// Number of records in a topic (0 for unknown topics).
    pub fn len(&self, topic: &str) -> u64 {
        self.topics
            .get(topic)
            .map(|t| t.records.len() as u64)
            .unwrap_or(0)
    }

    /// Whether a topic has no records (true for unknown topics).
    pub fn is_empty(&self, topic: &str) -> bool {
        self.len(topic) == 0
    }

    /// Deletes a topic and its group offsets.
    pub fn delete_topic(&mut self, topic: &str) {
        self.topics.remove(topic);
        self.groups.retain(|(t, _), _| t != topic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> MessageBus<i64> {
        MessageBus::new(Clock::new(), BusCosts::default())
    }

    #[test]
    fn produce_assigns_sequential_offsets() {
        let mut b = bus();
        assert_eq!(b.produce("t", 10, 8), 0);
        assert_eq!(b.produce("t", 20, 8), 1);
        assert_eq!(b.produce("t", 30, 8), 2);
        assert_eq!(b.len("t"), 3);
    }

    #[test]
    fn fetch_by_offset() {
        let mut b = bus();
        b.produce("t", 10, 8);
        b.produce("t", 20, 8);
        assert_eq!(b.fetch("t", 1, 8), Ok(20));
        assert!(matches!(
            b.fetch("t", 5, 8),
            Err(BusError::OffsetOutOfRange { end: 2, .. })
        ));
        assert!(matches!(b.fetch("x", 0, 8), Err(BusError::NoSuchTopic(_))));
    }

    #[test]
    fn consume_latest_gets_newest_record() {
        let mut b = bus();
        b.create_topic("params-3");
        assert!(matches!(
            b.consume_latest("params-3", 8),
            Err(BusError::Empty(_))
        ));
        b.produce("params-3", 1, 8);
        b.produce("params-3", 2, 8);
        assert_eq!(b.consume_latest("params-3", 8), Ok(2));
        // Reading the latest does not consume it.
        assert_eq!(b.consume_latest("params-3", 8), Ok(2));
    }

    #[test]
    fn consumer_groups_track_independent_offsets() {
        let mut b = bus();
        for v in [1, 2, 3] {
            b.produce("t", v, 8);
        }
        assert_eq!(b.consume_group("t", "a", 8), Ok((0, 1)));
        assert_eq!(b.consume_group("t", "a", 8), Ok((1, 2)));
        assert_eq!(b.consume_group("t", "b", 8), Ok((0, 1)));
        assert_eq!(b.consume_group("t", "a", 8), Ok((2, 3)));
        assert!(b.consume_group("t", "a", 8).is_err(), "log exhausted");
    }

    #[test]
    fn per_instance_topics_are_isolated() {
        // Two clones resumed from one snapshot read different topics keyed
        // by their MMDS instance id — the paper's argument-passing fix.
        let mut b = bus();
        b.produce("params-vm1", 111, 8);
        b.produce("params-vm2", 222, 8);
        assert_eq!(b.consume_latest("params-vm1", 8), Ok(111));
        assert_eq!(b.consume_latest("params-vm2", 8), Ok(222));
    }

    #[test]
    fn bus_operations_charge_time() {
        let clock = Clock::new();
        let mut b: MessageBus<i64> = MessageBus::new(clock.clone(), BusCosts::default());
        let t0 = clock.now();
        b.produce("t", 1, 2048);
        let after_produce = clock.now();
        assert!(after_produce > t0);
        b.consume_latest("t", 2048).expect("record");
        assert!(clock.now() > after_produce);
    }

    #[test]
    fn delete_topic_removes_records_and_offsets() {
        let mut b = bus();
        b.produce("t", 1, 8);
        b.consume_group("t", "g", 8).expect("consumes");
        b.delete_topic("t");
        assert!(b.is_empty("t"));
        assert!(!b.has_topic("t"));
        // Group offset was reset too.
        b.produce("t", 9, 8);
        assert_eq!(b.consume_group("t", "g", 8), Ok((0, 9)));
    }
}
