//! Property tests: the message bus behaves like a map of append-only
//! vectors.

use fireworks_msgbus::{BusError, MessageBus};
use fireworks_sim::cost::BusCosts;
use fireworks_sim::Clock;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Produce { topic: u8, value: i64 },
    Fetch { topic: u8, offset: u64 },
    Latest { topic: u8 },
    GroupConsume { topic: u8, group: u8 },
    Delete { topic: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..4, any::<i64>()).prop_map(|(topic, value)| Op::Produce { topic, value }),
        2 => (0u8..4, 0u64..12).prop_map(|(topic, offset)| Op::Fetch { topic, offset }),
        2 => (0u8..4).prop_map(|topic| Op::Latest { topic }),
        2 => (0u8..4, 0u8..2).prop_map(|(topic, group)| Op::GroupConsume { topic, group }),
        1 => (0u8..4).prop_map(|topic| Op::Delete { topic }),
    ]
}

proptest! {
    /// The bus agrees with a reference model (Vec per topic + offset map)
    /// on every operation outcome.
    #[test]
    fn bus_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut bus: MessageBus<i64> = MessageBus::new(Clock::new(), BusCosts::default());
        let mut model: std::collections::HashMap<String, Vec<i64>> = Default::default();
        let mut offsets: std::collections::HashMap<(String, String), usize> = Default::default();

        for op in ops {
            match op {
                Op::Produce { topic, value } => {
                    let t = format!("t{topic}");
                    let offset = bus.produce(&t, value, 8);
                    model.entry(t.clone()).or_default().push(value);
                    prop_assert_eq!(offset as usize, model[&t].len() - 1);
                }
                Op::Fetch { topic, offset } => {
                    let t = format!("t{topic}");
                    let got = bus.fetch(&t, offset, 8);
                    match model.get(&t).and_then(|v| v.get(offset as usize)) {
                        Some(v) => prop_assert_eq!(got, Ok(*v)),
                        None => prop_assert!(got.is_err()),
                    }
                }
                Op::Latest { topic } => {
                    let t = format!("t{topic}");
                    let got = bus.consume_latest(&t, 8);
                    match model.get(&t).and_then(|v| v.last()) {
                        Some(v) => prop_assert_eq!(got, Ok(*v)),
                        None => prop_assert!(got.is_err()),
                    }
                }
                Op::GroupConsume { topic, group } => {
                    let t = format!("t{topic}");
                    let g = format!("g{group}");
                    let key = (t.clone(), g.clone());
                    let pos = offsets.get(&key).copied().unwrap_or(0);
                    let got = bus.consume_group(&t, &g, 8);
                    match model.get(&t).and_then(|v| v.get(pos)) {
                        Some(v) => {
                            prop_assert_eq!(got, Ok((pos as u64, *v)));
                            offsets.insert(key, pos + 1);
                        }
                        None => prop_assert!(got.is_err()),
                    }
                }
                Op::Delete { topic } => {
                    let t = format!("t{topic}");
                    bus.delete_topic(&t);
                    model.remove(&t);
                    offsets.retain(|(mt, _), _| *mt != t);
                }
            }
        }
        // Final lengths agree.
        for (t, v) in &model {
            prop_assert_eq!(bus.len(t), v.len() as u64);
        }
    }

    /// Per-instance parameter topics never interfere.
    #[test]
    fn per_instance_isolation(records in proptest::collection::vec((0u8..8, any::<i64>()), 1..60)) {
        let mut bus: MessageBus<i64> = MessageBus::new(Clock::new(), BusCosts::default());
        let mut last: std::collections::HashMap<u8, i64> = Default::default();
        for (instance, value) in &records {
            bus.produce(&format!("params-vm-{instance}"), *value, 8);
            last.insert(*instance, *value);
        }
        for (instance, expected) in last {
            prop_assert_eq!(
                bus.consume_latest(&format!("params-vm-{instance}"), 8),
                Ok(expected)
            );
        }
        prop_assert!(matches!(
            bus.consume_latest("params-vm-unknown", 8),
            Err(BusError::NoSuchTopic(_))
        ));
    }
}
