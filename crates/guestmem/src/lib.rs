//! Guest physical memory for the Fireworks simulation.
//!
//! This crate reproduces the memory mechanism the paper's density results
//! (Figs. 10 and 12) depend on: microVM snapshots are mapped `MAP_PRIVATE`,
//! so all clones share guest-physical frames until a guest write triggers a
//! copy-on-write fault, and Linux's *proportional set size* (PSS) charges a
//! frame shared by `N` mappers as `1/N` to each.
//!
//! The pieces:
//!
//! - [`HostMemory`]: the host frame table with reference-counted 4 KiB
//!   frames, CoW, and a `vm.swappiness`-style swap-onset model.
//! - [`AddressSpace`]: one microVM's guest-physical address space — a page
//!   table over host frames with real byte contents where written.
//! - [`SnapshotFile`]: a pinned set of frames plus an opaque device-state
//!   blob; restoring maps every frame shared into a fresh address space.
//! - [`SnapshotManifest`]: a content-addressed chunk list ([`ChunkHash`]
//!   over fixed page runs) identifying a snapshot by [`SnapshotId`], the
//!   unit of cluster-wide dedup and delta transfer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod host;
pub mod snapshot;

pub use addr::{AddressSpace, SharingStats};
pub use host::{FrameId, HostMemory, MemoryStats, PAGE_SIZE};
pub use snapshot::{
    ChunkHash, ChunkRef, SnapshotFile, SnapshotId, SnapshotIntegrityError, SnapshotManifest,
};
