//! A guest-physical address space: a page table over host frames.

use crate::host::{FrameId, HostMemory, PAGE_SIZE};

/// One microVM's guest-physical memory.
///
/// Pages are materialised lazily: reading an unmapped page returns zeroes
/// without allocating, writing allocates (zero-fill) or copies (CoW) as
/// needed. Frames restored from a snapshot are mapped shared and become
/// private on the first write — exactly the `MAP_PRIVATE` behaviour the
/// paper relies on for memory efficiency.
///
/// # Examples
///
/// ```
/// use fireworks_guestmem::{AddressSpace, HostMemory};
/// use fireworks_sim::Clock;
///
/// let host = HostMemory::new(Clock::new(), 1 << 30, 60);
/// let mut vm = AddressSpace::new(host, 1 << 20);
/// vm.write(4096, b"hello");
/// let mut buf = [0u8; 5];
/// vm.read(4096, &mut buf);
/// assert_eq!(&buf, b"hello");
/// ```
#[derive(Debug)]
pub struct AddressSpace {
    host: HostMemory,
    slots: Vec<Option<FrameId>>,
}

impl AddressSpace {
    /// Creates an address space of `size_bytes` (rounded up to whole
    /// pages), fully unmapped.
    pub fn new(host: HostMemory, size_bytes: u64) -> Self {
        let pages = (size_bytes as usize).div_ceil(PAGE_SIZE);
        AddressSpace {
            host,
            slots: vec![None; pages],
        }
    }

    /// Size of the address space in pages.
    pub fn size_pages(&self) -> usize {
        self.slots.len()
    }

    /// Size of the address space in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.slots.len() * PAGE_SIZE) as u64
    }

    /// The host this space allocates from.
    pub fn host(&self) -> &HostMemory {
        &self.host
    }

    fn check_range(&self, addr: u64, len: usize) {
        let end = addr
            .checked_add(len as u64)
            .expect("address range overflows");
        assert!(
            end <= self.size_bytes(),
            "access [{addr:#x}, {end:#x}) beyond guest memory of {} bytes",
            self.size_bytes()
        );
    }

    /// Returns a writable (private) frame for `page`, allocating or
    /// CoW-copying as needed.
    fn frame_for_write(&mut self, page: usize) -> FrameId {
        match self.slots[page] {
            None => {
                let f = self.host.alloc_zero();
                self.slots[page] = Some(f);
                f
            }
            Some(f) => {
                let g = self.host.prepare_write(f);
                self.slots[page] = Some(g);
                g
            }
        }
    }

    /// Writes bytes at a guest-physical address, faulting pages as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the address space.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) {
        self.check_range(addr, bytes.len());
        let mut addr = addr as usize;
        let mut rest = bytes;
        while !rest.is_empty() {
            let page = addr / PAGE_SIZE;
            let offset = addr % PAGE_SIZE;
            let take = rest.len().min(PAGE_SIZE - offset);
            let frame = self.frame_for_write(page);
            self.host.write_frame(frame, offset, &rest[..take]);
            addr += take;
            rest = &rest[take..];
        }
    }

    /// Reads bytes at a guest-physical address. Unmapped pages read as
    /// zeroes.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the address space.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        self.check_range(addr, buf.len());
        let mut addr = addr as usize;
        let mut rest: &mut [u8] = buf;
        while !rest.is_empty() {
            let page = addr / PAGE_SIZE;
            let offset = addr % PAGE_SIZE;
            let take = rest.len().min(PAGE_SIZE - offset);
            let (head, tail) = rest.split_at_mut(take);
            match self.slots[page] {
                Some(frame) => self.host.read_frame(frame, offset, head),
                None => head.fill(0),
            }
            addr += take;
            rest = tail;
        }
    }

    /// Dirties every page overlapping `[addr, addr + len)` without writing
    /// specific byte contents (accounting-only write, used to model heap
    /// regions whose exact bytes don't matter).
    pub fn touch_dirty(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.check_range(addr, len as usize);
        let first = (addr as usize) / PAGE_SIZE;
        let last = ((addr + len - 1) as usize) / PAGE_SIZE;
        for page in first..=last {
            let _ = self.frame_for_write(page);
        }
    }

    /// Maps `frame` shared at `page`, replacing any existing mapping. Used
    /// by snapshot restore. Takes a new reference on the frame.
    pub fn map_shared(&mut self, page: usize, frame: FrameId) {
        assert!(page < self.slots.len(), "map beyond guest memory");
        if let Some(old) = self.slots[page] {
            self.host.release(old);
        }
        self.host.retain(frame);
        self.slots[page] = Some(frame);
    }

    /// Iterates `(page_index, frame)` over mapped pages.
    pub fn mapped(&self) -> impl Iterator<Item = (usize, FrameId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|f| (i, f)))
    }

    /// Number of resident (mapped) pages.
    pub fn resident_pages(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Resident set size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        (self.resident_pages() * PAGE_SIZE) as u64
    }

    /// Proportional set size in bytes: each mapped frame contributes
    /// `PAGE_SIZE / mappers`, as reported by Linux `smem` (paper §5.4).
    pub fn pss_bytes(&self) -> u64 {
        let mut pss = 0.0f64;
        for (_, frame) in self.mapped() {
            let mappers = self.host.mappers(frame).max(1);
            pss += PAGE_SIZE as f64 / f64::from(mappers);
        }
        pss.round() as u64
    }

    /// Splits the resident set into CoW-shared and private pages, the
    /// two terms PSS proportions between (Fig. 11's sharing story).
    pub fn sharing_stats(&self) -> SharingStats {
        let mut stats = SharingStats::default();
        for (_, frame) in self.mapped() {
            if self.host.mappers(frame) > 1 {
                stats.shared_pages += 1;
            } else {
                stats.private_pages += 1;
            }
        }
        stats
    }
}

/// Resident-page sharing split for one address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Resident pages whose frame is mapped by more than one space.
    pub shared_pages: usize,
    /// Resident pages mapped only here (allocated or CoW-copied).
    pub private_pages: usize,
}

impl SharingStats {
    /// Total resident pages.
    pub fn resident_pages(&self) -> usize {
        self.shared_pages + self.private_pages
    }
}

impl Drop for AddressSpace {
    fn drop(&mut self) {
        for slot in self.slots.iter().flatten() {
            self.host.release(*slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_sim::Clock;

    fn host() -> HostMemory {
        HostMemory::new(Clock::new(), 1 << 30, 60)
    }

    #[test]
    fn write_read_round_trip_across_pages() {
        let mut vm = AddressSpace::new(host(), 4 * PAGE_SIZE as u64);
        let data: Vec<u8> = (0..PAGE_SIZE + 100).map(|i| (i % 251) as u8).collect();
        let addr = PAGE_SIZE as u64 - 50;
        vm.write(addr, &data);
        let mut buf = vec![0u8; data.len()];
        vm.read(addr, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn unmapped_reads_are_zero_and_allocate_nothing() {
        let h = host();
        let vm = AddressSpace::new(h.clone(), 1 << 20);
        let mut buf = [9u8; 64];
        vm.read(12345, &mut buf);
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(h.live_frames(), 0);
    }

    #[test]
    fn touch_dirty_allocates_whole_pages() {
        let h = host();
        let mut vm = AddressSpace::new(h.clone(), 1 << 20);
        vm.touch_dirty(100, 2 * PAGE_SIZE as u64);
        // Touch spans pages 0..=2 (starts mid-page).
        assert_eq!(vm.resident_pages(), 3);
        vm.touch_dirty(0, 0);
        assert_eq!(vm.resident_pages(), 3);
    }

    #[test]
    fn drop_releases_all_frames() {
        let h = host();
        {
            let mut vm = AddressSpace::new(h.clone(), 1 << 20);
            vm.touch_dirty(0, 10 * PAGE_SIZE as u64);
            assert_eq!(h.live_frames(), 10);
        }
        assert_eq!(h.live_frames(), 0);
    }

    #[test]
    fn shared_mapping_cow_on_write() {
        let h = host();
        let mut a = AddressSpace::new(h.clone(), 1 << 20);
        a.write(0, b"original");
        let frame = a.mapped().next().expect("mapped").1;

        let mut b = AddressSpace::new(h.clone(), 1 << 20);
        b.map_shared(0, frame);
        assert_eq!(h.mappers(frame), 2);
        assert_eq!(h.live_frames(), 1);

        // Writing in the clone must not change the original.
        b.write(0, b"mutated!");
        let mut buf = [0u8; 8];
        a.read(0, &mut buf);
        assert_eq!(&buf, b"original");
        b.read(0, &mut buf);
        assert_eq!(&buf, b"mutated!");
        assert_eq!(h.live_frames(), 2);
    }

    #[test]
    fn pss_divides_shared_frames() {
        let h = host();
        let mut a = AddressSpace::new(h.clone(), 1 << 20);
        a.touch_dirty(0, 4 * PAGE_SIZE as u64);
        let frames: Vec<(usize, FrameId)> = a.mapped().collect();

        let mut b = AddressSpace::new(h.clone(), 1 << 20);
        for (page, frame) in &frames {
            b.map_shared(*page, *frame);
        }
        // 4 pages shared by 2 mappers: PSS = 2 pages each; RSS = 4 pages.
        assert_eq!(a.pss_bytes(), 2 * PAGE_SIZE as u64);
        assert_eq!(b.pss_bytes(), 2 * PAGE_SIZE as u64);
        assert_eq!(a.rss_bytes(), 4 * PAGE_SIZE as u64);

        // After b dirties one page its PSS grows by half a page (one page
        // private, three shared by 2).
        b.write(0, b"x");
        assert_eq!(b.pss_bytes(), PAGE_SIZE as u64 + 3 * PAGE_SIZE as u64 / 2);
        assert_eq!(
            b.sharing_stats(),
            SharingStats {
                shared_pages: 3,
                private_pages: 1
            }
        );
        assert_eq!(b.sharing_stats().resident_pages(), 4);
        // a still shares 3 frames with b; the 4th is now private to a.
        assert_eq!(a.sharing_stats().shared_pages, 3);
    }

    #[test]
    #[should_panic(expected = "beyond guest memory")]
    fn out_of_range_write_panics() {
        let mut vm = AddressSpace::new(host(), PAGE_SIZE as u64);
        vm.write(PAGE_SIZE as u64 - 1, b"ab");
    }

    #[test]
    fn map_shared_replaces_existing_mapping() {
        let h = host();
        let mut a = AddressSpace::new(h.clone(), 1 << 20);
        a.write(0, b"one");
        let f1 = a.mapped().next().expect("mapped").1;
        h.pin(f1); // Keep it alive like a snapshot file would.

        let mut b = AddressSpace::new(h.clone(), 1 << 20);
        b.write(0, b"two");
        b.map_shared(0, f1);
        let mut buf = [0u8; 3];
        b.read(0, &mut buf);
        assert_eq!(&buf, b"one");
        // b's private frame was released: f1 (shared ×2 + pin) + a's... a
        // and b both map f1, so exactly one live frame remains.
        assert_eq!(h.live_frames(), 1);
        h.unpin(f1);
    }
}
