//! The host frame table: reference-counted frames, CoW, swap onset.

use std::cell::RefCell;
use std::num::NonZeroU32;
use std::rc::Rc;

use fireworks_sim::cost::MemCosts;
use fireworks_sim::Clock;

/// Size of one guest-physical page / host frame in bytes.
pub const PAGE_SIZE: usize = 4096;

/// FNV-1a over `bytes`.
const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    h
}

/// FNV-1a of an all-zero page: the checksum of every frame that was only
/// touched for accounting (no data write), precomputed so checksumming a
/// mostly-untouched VM image costs O(frames), not O(bytes).
const ZERO_PAGE_FNV: u64 = fnv1a(&[0u8; PAGE_SIZE]);

/// Identifier of a host frame. Non-zero so `Option<FrameId>` is pointer
/// sized in page tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameId(NonZeroU32);

impl FrameId {
    fn index(self) -> usize {
        (self.0.get() - 1) as usize
    }

    fn from_index(i: usize) -> FrameId {
        // Frame table indices are bounded far below u32::MAX in practice;
        // the +1 keeps zero free for the niche.
        FrameId(NonZeroU32::new((i + 1) as u32).expect("index + 1 is non-zero"))
    }
}

#[derive(Debug)]
struct FrameEntry {
    /// Total owners: address-space mappings plus snapshot-file pins.
    refs: u32,
    /// How many of `refs` are snapshot-file pins (excluded from PSS).
    pins: u32,
    /// Byte contents, allocated lazily on the first data write. Frames
    /// touched only for accounting read back as zeroes.
    data: Option<Box<[u8]>>,
}

#[derive(Debug)]
struct HostInner {
    frames: Vec<Option<FrameEntry>>,
    free: Vec<usize>,
    live_frames: usize,
    ram_bytes: u64,
    swappiness: f64,
    cow_faults: u64,
    zero_fills: u64,
}

/// The host's physical memory: a frame table shared by all address spaces
/// and snapshot files of one simulated machine.
///
/// Clones share the same underlying table (like [`Clock`]).
///
/// # Examples
///
/// ```
/// use fireworks_guestmem::{HostMemory, PAGE_SIZE};
/// use fireworks_sim::Clock;
///
/// let host = HostMemory::new(Clock::new(), 1 << 30, 60);
/// let f = host.alloc_zero();
/// host.retain(f);
/// assert_eq!(host.mappers(f), 2);
/// // Writing through a shared frame copies it.
/// let f2 = host.prepare_write(f);
/// assert_ne!(f, f2);
/// ```
#[derive(Debug, Clone)]
pub struct HostMemory {
    inner: Rc<RefCell<HostInner>>,
    clock: Clock,
    costs: Rc<MemCosts>,
}

impl HostMemory {
    /// Creates a host with `ram_bytes` of physical memory and a Linux-style
    /// `swappiness` (0–100): swapping begins once used memory exceeds
    /// `swappiness`% of RAM, matching the paper's Fig. 10 methodology
    /// (`vm.swappiness = 60`).
    pub fn new(clock: Clock, ram_bytes: u64, swappiness: u8) -> Self {
        Self::with_costs(clock, ram_bytes, swappiness, MemCosts::default())
    }

    /// Like [`HostMemory::new`] with an explicit memory cost table.
    pub fn with_costs(clock: Clock, ram_bytes: u64, swappiness: u8, costs: MemCosts) -> Self {
        HostMemory {
            inner: Rc::new(RefCell::new(HostInner {
                frames: Vec::new(),
                free: Vec::new(),
                live_frames: 0,
                ram_bytes,
                swappiness: f64::from(swappiness.min(100)) / 100.0,
                cow_faults: 0,
                zero_fills: 0,
            })),
            clock,
            costs: Rc::new(costs),
        }
    }

    /// Allocates a fresh zero frame with one reference.
    pub fn alloc_zero(&self) -> FrameId {
        self.clock.advance(self.costs.zero_fill);
        let mut inner = self.inner.borrow_mut();
        inner.zero_fills += 1;
        inner.live_frames += 1;
        let entry = FrameEntry {
            refs: 1,
            pins: 0,
            data: None,
        };
        if let Some(i) = inner.free.pop() {
            inner.frames[i] = Some(entry);
            FrameId::from_index(i)
        } else {
            inner.frames.push(Some(entry));
            FrameId::from_index(inner.frames.len() - 1)
        }
    }

    /// Adds a mapping reference to a frame.
    pub fn retain(&self, id: FrameId) {
        let mut inner = self.inner.borrow_mut();
        inner.entry_mut(id).refs += 1;
    }

    /// Adds a snapshot-file pin (an owner that does not count as a PSS
    /// mapper).
    pub fn pin(&self, id: FrameId) {
        let mut inner = self.inner.borrow_mut();
        let e = inner.entry_mut(id);
        e.refs += 1;
        e.pins += 1;
    }

    /// Drops a mapping reference; frees the frame when the last owner goes.
    pub fn release(&self, id: FrameId) {
        self.release_inner(id, false);
    }

    /// Drops a snapshot-file pin.
    pub fn unpin(&self, id: FrameId) {
        self.release_inner(id, true);
    }

    fn release_inner(&self, id: FrameId, pin: bool) {
        let mut inner = self.inner.borrow_mut();
        let e = inner.entry_mut(id);
        assert!(e.refs > 0, "release of dead frame");
        if pin {
            assert!(e.pins > 0, "unpin without pin");
            e.pins -= 1;
        }
        e.refs -= 1;
        if e.refs == 0 {
            inner.frames[id.index()] = None;
            inner.free.push(id.index());
            inner.live_frames -= 1;
        }
    }

    /// Prepares a frame for writing: returns `id` unchanged when this is
    /// the only owner, otherwise performs a copy-on-write fault — the
    /// caller's reference moves to a private copy and the shared frame
    /// loses one reference.
    pub fn prepare_write(&self, id: FrameId) -> FrameId {
        {
            let inner = self.inner.borrow();
            if inner.entry(id).refs == 1 {
                return id;
            }
        }
        self.clock.advance(self.costs.cow_fault);
        let mut inner = self.inner.borrow_mut();
        let data = inner.entry(id).data.clone();
        let e = inner.entry_mut(id);
        e.refs -= 1;
        inner.cow_faults += 1;
        inner.live_frames += 1;
        let entry = FrameEntry {
            refs: 1,
            pins: 0,
            data,
        };
        if let Some(i) = inner.free.pop() {
            inner.frames[i] = Some(entry);
            FrameId::from_index(i)
        } else {
            inner.frames.push(Some(entry));
            FrameId::from_index(inner.frames.len() - 1)
        }
    }

    /// Writes bytes into a frame at `offset`. The caller must have made the
    /// frame private with [`HostMemory::prepare_write`] first.
    ///
    /// # Panics
    ///
    /// Panics if the write crosses the frame boundary or the frame is
    /// shared.
    pub fn write_frame(&self, id: FrameId, offset: usize, bytes: &[u8]) {
        assert!(offset + bytes.len() <= PAGE_SIZE, "write crosses frame");
        let mut inner = self.inner.borrow_mut();
        let e = inner.entry_mut(id);
        assert_eq!(e.refs, 1, "write to shared frame without CoW");
        let data = e
            .data
            .get_or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice());
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Flips bytes in a frame *without* the CoW private-ownership check —
    /// modelling bit-rot / media corruption of stored data rather than a
    /// guest write. Shared and pinned frames are corrupted in place, which
    /// is exactly what makes undetected corruption dangerous: every clone
    /// restored from the frame sees the damage. Used by fault-injection
    /// tests together with snapshot checksum verification.
    ///
    /// # Panics
    ///
    /// Panics if the write crosses the frame boundary.
    pub fn poke_frame(&self, id: FrameId, offset: usize, bytes: &[u8]) {
        assert!(offset + bytes.len() <= PAGE_SIZE, "poke crosses frame");
        let mut inner = self.inner.borrow_mut();
        let e = inner.entry_mut(id);
        let data = e
            .data
            .get_or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice());
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Copies bytes out of a frame at `offset`. Unwritten frames read as
    /// zeroes.
    pub fn read_frame(&self, id: FrameId, offset: usize, buf: &mut [u8]) {
        assert!(offset + buf.len() <= PAGE_SIZE, "read crosses frame");
        let inner = self.inner.borrow();
        match &inner.entry(id).data {
            Some(data) => buf.copy_from_slice(&data[offset..offset + buf.len()]),
            None => buf.fill(0),
        }
    }

    /// Copies a frame's contents from another host's frame table into a
    /// fresh frame on this host — the receive side of a cross-host chunk
    /// transfer. Unmaterialised source frames (all-zero pages that exist
    /// only for accounting) stay unmaterialised in the copy, so shipping
    /// the mostly-untouched parts of a VM image does not inflate either
    /// host's byte footprint. The new frame has one reference, owned by
    /// the caller. The wire cost of moving the bytes is charged by the
    /// network model, not here; only the local zero-fill allocation cost
    /// applies.
    pub fn clone_frame_from(&self, src_host: &HostMemory, src: FrameId) -> FrameId {
        let data = src_host.inner.borrow().entry(src).data.clone();
        let id = self.alloc_zero();
        if data.is_some() {
            let mut inner = self.inner.borrow_mut();
            inner.entry_mut(id).data = data;
        }
        id
    }

    /// FNV-1a checksum of a frame's stored contents. Unwritten frames
    /// hash as all-zeroes (matching how they read) without scanning any
    /// bytes, so checksumming a whole VM image is cheap.
    pub fn checksum_frame(&self, id: FrameId) -> u64 {
        match &self.inner.borrow().entry(id).data {
            Some(data) => fnv1a(data),
            None => ZERO_PAGE_FNV,
        }
    }

    /// Number of PSS mappers of a frame (owners minus snapshot-file pins).
    pub fn mappers(&self, id: FrameId) -> u32 {
        let inner = self.inner.borrow();
        let e = inner.entry(id);
        e.refs - e.pins
    }

    /// Total live frames on the host.
    pub fn live_frames(&self) -> usize {
        self.inner.borrow().live_frames
    }

    /// Total bytes of host memory in use (live frames × page size).
    pub fn used_bytes(&self) -> u64 {
        self.live_frames() as u64 * PAGE_SIZE as u64
    }

    /// The byte threshold at which the host starts swapping.
    pub fn swap_threshold_bytes(&self) -> u64 {
        let inner = self.inner.borrow();
        (inner.ram_bytes as f64 * inner.swappiness) as u64
    }

    /// Whether used memory has crossed the swap-onset threshold.
    pub fn is_swapping(&self) -> bool {
        self.used_bytes() > self.swap_threshold_bytes()
    }

    /// Aggregate counters, for tests and benches.
    pub fn stats(&self) -> MemoryStats {
        let inner = self.inner.borrow();
        MemoryStats {
            live_frames: inner.live_frames,
            used_bytes: inner.live_frames as u64 * PAGE_SIZE as u64,
            cow_faults: inner.cow_faults,
            zero_fills: inner.zero_fills,
        }
    }
}

impl HostInner {
    fn entry(&self, id: FrameId) -> &FrameEntry {
        self.frames[id.index()].as_ref().expect("live frame")
    }

    fn entry_mut(&mut self, id: FrameId) -> &mut FrameEntry {
        self.frames[id.index()].as_mut().expect("live frame")
    }
}

/// Aggregate host memory counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Live frames in the table.
    pub live_frames: usize,
    /// Live frames × page size.
    pub used_bytes: u64,
    /// Copy-on-write faults served since creation.
    pub cow_faults: u64,
    /// Zero-fill allocations served since creation.
    pub zero_fills: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostMemory {
        HostMemory::new(Clock::new(), 1 << 30, 60)
    }

    #[test]
    fn alloc_retain_release_lifecycle() {
        let h = host();
        let f = h.alloc_zero();
        assert_eq!(h.live_frames(), 1);
        h.retain(f);
        h.release(f);
        assert_eq!(h.live_frames(), 1);
        h.release(f);
        assert_eq!(h.live_frames(), 0);
    }

    #[test]
    fn freed_slots_are_reused() {
        let h = host();
        let a = h.alloc_zero();
        h.release(a);
        let b = h.alloc_zero();
        assert_eq!(a, b, "free list should recycle the slot");
    }

    #[test]
    fn prepare_write_is_noop_when_private() {
        let h = host();
        let f = h.alloc_zero();
        assert_eq!(h.prepare_write(f), f);
        assert_eq!(h.stats().cow_faults, 0);
    }

    #[test]
    fn prepare_write_copies_when_shared() {
        let h = host();
        let f = h.alloc_zero();
        h.write_frame(f, 0, b"abc");
        h.retain(f);
        let g = h.prepare_write(f);
        assert_ne!(f, g);
        assert_eq!(h.stats().cow_faults, 1);
        // The copy preserves the original contents.
        let mut buf = [0u8; 3];
        h.read_frame(g, 0, &mut buf);
        assert_eq!(&buf, b"abc");
        // Writing to the copy does not disturb the original.
        h.write_frame(g, 0, b"xyz");
        h.read_frame(f, 0, &mut buf);
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn cow_advances_virtual_clock() {
        let clock = Clock::new();
        let h = HostMemory::new(clock.clone(), 1 << 30, 60);
        let f = h.alloc_zero();
        h.retain(f);
        let before = clock.now();
        let _ = h.prepare_write(f);
        assert!(clock.now() > before);
    }

    #[test]
    fn unwritten_frames_read_zero() {
        let h = host();
        let f = h.alloc_zero();
        let mut buf = [7u8; 16];
        h.read_frame(f, 100, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn pins_do_not_count_as_mappers() {
        let h = host();
        let f = h.alloc_zero();
        h.pin(f);
        assert_eq!(h.mappers(f), 1);
        h.retain(f);
        assert_eq!(h.mappers(f), 2);
        h.unpin(f);
        h.release(f);
        h.release(f);
        assert_eq!(h.live_frames(), 0);
    }

    #[test]
    fn swap_threshold_tracks_swappiness() {
        let clock = Clock::new();
        let h = HostMemory::new(clock, 100 * PAGE_SIZE as u64, 60);
        assert_eq!(h.swap_threshold_bytes(), 60 * PAGE_SIZE as u64);
        for _ in 0..60 {
            let _ = h.alloc_zero();
        }
        assert!(!h.is_swapping());
        let _ = h.alloc_zero();
        assert!(h.is_swapping());
    }

    #[test]
    #[should_panic(expected = "write to shared frame")]
    fn writing_shared_frame_panics() {
        let h = host();
        let f = h.alloc_zero();
        h.retain(f);
        h.write_frame(f, 0, b"no");
    }

    #[test]
    #[should_panic(expected = "write crosses frame")]
    fn cross_frame_write_panics() {
        let h = host();
        let f = h.alloc_zero();
        h.write_frame(f, PAGE_SIZE - 1, b"ab");
    }
}
