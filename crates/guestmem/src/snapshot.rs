//! Snapshot files: pinned frame sets plus device state, with per-page
//! checksums so stored-page corruption is detected at restore time.

use std::fmt;

use crate::addr::AddressSpace;
use crate::host::{FrameId, HostMemory, PAGE_SIZE};

/// A snapshot failed checksum verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotIntegrityError {
    /// Index (within the snapshot's frame list) of the first bad page.
    pub page: usize,
    /// Checksum recorded at capture time.
    pub expected: u64,
    /// Checksum of the page as stored now.
    pub actual: u64,
}

impl fmt::Display for SnapshotIntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot page {} corrupt: checksum {:#018x}, expected {:#018x}",
            self.page, self.actual, self.expected
        )
    }
}

impl std::error::Error for SnapshotIntegrityError {}

/// Checksum of one stored page (delegates to the host's frame table,
/// which shortcuts unmaterialised frames).
fn page_checksum(host: &HostMemory, frame: FrameId) -> u64 {
    host.checksum_frame(frame)
}

/// A VM memory snapshot "file".
///
/// Creating a snapshot pins the source address space's current frames (the
/// page-cache residency of the snapshot file) and records an opaque
/// device-state blob. Restoring maps every pinned frame *shared* into a
/// fresh [`AddressSpace`]; guests then CoW pages as they write, so any
/// number of clones share unmodified pages — the mechanism behind the
/// paper's Fig. 4 and its memory results.
///
/// # Examples
///
/// ```
/// use fireworks_guestmem::{AddressSpace, HostMemory, SnapshotFile};
/// use fireworks_sim::Clock;
///
/// let host = HostMemory::new(Clock::new(), 1 << 30, 60);
/// let mut vm = AddressSpace::new(host.clone(), 1 << 20);
/// vm.write(0, b"jitted code");
/// let snap = SnapshotFile::capture(&vm, vec![1, 2, 3]);
/// let clone = snap.restore(&host);
/// let mut buf = [0u8; 11];
/// clone.read(0, &mut buf);
/// assert_eq!(&buf, b"jitted code");
/// ```
#[derive(Debug)]
pub struct SnapshotFile {
    host: HostMemory,
    size_bytes: u64,
    frames: Vec<(usize, FrameId)>,
    checksums: Vec<u64>,
    digest: u64,
    device_state: Vec<u8>,
}

impl SnapshotFile {
    /// Captures the current state of `space` together with a device-state
    /// blob (VM configuration, vCPU state, runtime state handle). Every
    /// stored page is checksummed at capture time so later corruption is
    /// detectable via [`SnapshotFile::verify`].
    pub fn capture(space: &AddressSpace, device_state: Vec<u8>) -> Self {
        let host = space.host().clone();
        let frames: Vec<(usize, FrameId)> = space.mapped().collect();
        for (_, frame) in &frames {
            host.pin(*frame);
        }
        let checksums: Vec<u64> = frames
            .iter()
            .map(|(_, frame)| page_checksum(&host, *frame))
            .collect();
        let digest = Self::fold_digest(&frames, &checksums);
        SnapshotFile {
            host,
            size_bytes: space.size_bytes(),
            frames,
            checksums,
            digest,
            device_state,
        }
    }

    /// Folds page numbers and page checksums into a whole-snapshot digest.
    fn fold_digest(frames: &[(usize, FrameId)], checksums: &[u64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for ((page, _), sum) in frames.iter().zip(checksums) {
            mix(*page as u64);
            mix(*sum);
        }
        h
    }

    /// Restores the snapshot into a new address space on `host`, mapping
    /// every snapshot frame shared.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not the host the snapshot was captured on (frame
    /// ids are host-local).
    pub fn restore(&self, host: &HostMemory) -> AddressSpace {
        let mut space = AddressSpace::new(host.clone(), self.size_bytes);
        for (page, frame) in &self.frames {
            space.map_shared(*page, *frame);
        }
        space
    }

    /// Re-checksums one stored page (by index in the frame list) against
    /// its capture-time checksum — the per-page check REAP-style prefetch
    /// performs as it reads pages.
    pub fn verify_page(&self, index: usize) -> Result<(), SnapshotIntegrityError> {
        let (_, frame) = self.frames[index];
        let actual = page_checksum(&self.host, frame);
        let expected = self.checksums[index];
        if actual == expected {
            Ok(())
        } else {
            Err(SnapshotIntegrityError {
                page: index,
                expected,
                actual,
            })
        }
    }

    /// Re-checksums the stored copy of guest page `page`, if the snapshot
    /// contains it (no-op otherwise). REAP-style prefetch calls this for
    /// each working-set page it reads from the snapshot file.
    pub fn verify_guest_page(&self, page: usize) -> Result<(), SnapshotIntegrityError> {
        // `capture` collects frames in ascending page order.
        match self.frames.binary_search_by_key(&page, |(p, _)| *p) {
            Ok(index) => self.verify_page(index),
            Err(_) => Ok(()),
        }
    }

    /// Re-checksums every stored page against the capture-time checksums,
    /// reporting the first corrupt page. Restore paths call this before
    /// mapping the snapshot so clones never execute damaged pages.
    pub fn verify(&self) -> Result<(), SnapshotIntegrityError> {
        for index in 0..self.frames.len() {
            self.verify_page(index)?;
        }
        Ok(())
    }

    /// The whole-snapshot digest computed at capture time (page numbers
    /// folded with page checksums).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Deliberately flips bytes in the stored copy of page `index`
    /// (bit-rot on the snapshot "file"). Fault-injection helper: the
    /// damage is visible to every later restore until the snapshot is
    /// rebuilt, and [`SnapshotFile::verify`] detects it.
    pub fn corrupt_page(&self, index: usize) {
        let (_, frame) = self.frames[index];
        let mut byte = [0u8];
        self.host.read_frame(frame, 0, &mut byte);
        self.host.poke_frame(frame, 0, &[byte[0] ^ 0xff]);
    }

    /// The device-state blob stored with the snapshot.
    pub fn device_state(&self) -> &[u8] {
        &self.device_state
    }

    /// Number of guest pages stored in the snapshot.
    pub fn pages(&self) -> usize {
        self.frames.len()
    }

    /// On-disk size of the snapshot memory file in bytes.
    pub fn file_bytes(&self) -> u64 {
        (self.frames.len() * PAGE_SIZE) as u64 + self.device_state.len() as u64
    }
}

impl Drop for SnapshotFile {
    fn drop(&mut self) {
        for (_, frame) in &self.frames {
            self.host.unpin(*frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_sim::Clock;

    fn host() -> HostMemory {
        HostMemory::new(Clock::new(), 1 << 30, 60)
    }

    fn space_with_pages(host: &HostMemory, pages: usize) -> AddressSpace {
        let mut s = AddressSpace::new(host.clone(), 1 << 20);
        s.touch_dirty(0, (pages * PAGE_SIZE) as u64);
        s
    }

    #[test]
    fn restore_shares_all_frames() {
        let h = host();
        let src = space_with_pages(&h, 8);
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);
        // Source gone, snapshot pins keep the frames alive.
        assert_eq!(h.live_frames(), 8);

        let a = snap.restore(&h);
        let b = snap.restore(&h);
        assert_eq!(h.live_frames(), 8, "clones share, no copies yet");
        assert_eq!(a.resident_pages(), 8);
        // PSS: 8 pages / 2 mappers (pins don't count).
        assert_eq!(a.pss_bytes(), 4 * PAGE_SIZE as u64);
        assert_eq!(b.pss_bytes(), 4 * PAGE_SIZE as u64);
    }

    #[test]
    fn clone_writes_do_not_leak_between_clones() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(100, b"base");
        let snap = SnapshotFile::capture(&src, Vec::new());

        let mut a = snap.restore(&h);
        let mut b = snap.restore(&h);
        a.write(100, b"AAAA");
        b.write(100, b"BBBB");
        let mut buf = [0u8; 4];
        src.read(100, &mut buf);
        assert_eq!(&buf, b"base");
        a.read(100, &mut buf);
        assert_eq!(&buf, b"AAAA");
        b.read(100, &mut buf);
        assert_eq!(&buf, b"BBBB");
    }

    #[test]
    fn dropping_snapshot_releases_pins() {
        let h = host();
        let src = space_with_pages(&h, 4);
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);
        assert_eq!(h.live_frames(), 4);
        drop(snap);
        assert_eq!(h.live_frames(), 0);
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(0, b"before");
        let snap = SnapshotFile::capture(&src, Vec::new());
        src.write(0, b"after!");
        let clone = snap.restore(&h);
        let mut buf = [0u8; 6];
        clone.read(0, &mut buf);
        assert_eq!(&buf, b"before");
    }

    #[test]
    fn pristine_snapshot_verifies() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(0, b"post-jit state");
        let snap = SnapshotFile::capture(&src, Vec::new());
        assert!(snap.verify().is_ok());
        assert!(snap.verify_page(0).is_ok());
    }

    #[test]
    fn corruption_is_detected_and_reported_per_page() {
        let h = host();
        let src = space_with_pages(&h, 4);
        let snap = SnapshotFile::capture(&src, Vec::new());
        snap.corrupt_page(2);
        let err = snap.verify().expect_err("corruption must be detected");
        assert_eq!(err.page, 2);
        assert_ne!(err.actual, err.expected);
        assert!(snap.verify_page(2).is_err());
        assert!(snap.verify_page(0).is_ok(), "other pages stay good");
        // The error formats with the page number.
        assert!(err.to_string().contains("page 2"));
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let h = host();
        let mut a_src = AddressSpace::new(h.clone(), 1 << 20);
        a_src.write(0, b"same bytes");
        let a = SnapshotFile::capture(&a_src, Vec::new());
        let b = SnapshotFile::capture(&a_src, Vec::new());
        assert_eq!(a.digest(), b.digest(), "same content, same digest");

        let mut c_src = AddressSpace::new(h.clone(), 1 << 20);
        c_src.write(0, b"diff bytes");
        let c = SnapshotFile::capture(&c_src, Vec::new());
        assert_ne!(a.digest(), c.digest(), "different content, new digest");
    }

    #[test]
    fn guest_cow_writes_do_not_trip_verification() {
        // A clone dirtying its own CoW copy must not look like snapshot
        // corruption: checksums cover the stored frames, and guest writes
        // move the clone off them.
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(0, b"base");
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);
        let mut clone = snap.restore(&h);
        clone.write(0, b"dirty");
        assert!(snap.verify().is_ok());
    }

    #[test]
    fn device_state_round_trips() {
        let h = host();
        let src = space_with_pages(&h, 1);
        let snap = SnapshotFile::capture(&src, vec![0xde, 0xad]);
        assert_eq!(snap.device_state(), &[0xde, 0xad]);
        assert_eq!(snap.pages(), 1);
        assert_eq!(snap.file_bytes(), PAGE_SIZE as u64 + 2);
    }
}
