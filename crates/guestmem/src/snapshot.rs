//! Snapshot files: pinned frame sets plus device state.

use crate::addr::AddressSpace;
use crate::host::{FrameId, HostMemory, PAGE_SIZE};

/// A VM memory snapshot "file".
///
/// Creating a snapshot pins the source address space's current frames (the
/// page-cache residency of the snapshot file) and records an opaque
/// device-state blob. Restoring maps every pinned frame *shared* into a
/// fresh [`AddressSpace`]; guests then CoW pages as they write, so any
/// number of clones share unmodified pages — the mechanism behind the
/// paper's Fig. 4 and its memory results.
///
/// # Examples
///
/// ```
/// use fireworks_guestmem::{AddressSpace, HostMemory, SnapshotFile};
/// use fireworks_sim::Clock;
///
/// let host = HostMemory::new(Clock::new(), 1 << 30, 60);
/// let mut vm = AddressSpace::new(host.clone(), 1 << 20);
/// vm.write(0, b"jitted code");
/// let snap = SnapshotFile::capture(&vm, vec![1, 2, 3]);
/// let clone = snap.restore(&host);
/// let mut buf = [0u8; 11];
/// clone.read(0, &mut buf);
/// assert_eq!(&buf, b"jitted code");
/// ```
#[derive(Debug)]
pub struct SnapshotFile {
    host: HostMemory,
    size_bytes: u64,
    frames: Vec<(usize, FrameId)>,
    device_state: Vec<u8>,
}

impl SnapshotFile {
    /// Captures the current state of `space` together with a device-state
    /// blob (VM configuration, vCPU state, runtime state handle).
    pub fn capture(space: &AddressSpace, device_state: Vec<u8>) -> Self {
        let host = space.host().clone();
        let frames: Vec<(usize, FrameId)> = space.mapped().collect();
        for (_, frame) in &frames {
            host.pin(*frame);
        }
        SnapshotFile {
            host,
            size_bytes: space.size_bytes(),
            frames,
            device_state,
        }
    }

    /// Restores the snapshot into a new address space on `host`, mapping
    /// every snapshot frame shared.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not the host the snapshot was captured on (frame
    /// ids are host-local).
    pub fn restore(&self, host: &HostMemory) -> AddressSpace {
        let mut space = AddressSpace::new(host.clone(), self.size_bytes);
        for (page, frame) in &self.frames {
            space.map_shared(*page, *frame);
        }
        space
    }

    /// The device-state blob stored with the snapshot.
    pub fn device_state(&self) -> &[u8] {
        &self.device_state
    }

    /// Number of guest pages stored in the snapshot.
    pub fn pages(&self) -> usize {
        self.frames.len()
    }

    /// On-disk size of the snapshot memory file in bytes.
    pub fn file_bytes(&self) -> u64 {
        (self.frames.len() * PAGE_SIZE) as u64 + self.device_state.len() as u64
    }
}

impl Drop for SnapshotFile {
    fn drop(&mut self) {
        for (_, frame) in &self.frames {
            self.host.unpin(*frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_sim::Clock;

    fn host() -> HostMemory {
        HostMemory::new(Clock::new(), 1 << 30, 60)
    }

    fn space_with_pages(host: &HostMemory, pages: usize) -> AddressSpace {
        let mut s = AddressSpace::new(host.clone(), 1 << 20);
        s.touch_dirty(0, (pages * PAGE_SIZE) as u64);
        s
    }

    #[test]
    fn restore_shares_all_frames() {
        let h = host();
        let src = space_with_pages(&h, 8);
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);
        // Source gone, snapshot pins keep the frames alive.
        assert_eq!(h.live_frames(), 8);

        let a = snap.restore(&h);
        let b = snap.restore(&h);
        assert_eq!(h.live_frames(), 8, "clones share, no copies yet");
        assert_eq!(a.resident_pages(), 8);
        // PSS: 8 pages / 2 mappers (pins don't count).
        assert_eq!(a.pss_bytes(), 4 * PAGE_SIZE as u64);
        assert_eq!(b.pss_bytes(), 4 * PAGE_SIZE as u64);
    }

    #[test]
    fn clone_writes_do_not_leak_between_clones() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(100, b"base");
        let snap = SnapshotFile::capture(&src, Vec::new());

        let mut a = snap.restore(&h);
        let mut b = snap.restore(&h);
        a.write(100, b"AAAA");
        b.write(100, b"BBBB");
        let mut buf = [0u8; 4];
        src.read(100, &mut buf);
        assert_eq!(&buf, b"base");
        a.read(100, &mut buf);
        assert_eq!(&buf, b"AAAA");
        b.read(100, &mut buf);
        assert_eq!(&buf, b"BBBB");
    }

    #[test]
    fn dropping_snapshot_releases_pins() {
        let h = host();
        let src = space_with_pages(&h, 4);
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);
        assert_eq!(h.live_frames(), 4);
        drop(snap);
        assert_eq!(h.live_frames(), 0);
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(0, b"before");
        let snap = SnapshotFile::capture(&src, Vec::new());
        src.write(0, b"after!");
        let clone = snap.restore(&h);
        let mut buf = [0u8; 6];
        clone.read(0, &mut buf);
        assert_eq!(&buf, b"before");
    }

    #[test]
    fn device_state_round_trips() {
        let h = host();
        let src = space_with_pages(&h, 1);
        let snap = SnapshotFile::capture(&src, vec![0xde, 0xad]);
        assert_eq!(snap.device_state(), &[0xde, 0xad]);
        assert_eq!(snap.pages(), 1);
        assert_eq!(snap.file_bytes(), PAGE_SIZE as u64 + 2);
    }
}
