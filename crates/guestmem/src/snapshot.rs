//! Snapshot files: pinned frame sets plus device state, with per-page
//! checksums so stored-page corruption is detected at restore time, and
//! content-addressed manifests so snapshots can be deduplicated and
//! shipped between hosts chunk by chunk.

use std::fmt;

use crate::addr::AddressSpace;
use crate::host::{FrameId, HostMemory, PAGE_SIZE};

/// Identity of a whole snapshot: the capture-time digest (page numbers
/// folded with page checksums, FNV-1a). Two snapshots with the same id
/// store byte-identical guest memory at identical guest addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(u64);

impl SnapshotId {
    /// Wraps a raw digest value.
    pub fn from_raw(raw: u64) -> Self {
        SnapshotId(raw)
    }

    /// The raw digest value (for JSON output and log labels).
    pub fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snap:{:016x}", self.0)
    }
}

/// Content hash of one snapshot chunk: FNV-1a folded over the chunk's
/// (guest page number, page checksum) pairs. Two chunks with equal
/// hashes carry the same bytes at the same guest addresses, so a store
/// may keep a single copy and map it into any snapshot that wants it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkHash(u64);

impl ChunkHash {
    /// Wraps a raw hash value.
    pub fn from_raw(raw: u64) -> Self {
        ChunkHash(raw)
    }

    /// The raw hash value (for JSON output and log labels).
    pub fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ChunkHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk:{:016x}", self.0)
    }
}

/// One chunk of a snapshot manifest: a fixed-size run of the snapshot's
/// frame list (the last chunk may be short).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ChunkRef {
    /// Content hash of the run.
    pub hash: ChunkHash,
    /// Pages covered by this chunk.
    pub pages: usize,
    /// Bytes covered by this chunk (`pages * PAGE_SIZE`).
    pub bytes: u64,
}

/// A content-addressed description of a snapshot: its identity plus the
/// ordered chunk list. A host holding every chunk of a manifest can
/// reconstruct the snapshot without touching the source function, and a
/// host holding only some chunks knows exactly how many bytes it is
/// missing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SnapshotManifest {
    /// Identity of the snapshot this manifest describes.
    pub id: SnapshotId,
    /// Guest address-space size the snapshot restores into.
    pub size_bytes: u64,
    /// Chunk granularity in pages every full-size chunk uses.
    pub chunk_pages: usize,
    /// Ordered chunk list covering the snapshot's frame list.
    pub chunks: Vec<ChunkRef>,
    /// Device-state blob carried alongside guest memory.
    pub device_state: Vec<u8>,
}

impl SnapshotManifest {
    /// Total guest-memory bytes described by the manifest.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.bytes).sum()
    }

    /// Total pages described by the manifest.
    pub fn total_pages(&self) -> usize {
        self.chunks.iter().map(|c| c.pages).sum()
    }
}

/// A snapshot failed checksum verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotIntegrityError {
    /// Index (within the snapshot's frame list) of the first bad page.
    pub page: usize,
    /// Checksum recorded at capture time.
    pub expected: u64,
    /// Checksum of the page as stored now.
    pub actual: u64,
}

impl fmt::Display for SnapshotIntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot page {} corrupt: checksum {:#018x}, expected {:#018x}",
            self.page, self.actual, self.expected
        )
    }
}

impl std::error::Error for SnapshotIntegrityError {}

/// Checksum of one stored page (delegates to the host's frame table,
/// which shortcuts unmaterialised frames).
fn page_checksum(host: &HostMemory, frame: FrameId) -> u64 {
    host.checksum_frame(frame)
}

/// A VM memory snapshot "file".
///
/// Creating a snapshot pins the source address space's current frames (the
/// page-cache residency of the snapshot file) and records an opaque
/// device-state blob. Restoring maps every pinned frame *shared* into a
/// fresh [`AddressSpace`]; guests then CoW pages as they write, so any
/// number of clones share unmodified pages — the mechanism behind the
/// paper's Fig. 4 and its memory results.
///
/// # Examples
///
/// ```
/// use fireworks_guestmem::{AddressSpace, HostMemory, SnapshotFile};
/// use fireworks_sim::Clock;
///
/// let host = HostMemory::new(Clock::new(), 1 << 30, 60);
/// let mut vm = AddressSpace::new(host.clone(), 1 << 20);
/// vm.write(0, b"jitted code");
/// let snap = SnapshotFile::capture(&vm, vec![1, 2, 3]);
/// let clone = snap.restore(&host);
/// let mut buf = [0u8; 11];
/// clone.read(0, &mut buf);
/// assert_eq!(&buf, b"jitted code");
/// ```
#[derive(Debug)]
pub struct SnapshotFile {
    host: HostMemory,
    size_bytes: u64,
    frames: Vec<(usize, FrameId)>,
    checksums: Vec<u64>,
    digest: u64,
    device_state: Vec<u8>,
}

impl SnapshotFile {
    /// Captures the current state of `space` together with a device-state
    /// blob (VM configuration, vCPU state, runtime state handle). Every
    /// stored page is checksummed at capture time so later corruption is
    /// detectable via [`SnapshotFile::verify`].
    pub fn capture(space: &AddressSpace, device_state: Vec<u8>) -> Self {
        let host = space.host().clone();
        let frames: Vec<(usize, FrameId)> = space.mapped().collect();
        for (_, frame) in &frames {
            host.pin(*frame);
        }
        let checksums: Vec<u64> = frames
            .iter()
            .map(|(_, frame)| page_checksum(&host, *frame))
            .collect();
        let digest = Self::fold_digest(&frames, &checksums);
        SnapshotFile {
            host,
            size_bytes: space.size_bytes(),
            frames,
            checksums,
            digest,
            device_state,
        }
    }

    /// Folds page numbers and page checksums into a whole-snapshot digest.
    fn fold_digest(frames: &[(usize, FrameId)], checksums: &[u64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for ((page, _), sum) in frames.iter().zip(checksums) {
            mix(*page as u64);
            mix(*sum);
        }
        h
    }

    /// Rebuilds a snapshot from an explicit frame list — the delta-fetch
    /// path: a host that has assembled every frame of a remote snapshot
    /// (from deduplicated chunks plus transferred ones) turns them back
    /// into a restorable snapshot file. Frames are re-checksummed exactly
    /// as [`SnapshotFile::capture`] would, so a faithful reconstruction
    /// reproduces the source snapshot's [`SnapshotId`].
    ///
    /// Unlike `capture` (which pins on top of the source address space's
    /// mappings), this *consumes* one owner reference per frame: the
    /// caller's reference becomes the snapshot-file pin, and dropping the
    /// snapshot frees frames nothing else maps.
    ///
    /// `frames` must be sorted by guest page number (ascending), matching
    /// the order `capture` records.
    pub fn from_mapped(
        host: &HostMemory,
        size_bytes: u64,
        frames: Vec<(usize, FrameId)>,
        device_state: Vec<u8>,
    ) -> Self {
        debug_assert!(
            frames.windows(2).all(|w| w[0].0 < w[1].0),
            "frame list must be sorted by guest page"
        );
        for (_, frame) in &frames {
            // Turn the caller's owner reference into a snapshot pin.
            host.pin(*frame);
            host.release(*frame);
        }
        let checksums: Vec<u64> = frames
            .iter()
            .map(|(_, frame)| page_checksum(host, *frame))
            .collect();
        let digest = Self::fold_digest(&frames, &checksums);
        SnapshotFile {
            host: host.clone(),
            size_bytes,
            frames,
            checksums,
            digest,
            device_state,
        }
    }

    /// The snapshot's content identity (typed wrapper over
    /// [`SnapshotFile::digest`]).
    pub fn id(&self) -> SnapshotId {
        SnapshotId::from_raw(self.digest)
    }

    /// The stored frame list: (guest page, host frame) pairs in ascending
    /// guest-page order. Chunk stores slice this in the same fixed runs
    /// [`SnapshotFile::manifest`] hashes.
    pub fn frames(&self) -> &[(usize, FrameId)] {
        &self.frames
    }

    /// Guest address-space size the snapshot restores into.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Computes the snapshot's content-addressed manifest at `chunk_pages`
    /// granularity: the frame list is cut into fixed runs of `chunk_pages`
    /// positions (the last run may be short) and each run is hashed by
    /// FNV-1a folding its (guest page, page checksum) pairs. Runs with
    /// identical guest layout and identical bytes — the common case for
    /// the OS image and runtime/JIT regions shared across functions —
    /// therefore collide on purpose, which is what lets a chunk store keep
    /// one copy.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_pages` is zero.
    pub fn manifest(&self, chunk_pages: usize) -> SnapshotManifest {
        assert!(chunk_pages > 0, "chunk granularity must be positive");
        let mut chunks = Vec::with_capacity(self.frames.len().div_ceil(chunk_pages));
        for start in (0..self.frames.len()).step_by(chunk_pages) {
            let end = (start + chunk_pages).min(self.frames.len());
            let run = &self.frames[start..end];
            let sums = &self.checksums[start..end];
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut mix = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            };
            for ((page, _), sum) in run.iter().zip(sums) {
                mix(*page as u64);
                mix(*sum);
            }
            chunks.push(ChunkRef {
                hash: ChunkHash::from_raw(h),
                pages: run.len(),
                bytes: (run.len() * PAGE_SIZE) as u64,
            });
        }
        SnapshotManifest {
            id: self.id(),
            size_bytes: self.size_bytes,
            chunk_pages,
            chunks,
            device_state: self.device_state.clone(),
        }
    }

    /// Restores the snapshot into a new address space on `host`, mapping
    /// every snapshot frame shared.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not the host the snapshot was captured on (frame
    /// ids are host-local).
    pub fn restore(&self, host: &HostMemory) -> AddressSpace {
        let mut space = AddressSpace::new(host.clone(), self.size_bytes);
        for (page, frame) in &self.frames {
            space.map_shared(*page, *frame);
        }
        space
    }

    /// Re-checksums one stored page (by index in the frame list) against
    /// its capture-time checksum — the per-page check REAP-style prefetch
    /// performs as it reads pages.
    pub fn verify_page(&self, index: usize) -> Result<(), SnapshotIntegrityError> {
        let (_, frame) = self.frames[index];
        let actual = page_checksum(&self.host, frame);
        let expected = self.checksums[index];
        if actual == expected {
            Ok(())
        } else {
            Err(SnapshotIntegrityError {
                page: index,
                expected,
                actual,
            })
        }
    }

    /// Re-checksums the stored copy of guest page `page`, if the snapshot
    /// contains it (no-op otherwise). REAP-style prefetch calls this for
    /// each working-set page it reads from the snapshot file.
    pub fn verify_guest_page(&self, page: usize) -> Result<(), SnapshotIntegrityError> {
        // `capture` collects frames in ascending page order.
        match self.frames.binary_search_by_key(&page, |(p, _)| *p) {
            Ok(index) => self.verify_page(index),
            Err(_) => Ok(()),
        }
    }

    /// Re-checksums every stored page against the capture-time checksums,
    /// reporting the first corrupt page. Restore paths call this before
    /// mapping the snapshot so clones never execute damaged pages.
    pub fn verify(&self) -> Result<(), SnapshotIntegrityError> {
        for index in 0..self.frames.len() {
            self.verify_page(index)?;
        }
        Ok(())
    }

    /// The whole-snapshot digest computed at capture time (page numbers
    /// folded with page checksums).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Deliberately flips bytes in the stored copy of page `index`
    /// (bit-rot on the snapshot "file"). Fault-injection helper: the
    /// damage is visible to every later restore until the snapshot is
    /// rebuilt, and [`SnapshotFile::verify`] detects it.
    pub fn corrupt_page(&self, index: usize) {
        let (_, frame) = self.frames[index];
        let mut byte = [0u8];
        self.host.read_frame(frame, 0, &mut byte);
        self.host.poke_frame(frame, 0, &[byte[0] ^ 0xff]);
    }

    /// The device-state blob stored with the snapshot.
    pub fn device_state(&self) -> &[u8] {
        &self.device_state
    }

    /// Number of guest pages stored in the snapshot.
    pub fn pages(&self) -> usize {
        self.frames.len()
    }

    /// On-disk size of the snapshot memory file in bytes.
    pub fn file_bytes(&self) -> u64 {
        (self.frames.len() * PAGE_SIZE) as u64 + self.device_state.len() as u64
    }
}

impl Drop for SnapshotFile {
    fn drop(&mut self) {
        for (_, frame) in &self.frames {
            self.host.unpin(*frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireworks_sim::Clock;

    fn host() -> HostMemory {
        HostMemory::new(Clock::new(), 1 << 30, 60)
    }

    fn space_with_pages(host: &HostMemory, pages: usize) -> AddressSpace {
        let mut s = AddressSpace::new(host.clone(), 1 << 20);
        s.touch_dirty(0, (pages * PAGE_SIZE) as u64);
        s
    }

    #[test]
    fn restore_shares_all_frames() {
        let h = host();
        let src = space_with_pages(&h, 8);
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);
        // Source gone, snapshot pins keep the frames alive.
        assert_eq!(h.live_frames(), 8);

        let a = snap.restore(&h);
        let b = snap.restore(&h);
        assert_eq!(h.live_frames(), 8, "clones share, no copies yet");
        assert_eq!(a.resident_pages(), 8);
        // PSS: 8 pages / 2 mappers (pins don't count).
        assert_eq!(a.pss_bytes(), 4 * PAGE_SIZE as u64);
        assert_eq!(b.pss_bytes(), 4 * PAGE_SIZE as u64);
    }

    #[test]
    fn clone_writes_do_not_leak_between_clones() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(100, b"base");
        let snap = SnapshotFile::capture(&src, Vec::new());

        let mut a = snap.restore(&h);
        let mut b = snap.restore(&h);
        a.write(100, b"AAAA");
        b.write(100, b"BBBB");
        let mut buf = [0u8; 4];
        src.read(100, &mut buf);
        assert_eq!(&buf, b"base");
        a.read(100, &mut buf);
        assert_eq!(&buf, b"AAAA");
        b.read(100, &mut buf);
        assert_eq!(&buf, b"BBBB");
    }

    #[test]
    fn dropping_snapshot_releases_pins() {
        let h = host();
        let src = space_with_pages(&h, 4);
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);
        assert_eq!(h.live_frames(), 4);
        drop(snap);
        assert_eq!(h.live_frames(), 0);
    }

    #[test]
    fn snapshot_is_point_in_time() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(0, b"before");
        let snap = SnapshotFile::capture(&src, Vec::new());
        src.write(0, b"after!");
        let clone = snap.restore(&h);
        let mut buf = [0u8; 6];
        clone.read(0, &mut buf);
        assert_eq!(&buf, b"before");
    }

    #[test]
    fn pristine_snapshot_verifies() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(0, b"post-jit state");
        let snap = SnapshotFile::capture(&src, Vec::new());
        assert!(snap.verify().is_ok());
        assert!(snap.verify_page(0).is_ok());
    }

    #[test]
    fn corruption_is_detected_and_reported_per_page() {
        let h = host();
        let src = space_with_pages(&h, 4);
        let snap = SnapshotFile::capture(&src, Vec::new());
        snap.corrupt_page(2);
        let err = snap.verify().expect_err("corruption must be detected");
        assert_eq!(err.page, 2);
        assert_ne!(err.actual, err.expected);
        assert!(snap.verify_page(2).is_err());
        assert!(snap.verify_page(0).is_ok(), "other pages stay good");
        // The error formats with the page number.
        assert!(err.to_string().contains("page 2"));
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let h = host();
        let mut a_src = AddressSpace::new(h.clone(), 1 << 20);
        a_src.write(0, b"same bytes");
        let a = SnapshotFile::capture(&a_src, Vec::new());
        let b = SnapshotFile::capture(&a_src, Vec::new());
        assert_eq!(a.digest(), b.digest(), "same content, same digest");

        let mut c_src = AddressSpace::new(h.clone(), 1 << 20);
        c_src.write(0, b"diff bytes");
        let c = SnapshotFile::capture(&c_src, Vec::new());
        assert_ne!(a.digest(), c.digest(), "different content, new digest");
    }

    #[test]
    fn guest_cow_writes_do_not_trip_verification() {
        // A clone dirtying its own CoW copy must not look like snapshot
        // corruption: checksums cover the stored frames, and guest writes
        // move the clone off them.
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(0, b"base");
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);
        let mut clone = snap.restore(&h);
        clone.write(0, b"dirty");
        assert!(snap.verify().is_ok());
    }

    #[test]
    fn manifest_chunks_cover_every_page_and_dedup_identical_runs() {
        let h = host();
        let src = space_with_pages(&h, 10);
        let snap = SnapshotFile::capture(&src, Vec::new());
        let m = snap.manifest(4);
        assert_eq!(m.id, snap.id());
        assert_eq!(m.chunk_pages, 4);
        // 10 pages at 4/chunk: 4 + 4 + 2.
        assert_eq!(m.chunks.len(), 3);
        assert_eq!(m.total_pages(), 10);
        assert_eq!(m.total_bytes(), 10 * PAGE_SIZE as u64);
        assert_eq!(m.chunks[2].pages, 2);
        // All pages are untouched zeroes but at different guest addresses,
        // so the two full-size chunks differ (layout is part of the hash)…
        assert_ne!(m.chunks[0].hash, m.chunks[1].hash);
        // …while a second identical snapshot produces identical hashes.
        let again = SnapshotFile::capture(&src, Vec::new());
        assert_eq!(again.manifest(4).chunks, m.chunks);
    }

    #[test]
    fn manifest_hash_tracks_content() {
        let h = host();
        let mut a = AddressSpace::new(h.clone(), 1 << 20);
        a.write(0, b"shared runtime image");
        let snap_a = SnapshotFile::capture(&a, Vec::new());
        let mut b = AddressSpace::new(h.clone(), 1 << 20);
        b.write(0, b"shared runtime image");
        let snap_b = SnapshotFile::capture(&b, Vec::new());
        assert_eq!(
            snap_a.manifest(64).chunks[0].hash,
            snap_b.manifest(64).chunks[0].hash,
            "same bytes at same addresses collide across snapshots"
        );
        let mut c = AddressSpace::new(h.clone(), 1 << 20);
        c.write(0, b"private user state...");
        let snap_c = SnapshotFile::capture(&c, Vec::new());
        assert_ne!(
            snap_a.manifest(64).chunks[0].hash,
            snap_c.manifest(64).chunks[0].hash
        );
    }

    #[test]
    fn from_mapped_reproduces_identity_and_contents() {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), 1 << 20);
        src.write(0, b"jitted code");
        let snap = SnapshotFile::capture(&src, vec![9, 9]);

        // A "receiving host" assembles the same frames (here: copied
        // within one table, as a chunk transfer would) and rebuilds.
        let frames: Vec<(usize, FrameId)> = snap
            .frames()
            .iter()
            .map(|(page, f)| (*page, h.clone_frame_from(&h, *f)))
            .collect();
        let rebuilt = SnapshotFile::from_mapped(&h, snap.size_bytes(), frames, vec![9, 9]);
        assert_eq!(rebuilt.id(), snap.id(), "faithful copy keeps the id");
        assert_eq!(rebuilt.pages(), snap.pages());
        assert!(rebuilt.verify().is_ok());
        let clone = rebuilt.restore(&h);
        let mut buf = [0u8; 11];
        clone.read(0, &mut buf);
        assert_eq!(&buf, b"jitted code");
        // from_mapped owns its frames: dropping it releases them.
        drop(clone);
        let live = h.live_frames();
        drop(rebuilt);
        assert!(h.live_frames() < live);
    }

    #[test]
    fn snapshot_and_chunk_ids_format_distinctly() {
        let id = SnapshotId::from_raw(0xabc);
        let ch = ChunkHash::from_raw(0xabc);
        assert_eq!(id.as_raw(), ch.as_raw());
        assert!(id.to_string().starts_with("snap:"));
        assert!(ch.to_string().starts_with("chunk:"));
    }

    #[test]
    fn device_state_round_trips() {
        let h = host();
        let src = space_with_pages(&h, 1);
        let snap = SnapshotFile::capture(&src, vec![0xde, 0xad]);
        assert_eq!(snap.device_state(), &[0xde, 0xad]);
        assert_eq!(snap.pages(), 1);
        assert_eq!(snap.file_bytes(), PAGE_SIZE as u64 + 2);
    }
}
