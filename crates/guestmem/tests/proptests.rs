//! Property-based tests for guest memory invariants.

use fireworks_guestmem::{AddressSpace, HostMemory, SnapshotFile, PAGE_SIZE};
use fireworks_sim::Clock;
use proptest::prelude::*;

fn host() -> HostMemory {
    HostMemory::new(Clock::new(), 1 << 32, 60)
}

const SPACE_BYTES: u64 = 64 * PAGE_SIZE as u64;

/// A mirror write: (address, bytes).
fn write_strategy() -> impl Strategy<Value = (u64, Vec<u8>)> {
    (0..SPACE_BYTES - 512).prop_flat_map(|addr| {
        (
            Just(addr),
            proptest::collection::vec(any::<u8>(), 1..256usize),
        )
    })
}

proptest! {
    /// Guest memory behaves exactly like a flat byte array.
    #[test]
    fn memory_matches_flat_mirror(writes in proptest::collection::vec(write_strategy(), 1..40)) {
        let mut vm = AddressSpace::new(host(), SPACE_BYTES);
        let mut mirror = vec![0u8; SPACE_BYTES as usize];
        for (addr, bytes) in &writes {
            vm.write(*addr, bytes);
            mirror[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        let mut buf = vec![0u8; SPACE_BYTES as usize];
        vm.read(0, &mut buf);
        prop_assert_eq!(buf, mirror);
    }

    /// Restored clones see the snapshot contents, and clone writes never
    /// alter the snapshot or sibling clones.
    #[test]
    fn snapshot_isolation(
        base in proptest::collection::vec(write_strategy(), 1..20),
        clone_writes in proptest::collection::vec(write_strategy(), 1..20),
    ) {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), SPACE_BYTES);
        let mut mirror = vec![0u8; SPACE_BYTES as usize];
        for (addr, bytes) in &base {
            src.write(*addr, bytes);
            mirror[*addr as usize..*addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);

        let mut a = snap.restore(&h);
        let b = snap.restore(&h);
        for (addr, bytes) in &clone_writes {
            a.write(*addr, bytes);
        }
        // Clone b still sees the unmodified snapshot contents.
        let mut buf = vec![0u8; SPACE_BYTES as usize];
        b.read(0, &mut buf);
        prop_assert_eq!(&buf, &mirror);
        // A third restore also sees the snapshot contents.
        let c = snap.restore(&h);
        c.read(0, &mut buf);
        prop_assert_eq!(&buf, &mirror);
    }

    /// PSS of all mappers sums to the host's live frame bytes for frames
    /// mapped by at least one space (conservation of accounted memory).
    #[test]
    fn pss_is_conserved(
        base_pages in 1usize..32,
        clones in 1usize..6,
        dirty_pages in 0usize..16,
    ) {
        let h = host();
        let mut src = AddressSpace::new(h.clone(), SPACE_BYTES);
        src.touch_dirty(0, (base_pages * PAGE_SIZE) as u64);
        let snap = SnapshotFile::capture(&src, Vec::new());
        drop(src);

        let mut spaces = Vec::new();
        for i in 0..clones {
            let mut s = snap.restore(&h);
            if i == 0 {
                let d = dirty_pages.min(base_pages);
                s.touch_dirty(0, (d * PAGE_SIZE) as u64);
            }
            spaces.push(s);
        }
        let pss_sum: u64 = spaces.iter().map(|s| s.pss_bytes()).sum();
        // PSS must sum to the bytes of the distinct frames that are mapped
        // by at least one space (a CoW'd snapshot frame may survive with a
        // file pin only — it is resident but charged to nobody, exactly
        // like a page-cache page with no mappers).
        let mut unique = std::collections::HashSet::new();
        for s in &spaces {
            for (_, f) in s.mapped() {
                unique.insert(f);
            }
        }
        let mapped_bytes = unique.len() as u64 * PAGE_SIZE as u64;
        let tolerance = unique.len() as u64;
        prop_assert!(
            pss_sum.abs_diff(mapped_bytes) <= tolerance,
            "pss {pss_sum} vs mapped {mapped_bytes}"
        );
    }

    /// Releasing every space and snapshot frees all host frames.
    #[test]
    fn no_frame_leaks(
        pages in 1usize..32,
        clones in 0usize..5,
    ) {
        let h = host();
        {
            let mut src = AddressSpace::new(h.clone(), SPACE_BYTES);
            src.touch_dirty(0, (pages * PAGE_SIZE) as u64);
            let snap = SnapshotFile::capture(&src, Vec::new());
            let mut spaces = Vec::new();
            for _ in 0..clones {
                let mut s = snap.restore(&h);
                s.touch_dirty(0, PAGE_SIZE as u64);
                spaces.push(s);
            }
        }
        prop_assert_eq!(h.live_frames(), 0);
    }
}
