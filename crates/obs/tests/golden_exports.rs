//! Golden-file tests: exporter output is asserted byte-for-byte.
//!
//! The scenario below is pure virtual time, so its exports must never
//! drift between runs or hosts. To regenerate the goldens after an
//! intentional format change, run with `BLESS=1`:
//! `BLESS=1 cargo test -p fireworks-obs --test golden_exports`.

use fireworks_obs::{cat, export, json, Obs};
use fireworks_sim::trace::Phase;
use fireworks_sim::{Clock, Nanos};

const GOLDEN_JSONL: &str = include_str!("golden/invocation.jsonl");
const GOLDEN_CHROME: &str = include_str!("golden/invocation.chrome.json");
const GOLDEN_METRICS: &str = include_str!("golden/metrics.json");

/// A miniature invocation timeline touching every event kind: nested
/// spans with phases and attributes, an instant fault event, and all
/// three metric types.
fn scenario() -> Obs {
    let clock = Clock::new();
    let obs = Obs::new(clock.clone());
    let rec = obs.recorder();

    let invoke = rec.start("invoke", cat::INVOKE);
    rec.attr(invoke, "function", "fact");

    let restore = rec.start_phase("snapshot_restore", cat::RESTORE, Phase::Startup);
    rec.scope("page_verify", cat::RESTORE, || {
        clock.advance(Nanos::from_micros(320));
    });
    rec.instant("fault:snapshot_read", cat::FAULT);
    rec.scope("map_pages", cat::RESTORE, || {
        clock.advance(Nanos::from_micros(180));
    });
    rec.attr(restore, "pages", 11_264u64);
    rec.end(restore);

    rec.scope_phase("reap_prefetch", cat::PREFETCH, Phase::Exec, || {
        clock.advance(Nanos::from_micros(250));
    });
    rec.scope_phase("exec", cat::EXEC, Phase::Exec, || {
        clock.advance(Nanos::from_millis(2));
    });
    rec.end(invoke);

    let m = obs.metrics();
    m.inc("core.cache.hits", &[]);
    m.add("microvm.restore.pages_verified", &[], 11_264);
    m.inc("core.recovery.restore_retries", &[("function", "fact")]);
    m.gauge_set(
        "guestmem.clone.pss_bytes",
        &[("function", "fact")],
        9_437_184,
    );
    m.register_histogram("core.invoke.latency_ns", &[1_000_000, 10_000_000]);
    m.observe("core.invoke.latency_ns", &[], 2_750_000);
    obs
}

fn check(name: &str, golden_path: &str, golden: &str, actual: &str) {
    if std::env::var_os("BLESS").is_some() {
        let path = format!("{}/tests/{golden_path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    assert_eq!(
        actual, golden,
        "{name} drifted from tests/{golden_path}; if intentional, regenerate with BLESS=1"
    );
}

#[test]
fn jsonl_export_matches_golden_bytes() {
    let obs = scenario();
    let out = export::jsonl(obs.recorder());
    for line in out.lines() {
        json::validate(line).expect("every JSONL line is valid JSON");
    }
    check(
        "JSONL export",
        "golden/invocation.jsonl",
        GOLDEN_JSONL,
        &out,
    );
}

#[test]
fn chrome_trace_export_matches_golden_bytes() {
    let obs = scenario();
    let out = export::chrome_trace(&[("fireworks", obs.recorder())]);
    json::validate(&out).expect("chrome trace is valid JSON");
    check(
        "Chrome trace export",
        "golden/invocation.chrome.json",
        GOLDEN_CHROME,
        &out,
    );
}

#[test]
fn metrics_snapshot_json_matches_golden_bytes() {
    let obs = scenario();
    let out = obs.metrics().snapshot().to_json();
    json::validate(&out).expect("metrics JSON is valid");
    check("metrics JSON", "golden/metrics.json", GOLDEN_METRICS, &out);
}

#[test]
fn scenario_is_reproducible() {
    let a = scenario();
    let b = scenario();
    assert_eq!(export::jsonl(a.recorder()), export::jsonl(b.recorder()));
    assert_eq!(
        a.metrics().snapshot().to_json(),
        b.metrics().snapshot().to_json()
    );
}
