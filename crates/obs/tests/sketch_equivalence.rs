//! Sketch-vs-exact equivalence on a million samples.
//!
//! The bench sweeps replaced collect-and-sort percentiles with
//! `LogHistogram`. The contract that makes the swap safe: for any
//! quantile, the sketch answers with the upper bound of the bucket the
//! exact nearest-rank answer lives in — never below the exact value and
//! never more than one sub-bucket (2⁻⁵ relative error) above it — and
//! sharded sketches merge to exactly the single-stream sketch.

use fireworks_obs::LogHistogram;

const SAMPLES: usize = 1 << 20;
const QUANTILES: [f64; 5] = [50.0, 90.0, 99.0, 99.9, 100.0];

/// Deterministic 64-bit LCG whose output is right-shifted by a varying
/// amount so the stream spans many orders of magnitude — every bucket
/// geometry regime (dense sub-unit, full mantissa, wide-shift tail)
/// gets populated.
fn samples() -> Vec<u64> {
    let mut x = 0x2545f4914f6cdd1du64;
    (0..SAMPLES)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> (x % 50)
        })
        .collect()
}

fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[test]
fn sketch_quantiles_match_exact_within_one_bucket_on_a_million_samples() {
    let data = samples();
    let mut sketch = LogHistogram::new();
    for &v in &data {
        sketch.observe(v);
    }
    let mut sorted = data;
    sorted.sort_unstable();
    assert_eq!(sketch.count(), SAMPLES as u64);
    assert_eq!(sketch.min(), Some(sorted[0]));
    assert_eq!(sketch.max(), Some(*sorted.last().unwrap()));
    for q in QUANTILES {
        let exact = exact_nearest_rank(&sorted, q);
        let s = sketch.quantile(q);
        let one_bucket_above = exact.saturating_add(exact / 32).saturating_add(1);
        assert!(
            exact <= s && s <= one_bucket_above,
            "q={q}: sketch {s} outside [{exact}, {one_bucket_above}]"
        );
    }
}

#[test]
fn sharded_sketches_merge_to_the_single_stream_sketch() {
    let data = samples();
    let mut whole = LogHistogram::new();
    for &v in &data {
        whole.observe(v);
    }
    let mut merged = LogHistogram::new();
    for shard in data.chunks(SAMPLES / 8) {
        let mut s = LogHistogram::new();
        for &v in shard {
            s.observe(v);
        }
        merged.merge(&s);
    }
    assert_eq!(merged, whole, "merge must be exact, not approximate");
    for q in QUANTILES {
        assert_eq!(merged.quantile(q), whole.quantile(q));
    }
}
