//! Mergeable log-bucketed streaming histograms for constant-memory
//! percentiles (HDR-histogram style).
//!
//! The collect-then-sort percentile path keeps every sample alive until
//! the end of a run — at ROADMAP item 1's scale (64–256 hosts, millions
//! of invocations) that is gigabytes of `Vec<u64>`. A [`LogHistogram`]
//! instead buckets each sample by its binary order of magnitude plus
//! [`SUB_BITS`] bits of mantissa, so memory is bounded by the bucket
//! table (≤ [`MAX_BUCKETS`] `u64`s) regardless of sample count, and the
//! relative quantile error is bounded by the sub-bucket width:
//! `2^-SUB_BITS` ≈ 3.1%.
//!
//! Two sketches with the *same fixed geometry* merge by element-wise
//! addition, which is exactly what per-host sketches rolled up
//! cluster-wide need. Geometry is a compile-time constant (no
//! configuration), so merges can never silently mix incompatible
//! bucketings.
//!
//! Quantiles use the nearest-rank definition (`rank = ceil(q/100 · n)`)
//! and report the *upper bound* of the bucket holding that rank, so the
//! reported value is always ≥ the true sample and within one bucket
//! width of it. Values below `2^(SUB_BITS)` are exact (one bucket per
//! integer).

/// Number of mantissa bits kept per octave: each power-of-two range is
/// split into `2^SUB_BITS` equal sub-buckets.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave.
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Upper bound on the bucket table length for `u64` values: one exact
/// sub-range plus one octave of sub-buckets for each of the
/// `64 - SUB_BITS` remaining high-bit positions.
pub const MAX_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_COUNT;

/// Index of the bucket holding `v`.
///
/// Values `< 2^SUB_BITS` get one bucket each (exact). Larger values map
/// to `(h - SUB_BITS + 1) * SUB_COUNT + mantissa`, where `h` is the
/// position of the highest set bit and `mantissa` is the next
/// `SUB_BITS` bits.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let h = 63 - v.leading_zeros();
    let shift = h - SUB_BITS;
    let mantissa = ((v >> shift) as usize) - SUB_COUNT;
    (shift as usize + 1) * SUB_COUNT + mantissa
}

/// Largest value mapping to bucket `idx` (the value the sketch reports
/// for ranks landing in that bucket).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_COUNT {
        return idx as u64;
    }
    let shift = (idx / SUB_COUNT - 1) as u32;
    let mantissa = (idx % SUB_COUNT + SUB_COUNT) as u64;
    // Floor of the bucket plus its width minus one.
    (mantissa << shift) + ((1u64 << shift) - 1)
}

/// A constant-memory streaming histogram over `u64` samples with
/// bounded relative error and exact element-wise merging.
///
/// # Examples
///
/// ```
/// use fireworks_obs::sketch::LogHistogram;
///
/// let mut a = LogHistogram::new();
/// let mut b = LogHistogram::new();
/// for v in 0..500_000u64 {
///     a.observe(v);
///     b.observe(v + 500_000);
/// }
/// a.merge(&b);
/// assert_eq!(a.count(), 1_000_000);
/// let p50 = a.quantile(50.0);
/// // Within one sub-bucket (3.125%) of the exact median.
/// assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.04);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sparse-tail bucket table; indices past `buckets.len()` are zero.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self`. Geometry is fixed, so
    /// any two sketches merge exactly (the merged sketch equals the
    /// sketch of the concatenated streams).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        (self.sum / u128::from(self.count)) as u64
    }

    /// The `q`-th percentile (`0 < q ≤ 100`) under the nearest-rank
    /// definition, reported as the holding bucket's upper bound and
    /// clamped to the observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_COUNT as u64 {
            h.observe(v);
        }
        for v in 0..SUB_COUNT as u64 {
            let q = (v + 1) as f64 * 100.0 / SUB_COUNT as f64;
            assert_eq!(h.quantile(q), v, "q={q}");
        }
    }

    #[test]
    fn bucket_round_trip_bounds_error() {
        for v in [
            0,
            1,
            31,
            32,
            33,
            1000,
            4095,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "v={v} upper={upper}");
            // Relative error bound: one sub-bucket width.
            if v >= SUB_COUNT as u64 {
                let err = (upper - v) as f64 / v as f64;
                assert!(err <= 1.0 / SUB_COUNT as f64, "v={v} err={err}");
            } else {
                assert_eq!(upper, v);
            }
        }
    }

    #[test]
    fn bucket_indices_are_monotone_and_bounded() {
        let mut last = 0usize;
        for h in 0..64u32 {
            let v = 1u64 << h;
            let idx = bucket_index(v);
            assert!(idx >= last);
            assert!(idx < MAX_BUCKETS);
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < MAX_BUCKETS);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = x >> 40;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_sketch_is_well_behaved() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(50.0), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let mut m = LogHistogram::new();
        m.merge(&h);
        assert!(m.is_empty());
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut h = LogHistogram::new();
        h.observe(1_000);
        assert_eq!(h.quantile(50.0), 1_000);
        assert_eq!(h.quantile(100.0), 1_000);
        assert_eq!(h.quantile(0.0), 1_000, "rank clamps to 1");
    }
}
