//! Unified observability plane for the Fireworks simulation.
//!
//! The paper's core claims are latency *breakdowns* (Figs. 6/7/9 split
//! start-up vs exec vs others) and memory *attribution* (PSS/RSS sharing
//! in Fig. 11). The flat three-phase [`fireworks_sim::trace::Trace`] can
//! report those totals, but it cannot see *inside* a restore (checksum
//! verify vs page mapping vs REAP prefetch), attribute a cache eviction,
//! or correlate an injected fault with the recovery latency it caused.
//! This crate is the measurement substrate for all of that:
//!
//! - [`Recorder`] — hierarchical spans over virtual time. Spans have
//!   parent/child [`SpanId`]s, a category (see [`cat`]), typed
//!   [`AttrValue`] attributes, and an optional
//!   [`fireworks_sim::trace::Phase`]; [`Recorder::breakdown`] folds them
//!   into the same [`fireworks_sim::trace::Breakdown`] the paper's
//!   figures use (self-time attribution, so nesting never double-counts).
//! - [`Metrics`] — a deterministic registry of counters, gauges, and
//!   fixed-bucket histograms keyed by `&'static str` names plus label
//!   pairs, with a [`Metrics::snapshot`] for tests and benches. Names
//!   follow the `layer.component.event` convention (see DESIGN.md).
//! - [`export`] — a JSONL event log and a Chrome trace-event file
//!   (loadable in `chrome://tracing` or Perfetto), both keyed to virtual
//!   nanoseconds and byte-for-byte deterministic for a given schedule.
//!
//! Everything is single-threaded simulation state: handles are cheap
//! clones sharing one interior-mutable core, exactly like
//! [`fireworks_sim::Clock`].
//!
//! # Examples
//!
//! ```
//! use fireworks_obs::{cat, Obs};
//! use fireworks_sim::trace::Phase;
//! use fireworks_sim::{Clock, Nanos};
//!
//! let clock = Clock::new();
//! let obs = Obs::new(clock.clone());
//! let rec = obs.recorder();
//!
//! let boot = rec.start_phase("vm_boot", cat::BOOT, Phase::Startup);
//! rec.scope("kernel_boot", cat::BOOT, || {
//!     clock.advance(Nanos::from_millis(125));
//! });
//! rec.attr(boot, "os_pages", 18_432u64);
//! rec.end(boot);
//!
//! obs.metrics().inc("microvm.manager.boots", &[]);
//! assert_eq!(obs.metrics().snapshot().counter("microvm.manager.boots", &[]), 1);
//! assert_eq!(rec.breakdown().startup, Nanos::from_millis(125));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod export;
pub mod json;
pub mod metrics;
pub mod sketch;
pub mod span;

pub use attribution::{
    classify, slo_burn, Attribution, CriticalHop, PhaseClass, RequestTrace, SloReport, TraceForest,
};
pub use metrics::{BatchedCounter, Counter, Gauge, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use sketch::LogHistogram;
pub use span::{
    cat, AttrValue, Event, InstantRecord, Recorder, SpanContext, SpanId, SpanRecord, TraceId,
};

use fireworks_sim::Clock;

/// The pair of observability handles one platform (or one simulated
/// host) carries: a span [`Recorder`] and a [`Metrics`] registry.
///
/// Cloning an `Obs` clones handles to the *same* recorder and registry,
/// so every layer a platform wires it into appends to one timeline.
#[derive(Debug, Clone)]
pub struct Obs {
    recorder: Recorder,
    metrics: Metrics,
}

impl Obs {
    /// Creates a recorder (timestamping on `clock`) and an empty registry.
    pub fn new(clock: Clock) -> Self {
        Obs {
            recorder: Recorder::new(clock),
            metrics: Metrics::new(),
        }
    }

    /// The span recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}
