//! Deterministic metrics registry: counters, gauges, and fixed-bucket
//! histograms keyed by `&'static str` names plus label pairs.
//!
//! Hot paths should resolve a [`Counter`] or [`Gauge`] handle once (one
//! key allocation + map lookup) and then update through it — a handle
//! update is a single `Cell` store, with no allocation and no lookup.
//! Per-event paths (page faults, packets) can go one step further with
//! [`Counter::batched`], which buffers increments locally and flushes
//! them to the shared series in one update. The by-name
//! [`Metrics::inc`] / [`Metrics::gauge_set`] entry points remain for
//! cold paths and one-off writes.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Default histogram bucket upper bounds, in nanoseconds: 1µs to 10s in
/// decades. Chosen so one set of buckets covers everything from a page
/// fault (~11µs) to a circuit-breaker cooldown (10s).
pub const DEFAULT_BOUNDS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A metric identity: static name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
        labels.sort();
        MetricKey { name, labels }
    }

    /// Rendered form: `name` or `name{k=v,k2=v2}` with sorted labels.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut out = String::from(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push('}');
        out
    }
}

fn render_key(name: &'static str, labels: &[(&'static str, &str)]) -> String {
    MetricKey::new(name, labels).render()
}

#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<u64>,
    /// One count per bound, plus a trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Histogram {
    fn new(bounds: Vec<u64>) -> Self {
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            count: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<MetricKey, Rc<Cell<u64>>>,
    gauges: BTreeMap<MetricKey, Rc<Cell<i64>>>,
    histograms: BTreeMap<MetricKey, Histogram>,
    /// Registered bucket bounds by metric name; unregistered names fall
    /// back to [`DEFAULT_BOUNDS`].
    bounds: BTreeMap<&'static str, Vec<u64>>,
}

/// A pre-resolved counter series: updates are a single `Cell` store.
///
/// Obtained from [`Metrics::counter`]; clones share the series. The
/// handle stays live after snapshots — it points at the same cell the
/// registry renders.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Rc<Cell<u64>>,
}

impl Counter {
    /// Increments by 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cell.set(self.cell.get().wrapping_add(delta));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.get()
    }

    /// Wraps this handle in a write buffer for per-event hot paths.
    pub fn batched(&self) -> BatchedCounter {
        BatchedCounter {
            shared: self.clone(),
            pending: Cell::new(0),
        }
    }
}

/// A write-buffered [`Counter`]: increments accumulate in a private
/// cell and reach the shared series only on [`BatchedCounter::flush`]
/// (or drop). On paths that increment per page fault or per packet this
/// turns N shared-registry updates into one, at the cost that snapshots
/// taken mid-batch miss the unflushed tail — flush before exporting.
#[derive(Debug)]
pub struct BatchedCounter {
    shared: Counter,
    pending: Cell<u64>,
}

impl BatchedCounter {
    /// Buffers an increment of 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Buffers an increment of `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.pending.set(self.pending.get().wrapping_add(delta));
    }

    /// Increments buffered since the last flush.
    pub fn pending(&self) -> u64 {
        self.pending.get()
    }

    /// Pushes the buffered increments to the shared series.
    pub fn flush(&self) {
        let pending = self.pending.replace(0);
        if pending > 0 {
            self.shared.add(pending);
        }
    }
}

impl Drop for BatchedCounter {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A pre-resolved gauge series: updates are a single `Cell` store.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Rc<Cell<i64>>,
}

impl Gauge {
    /// Sets the gauge (last write wins).
    #[inline]
    pub fn set(&self, value: i64) {
        self.cell.set(value);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.get()
    }
}

/// A registry of counters, gauges, and fixed-bucket histograms.
///
/// Handles are cheap clones sharing one interior-mutable store, like
/// [`fireworks_sim::Clock`]. All iteration is over [`BTreeMap`]s, so
/// snapshots and exports are deterministic regardless of insertion
/// order.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<MetricsInner>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments a counter by 1.
    pub fn inc(&self, name: &'static str, labels: &[(&'static str, &str)]) {
        self.add(name, labels, 1);
    }

    /// Increments a counter by `delta`.
    pub fn add(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        self.counter(name, labels).add(delta);
    }

    /// Resolves (creating if absent) a [`Counter`] handle for the
    /// series. Resolve once, then update through the handle on hot
    /// paths.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let cell = Rc::clone(self.inner.borrow_mut().counters.entry(key).or_default());
        Counter { cell }
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &'static str, labels: &[(&'static str, &str)], value: i64) {
        self.gauge(name, labels).set(value);
    }

    /// Resolves (creating if absent, initialized to 0) a [`Gauge`]
    /// handle for the series.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let cell = Rc::clone(self.inner.borrow_mut().gauges.entry(key).or_default());
        Gauge { cell }
    }

    /// Registers custom bucket bounds for histogram `name` and creates
    /// the unlabeled series empty, so a registered histogram exports
    /// (with zero samples) even if nothing is ever observed. Must be
    /// called before the first [`Metrics::observe`] of that name;
    /// existing series keep the bounds they were created with.
    pub fn register_histogram(&self, name: &'static str, bounds: &[u64]) {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut inner = self.inner.borrow_mut();
        inner
            .histograms
            .entry(MetricKey::new(name, &[]))
            .or_insert_with(|| Histogram::new(sorted.clone()));
        inner.bounds.insert(name, sorted);
    }

    /// Records one observation into histogram `name`. The value lands in
    /// the first bucket whose upper bound is `>= value`, else overflow.
    pub fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.borrow_mut();
        let bounds = inner
            .bounds
            .get(name)
            .cloned()
            .unwrap_or_else(|| DEFAULT_BOUNDS.to_vec());
        inner
            .histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// A point-in-time copy of every series, for assertions and export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.render(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.render(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.render(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            count: h.count,
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A frozen copy of one histogram series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the trailing entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u128,
}

/// A frozen, deterministic copy of a [`Metrics`] registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 if the series was never written.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> u64 {
        self.counters
            .get(&render_key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Gauge value, or `None` if never set.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Option<i64> {
        self.gauges.get(&render_key(name, labels)).copied()
    }

    /// Histogram series, or `None` if it has no observations.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.histograms.get(&render_key(name, labels))
    }

    /// All counters, by rendered key, sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, by rendered key, sorted.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Whether the snapshot holds no series at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Compact deterministic JSON:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", crate::json::escape(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", crate::json::escape(k));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{\"bounds\":[", crate::json::escape(k));
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"count\":{},\"sum\":{}}}", h.count, h.sum);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = Metrics::new();
        m.inc("core.cache.hits", &[]);
        m.inc("core.cache.hits", &[]);
        m.add("store.docstore.requests", &[("op", "get")], 3);
        m.inc("store.docstore.requests", &[("op", "put")]);
        let s = m.snapshot();
        assert_eq!(s.counter("core.cache.hits", &[]), 2);
        assert_eq!(s.counter("store.docstore.requests", &[("op", "get")]), 3);
        assert_eq!(s.counter("store.docstore.requests", &[("op", "put")]), 1);
        assert_eq!(s.counter("store.docstore.requests", &[("op", "scan")]), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let m = Metrics::new();
        m.inc("net.host.drops", &[("ns", "1"), ("proto", "udp")]);
        m.inc("net.host.drops", &[("proto", "udp"), ("ns", "1")]);
        let s = m.snapshot();
        assert_eq!(
            s.counter("net.host.drops", &[("ns", "1"), ("proto", "udp")]),
            2
        );
    }

    #[test]
    fn gauges_keep_the_last_write() {
        let m = Metrics::new();
        m.gauge_set("guestmem.clone.pss_bytes", &[("function", "fact")], 900);
        m.gauge_set("guestmem.clone.pss_bytes", &[("function", "fact")], 750);
        let s = m.snapshot();
        assert_eq!(
            s.gauge("guestmem.clone.pss_bytes", &[("function", "fact")]),
            Some(750)
        );
        assert_eq!(
            s.gauge("guestmem.clone.pss_bytes", &[("function", "mapper")]),
            None
        );
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let m = Metrics::new();
        m.register_histogram("lat", &[10, 100, 1_000]);
        // Exactly on a bound lands in that bucket; one past it spills over.
        for v in [0, 10, 11, 100, 101, 1_000, 1_001, u64::MAX] {
            m.observe("lat", &[], v);
        }
        let s = m.snapshot();
        let h = s.histogram("lat", &[]).expect("observed");
        assert_eq!(h.bounds, vec![10, 100, 1_000]);
        assert_eq!(h.counts, vec![2, 2, 2, 2], "<=10, <=100, <=1000, overflow");
        assert_eq!(h.count, 8);
        assert_eq!(
            h.sum,
            10 + 11 + 100 + 101 + 1_000 + 1_001 + u128::from(u64::MAX)
        );
    }

    #[test]
    fn default_bounds_cover_microseconds_to_seconds() {
        let m = Metrics::new();
        m.observe("core.invoke.latency_ns", &[], 11_000); // 11µs page fault
        m.observe("core.invoke.latency_ns", &[], 10_000_000_000); // 10s cooldown
        m.observe("core.invoke.latency_ns", &[], 10_000_000_001); // overflow
        let s = m.snapshot();
        let h = s.histogram("core.invoke.latency_ns", &[]).unwrap();
        assert_eq!(h.bounds, DEFAULT_BOUNDS.to_vec());
        assert_eq!(h.counts.len(), DEFAULT_BOUNDS.len() + 1);
        assert_eq!(h.counts[DEFAULT_BOUNDS.len()], 1, "one overflow");
        assert_eq!(h.count, 3);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let m = Metrics::new();
        m.inc("z.last", &[]);
        m.inc("a.first", &[]);
        m.gauge_set("mid.gauge", &[], -5);
        m.register_histogram("h", &[1, 2]);
        m.observe("h", &[], 2);
        let json = m.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.first\":1,\"z.last\":1},\"gauges\":{\"mid.gauge\":-5},\
             \"histograms\":{\"h\":{\"bounds\":[1,2],\"counts\":[0,1,0],\"count\":1,\"sum\":2}}}"
        );
        crate::json::validate(&json).expect("well-formed");
        assert_eq!(json, m.snapshot().to_json(), "stable across snapshots");
    }

    #[test]
    fn clones_share_one_store() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.inc("shared", &[]);
        assert_eq!(m.snapshot().counter("shared", &[]), 1);
    }

    #[test]
    fn batched_counter_flushes_explicitly_and_on_drop() {
        let m = Metrics::new();
        let batched = m.counter("microvm.reap.major_faults", &[]).batched();
        for _ in 0..5 {
            batched.inc();
        }
        batched.add(3);
        assert_eq!(batched.pending(), 8);
        assert_eq!(
            m.snapshot().counter("microvm.reap.major_faults", &[]),
            0,
            "increments stay local until flushed"
        );
        batched.flush();
        assert_eq!(batched.pending(), 0);
        assert_eq!(m.snapshot().counter("microvm.reap.major_faults", &[]), 8);
        batched.inc();
        drop(batched);
        assert_eq!(
            m.snapshot().counter("microvm.reap.major_faults", &[]),
            9,
            "drop flushes the tail"
        );
    }

    #[test]
    fn counter_handles_share_the_series_with_by_name_writes() {
        let m = Metrics::new();
        let h = m.counter("engine.completions", &[("host", "0")]);
        h.inc();
        h.add(4);
        m.inc("engine.completions", &[("host", "0")]);
        assert_eq!(h.get(), 6);
        assert_eq!(
            m.snapshot().counter("engine.completions", &[("host", "0")]),
            6
        );
        let again = m.counter("engine.completions", &[("host", "0")]);
        again.inc();
        assert_eq!(h.get(), 7, "re-resolving returns the same cell");
    }

    #[test]
    fn gauge_handles_share_the_series() {
        let m = Metrics::new();
        let g = m.gauge("engine.inflight", &[]);
        g.set(3);
        m.gauge_set("engine.inflight", &[], 9);
        assert_eq!(g.get(), 9);
        assert_eq!(m.snapshot().gauge("engine.inflight", &[]), Some(9));
    }

    #[test]
    fn registered_histograms_export_with_zero_samples() {
        let m = Metrics::new();
        m.register_histogram("never.observed", &[5, 50]);
        let s = m.snapshot();
        let h = s.histogram("never.observed", &[]).expect("series exists");
        assert_eq!(h.count, 0);
        assert_eq!(h.counts, vec![0, 0, 0]);
        assert_eq!(h.sum, 0);
        crate::json::validate(&s.to_json()).expect("zero-sample series render validly");
    }
}
