//! Deterministic metrics registry: counters, gauges, and fixed-bucket
//! histograms keyed by `&'static str` names plus label pairs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Default histogram bucket upper bounds, in nanoseconds: 1µs to 10s in
/// decades. Chosen so one set of buckets covers everything from a page
/// fault (~11µs) to a circuit-breaker cooldown (10s).
pub const DEFAULT_BOUNDS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A metric identity: static name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
        labels.sort();
        MetricKey { name, labels }
    }

    /// Rendered form: `name` or `name{k=v,k2=v2}` with sorted labels.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut out = String::from(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}={v}");
        }
        out.push('}');
        out
    }
}

fn render_key(name: &'static str, labels: &[(&'static str, &str)]) -> String {
    MetricKey::new(name, labels).render()
}

#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<u64>,
    /// One count per bound, plus a trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Histogram {
    fn new(bounds: Vec<u64>) -> Self {
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            count: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += u128::from(value);
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, i64>,
    histograms: BTreeMap<MetricKey, Histogram>,
    /// Registered bucket bounds by metric name; unregistered names fall
    /// back to [`DEFAULT_BOUNDS`].
    bounds: BTreeMap<&'static str, Vec<u64>>,
}

/// A registry of counters, gauges, and fixed-bucket histograms.
///
/// Handles are cheap clones sharing one interior-mutable store, like
/// [`fireworks_sim::Clock`]. All iteration is over [`BTreeMap`]s, so
/// snapshots and exports are deterministic regardless of insertion
/// order.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Rc<RefCell<MetricsInner>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments a counter by 1.
    pub fn inc(&self, name: &'static str, labels: &[(&'static str, &str)]) {
        self.add(name, labels, 1);
    }

    /// Increments a counter by `delta`.
    pub fn add(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        *self.inner.borrow_mut().counters.entry(key).or_insert(0) += delta;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &'static str, labels: &[(&'static str, &str)], value: i64) {
        let key = MetricKey::new(name, labels);
        self.inner.borrow_mut().gauges.insert(key, value);
    }

    /// Registers custom bucket bounds for histogram `name`. Must be
    /// called before the first [`Metrics::observe`] of that name;
    /// existing series keep the bounds they were created with.
    pub fn register_histogram(&self, name: &'static str, bounds: &[u64]) {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.inner.borrow_mut().bounds.insert(name, sorted);
    }

    /// Records one observation into histogram `name`. The value lands in
    /// the first bucket whose upper bound is `>= value`, else overflow.
    pub fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.borrow_mut();
        let bounds = inner
            .bounds
            .get(name)
            .cloned()
            .unwrap_or_else(|| DEFAULT_BOUNDS.to_vec());
        inner
            .histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// A point-in-time copy of every series, for assertions and export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| (k.render(), v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.render(), v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.render(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            count: h.count,
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A frozen copy of one histogram series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; the trailing entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u128,
}

/// A frozen, deterministic copy of a [`Metrics`] registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 if the series was never written.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> u64 {
        self.counters
            .get(&render_key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Gauge value, or `None` if never set.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Option<i64> {
        self.gauges.get(&render_key(name, labels)).copied()
    }

    /// Histogram series, or `None` if it has no observations.
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Option<&HistogramSnapshot> {
        self.histograms.get(&render_key(name, labels))
    }

    /// All counters, by rendered key, sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, by rendered key, sorted.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Whether the snapshot holds no series at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Compact deterministic JSON:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", crate::json::escape(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", crate::json::escape(k));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{\"bounds\":[", crate::json::escape(k));
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"count\":{},\"sum\":{}}}", h.count, h.sum);
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = Metrics::new();
        m.inc("core.cache.hits", &[]);
        m.inc("core.cache.hits", &[]);
        m.add("store.docstore.requests", &[("op", "get")], 3);
        m.inc("store.docstore.requests", &[("op", "put")]);
        let s = m.snapshot();
        assert_eq!(s.counter("core.cache.hits", &[]), 2);
        assert_eq!(s.counter("store.docstore.requests", &[("op", "get")]), 3);
        assert_eq!(s.counter("store.docstore.requests", &[("op", "put")]), 1);
        assert_eq!(s.counter("store.docstore.requests", &[("op", "scan")]), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let m = Metrics::new();
        m.inc("net.host.drops", &[("ns", "1"), ("proto", "udp")]);
        m.inc("net.host.drops", &[("proto", "udp"), ("ns", "1")]);
        let s = m.snapshot();
        assert_eq!(
            s.counter("net.host.drops", &[("ns", "1"), ("proto", "udp")]),
            2
        );
    }

    #[test]
    fn gauges_keep_the_last_write() {
        let m = Metrics::new();
        m.gauge_set("guestmem.clone.pss_bytes", &[("function", "fact")], 900);
        m.gauge_set("guestmem.clone.pss_bytes", &[("function", "fact")], 750);
        let s = m.snapshot();
        assert_eq!(
            s.gauge("guestmem.clone.pss_bytes", &[("function", "fact")]),
            Some(750)
        );
        assert_eq!(
            s.gauge("guestmem.clone.pss_bytes", &[("function", "mapper")]),
            None
        );
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let m = Metrics::new();
        m.register_histogram("lat", &[10, 100, 1_000]);
        // Exactly on a bound lands in that bucket; one past it spills over.
        for v in [0, 10, 11, 100, 101, 1_000, 1_001, u64::MAX] {
            m.observe("lat", &[], v);
        }
        let s = m.snapshot();
        let h = s.histogram("lat", &[]).expect("observed");
        assert_eq!(h.bounds, vec![10, 100, 1_000]);
        assert_eq!(h.counts, vec![2, 2, 2, 2], "<=10, <=100, <=1000, overflow");
        assert_eq!(h.count, 8);
        assert_eq!(
            h.sum,
            10 + 11 + 100 + 101 + 1_000 + 1_001 + u128::from(u64::MAX)
        );
    }

    #[test]
    fn default_bounds_cover_microseconds_to_seconds() {
        let m = Metrics::new();
        m.observe("core.invoke.latency_ns", &[], 11_000); // 11µs page fault
        m.observe("core.invoke.latency_ns", &[], 10_000_000_000); // 10s cooldown
        m.observe("core.invoke.latency_ns", &[], 10_000_000_001); // overflow
        let s = m.snapshot();
        let h = s.histogram("core.invoke.latency_ns", &[]).unwrap();
        assert_eq!(h.bounds, DEFAULT_BOUNDS.to_vec());
        assert_eq!(h.counts.len(), DEFAULT_BOUNDS.len() + 1);
        assert_eq!(h.counts[DEFAULT_BOUNDS.len()], 1, "one overflow");
        assert_eq!(h.count, 3);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let m = Metrics::new();
        m.inc("z.last", &[]);
        m.inc("a.first", &[]);
        m.gauge_set("mid.gauge", &[], -5);
        m.register_histogram("h", &[1, 2]);
        m.observe("h", &[], 2);
        let json = m.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.first\":1,\"z.last\":1},\"gauges\":{\"mid.gauge\":-5},\
             \"histograms\":{\"h\":{\"bounds\":[1,2],\"counts\":[0,1,0],\"count\":1,\"sum\":2}}}"
        );
        crate::json::validate(&json).expect("well-formed");
        assert_eq!(json, m.snapshot().to_json(), "stable across snapshots");
    }

    #[test]
    fn clones_share_one_store() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.inc("shared", &[]);
        assert_eq!(m.snapshot().counter("shared", &[]), 1);
    }
}
