//! Hierarchical spans and instant events over virtual time.

use std::cell::RefCell;
use std::rc::Rc;

use fireworks_sim::trace::{Breakdown, Phase, Trace};
use fireworks_sim::{Clock, Nanos};

/// Span category names used across the workspace.
///
/// Categories are coarse "which subsystem" tags (Chrome trace-event
/// `cat` fields); the span *name* carries the fine-grained operation.
pub mod cat {
    /// VM lifecycle: VMM setup, kernel boot, guest init, pause/resume.
    pub const BOOT: &str = "boot";
    /// Snapshot restore: file read, checksum verify, page mapping.
    pub const RESTORE: &str = "restore";
    /// REAP working-set prefetching and cold-storage paging.
    pub const PREFETCH: &str = "prefetch";
    /// Snapshot cache lookups, inserts, evictions, quarantines.
    pub const CACHE: &str = "cache";
    /// Host networking: namespaces, NAT, delivery, retransmits.
    pub const NET: &str = "net";
    /// Injected faults (one instant event per injection).
    pub const FAULT: &str = "fault";
    /// Document-store requests and outages.
    pub const STORE: &str = "store";
    /// Guest-memory accounting: CoW sharing, PSS recomputation.
    pub const MEM: &str = "mem";
    /// Snapshot capture (the install-time write).
    pub const SNAPSHOT: &str = "snapshot";
    /// Guest execution: framework path, function body, guest I/O.
    pub const EXEC: &str = "exec";
    /// Top-level platform operations (one root span per invocation).
    pub const INVOKE: &str = "invoke";
    /// Admission queueing: time spent waiting for a slot (host queue or
    /// cluster queue), recorded retroactively at service start.
    pub const QUEUE: &str = "queue";
    /// Router decisions and placement events (zero virtual width).
    pub const ROUTE: &str = "route";
    /// Control-plane artifact movement: drain hand-offs, archive
    /// resurrections, prewarm pulls.
    pub const MIGRATE: &str = "migrate";
}

/// Identifier of one end-to-end request trace. Ids are minted
/// sequentially from 1 by [`Recorder::next_trace_id`]; every span and
/// instant belonging to the request carries the same id, across hosts,
/// so exports can be regrouped into per-request causal trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw id (1-based, dense per recorder).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a trace id from its raw value (for carrying trace
    /// context across API boundaries that serialize it).
    pub fn from_raw(raw: u64) -> Self {
        TraceId(raw)
    }
}

/// Propagated trace context: which trace a downstream operation belongs
/// to and which span caused it. Carried on `InvokeRequest` so platform
/// internals can join the caller's tree even when invoked outside an
/// open span (e.g. a direct blocking `invoke`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The request's trace.
    pub trace: TraceId,
    /// The causing span (becomes the parent of adopted spans).
    pub parent: SpanId,
}

/// Identifier of one recorded span. Ids are assigned sequentially from 1
/// by the [`Recorder`] that created the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id (1-based, dense).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A typed attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (page counts, bytes).
    Uint(u64),
    /// A float (ratios).
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl AttrValue {
    /// Renders the value as a JSON literal.
    pub fn to_json(&self) -> String {
        match self {
            AttrValue::Int(v) => v.to_string(),
            AttrValue::Uint(v) => v.to_string(),
            AttrValue::Float(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            }
            AttrValue::Str(s) => crate::json::escape(s),
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Uint(u64::from(v))
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<Nanos> for AttrValue {
    fn from(v: Nanos) -> Self {
        AttrValue::Uint(v.as_nanos())
    }
}

/// One recorded interval of virtual time.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// The span that was open when this one started, if any.
    pub parent: Option<SpanId>,
    /// Operation name (e.g. `"kernel_boot"`).
    pub name: String,
    /// Subsystem category (see [`cat`]).
    pub category: &'static str,
    /// Latency-breakdown phase, if this span feeds the paper's
    /// three-way split. `None` inherits the nearest phased ancestor.
    pub phase: Option<Phase>,
    /// Virtual start instant.
    pub start: Nanos,
    /// Virtual end instant; `None` while the span is still open.
    pub end: Option<Nanos>,
    /// Typed attributes, in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// The request trace this span belongs to; inherited from the parent
    /// span at open time, `None` for standalone platform work.
    pub trace: Option<TraceId>,
    /// Perfetto flow-event ids this span *starts* (causal edges to spans
    /// on other hosts or later events).
    pub flows_out: Vec<u64>,
    /// Perfetto flow-event ids this span *receives*.
    pub flows_in: Vec<u64>,
}

impl SpanRecord {
    /// Span duration, treating a still-open span as ending at `now`.
    pub fn duration_at(&self, now: Nanos) -> Nanos {
        self.end.unwrap_or(now).max(self.start) - self.start
    }
}

/// A zero-width event (fault injections, cache hits, retransmits).
#[derive(Debug, Clone)]
pub struct InstantRecord {
    /// The span that was open when the event fired, if any.
    pub parent: Option<SpanId>,
    /// Event name (e.g. `"fault:snapshot_read"`).
    pub name: String,
    /// Subsystem category (see [`cat`]).
    pub category: &'static str,
    /// Virtual instant of the event.
    pub at: Nanos,
    /// Typed attributes, in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// The request trace this event belongs to (inherited from the
    /// parent span).
    pub trace: Option<TraceId>,
}

/// One entry of a recorder's event log, in recording order.
#[derive(Debug, Clone)]
pub enum Event {
    /// An interval.
    Span(SpanRecord),
    /// A zero-width event.
    Instant(InstantRecord),
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    /// `events` index of span id `i + 1`.
    span_pos: Vec<usize>,
    /// Stack of currently open spans (innermost last).
    open: Vec<SpanId>,
    /// Trace ids minted so far (the next is `minted_traces + 1`).
    minted_traces: u64,
}

impl Inner {
    fn span_mut(&mut self, id: SpanId) -> &mut SpanRecord {
        let pos = self.span_pos[(id.0 - 1) as usize];
        match &mut self.events[pos] {
            Event::Span(s) => s,
            Event::Instant(_) => unreachable!("span_pos points at spans only"),
        }
    }

    fn span_ref(&self, id: SpanId) -> &SpanRecord {
        let pos = self.span_pos[(id.0 - 1) as usize];
        match &self.events[pos] {
            Event::Span(s) => s,
            Event::Instant(_) => unreachable!("span_pos points at spans only"),
        }
    }

    fn trace_of(&self, id: SpanId) -> Option<TraceId> {
        self.span_ref(id).trace
    }

    /// Appends a span record, wiring the id/position tables. The caller
    /// decides whether it goes on the open stack.
    #[allow(clippy::too_many_arguments)]
    fn push_span(
        &mut self,
        parent: Option<SpanId>,
        name: String,
        category: &'static str,
        phase: Option<Phase>,
        trace: Option<TraceId>,
        start: Nanos,
        end: Option<Nanos>,
    ) -> SpanId {
        let id = SpanId(self.span_pos.len() as u64 + 1);
        let pos = self.events.len();
        self.events.push(Event::Span(SpanRecord {
            id,
            parent,
            name,
            category,
            phase,
            start,
            end,
            attrs: Vec::new(),
            trace,
            flows_out: Vec::new(),
            flows_in: Vec::new(),
        }));
        self.span_pos.push(pos);
        id
    }
}

/// An append-only log of hierarchical spans and instant events, stamped
/// on a virtual [`Clock`].
///
/// The recorder subsumes the flat [`Trace`]: every flat span maps to one
/// recorder span, [`Recorder::ingest_trace`] imports a `Trace` wholesale
/// (zero-width spans become instants — the fault-injector convention),
/// and [`Recorder::breakdown`] reproduces [`Trace::breakdown`] exactly
/// for flat recordings while attributing only *self time* for nested
/// ones, so hierarchy never double-counts.
///
/// Orphan handling: ending a span that has open descendants closes the
/// descendants at the same instant; ending a span that is not open at
/// all is a no-op.
#[derive(Debug, Clone)]
pub struct Recorder {
    clock: Clock,
    inner: Rc<RefCell<Inner>>,
}

impl Recorder {
    /// Creates an empty recorder timestamping on `clock`.
    pub fn new(clock: Clock) -> Self {
        Recorder {
            clock,
            inner: Rc::new(RefCell::new(Inner::default())),
        }
    }

    /// The clock this recorder stamps events with.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn start_impl(&self, name: String, category: &'static str, phase: Option<Phase>) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let parent = inner.open.last().copied();
        let trace = parent.and_then(|p| inner.trace_of(p));
        let id = inner.push_span(parent, name, category, phase, trace, self.clock.now(), None);
        inner.open.push(id);
        id
    }

    /// Mints the next trace id. Sequential per recorder, so seeded runs
    /// mint identical ids for identical request schedules.
    pub fn next_trace_id(&self) -> TraceId {
        let mut inner = self.inner.borrow_mut();
        inner.minted_traces += 1;
        TraceId(inner.minted_traces)
    }

    /// Opens a *detached* request-root span: parent-less, tagged with
    /// `trace`, and **not** pushed on the open stack — so roots of many
    /// interleaved requests can stay open across discrete events without
    /// mis-parenting each other's spans. Close it with
    /// [`Recorder::end_detached`]; attach children explicitly with
    /// [`Recorder::start_under`] / [`Recorder::record_closed_under`].
    pub fn start_detached(
        &self,
        name: impl Into<String>,
        category: &'static str,
        trace: TraceId,
    ) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        inner.push_span(
            None,
            name.into(),
            category,
            None,
            Some(trace),
            self.clock.now(),
            None,
        )
    }

    /// Closes a detached span at the current instant (first close wins;
    /// spans on the open stack should use [`Recorder::end`] instead).
    pub fn end_detached(&self, id: SpanId) {
        let now = self.clock.now();
        let mut inner = self.inner.borrow_mut();
        let span = inner.span_mut(id);
        if span.end.is_none() {
            span.end = Some(now);
        }
    }

    /// Opens a span under an *explicit* parent (inheriting the parent's
    /// trace id) and pushes it on the open stack, so spans opened by
    /// downstream platform code nest underneath it and join the trace.
    pub fn start_under(
        &self,
        parent: SpanId,
        name: impl Into<String>,
        category: &'static str,
    ) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let trace = inner.trace_of(parent);
        let id = inner.push_span(
            Some(parent),
            name.into(),
            category,
            None,
            trace,
            self.clock.now(),
            None,
        );
        inner.open.push(id);
        id
    }

    /// Records an already-measured closed interval under an explicit
    /// parent (inheriting its trace) — e.g. the queueing interval known
    /// only once service starts.
    pub fn record_closed_under(
        &self,
        parent: SpanId,
        name: impl Into<String>,
        category: &'static str,
        phase: Phase,
        start: Nanos,
        end: Nanos,
    ) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let trace = inner.trace_of(parent);
        inner.push_span(
            Some(parent),
            name.into(),
            category,
            Some(phase),
            trace,
            start,
            Some(end.max(start)),
        )
    }

    /// Records a zero-width event under an explicit parent (inheriting
    /// its trace), regardless of what is on the open stack.
    pub fn instant_under(
        &self,
        parent: SpanId,
        name: impl Into<String>,
        category: &'static str,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        let at = self.clock.now();
        let mut inner = self.inner.borrow_mut();
        let trace = inner.trace_of(parent);
        inner.events.push(Event::Instant(InstantRecord {
            parent: Some(parent),
            name: name.into(),
            category,
            at,
            attrs,
            trace,
        }));
    }

    /// The trace a recorded span belongs to, if any.
    pub fn trace_of(&self, id: SpanId) -> Option<TraceId> {
        self.inner.borrow().trace_of(id)
    }

    /// Propagatable context naming `id` as the causal parent; `None` if
    /// the span carries no trace.
    pub fn context_of(&self, id: SpanId) -> Option<SpanContext> {
        self.inner
            .borrow()
            .trace_of(id)
            .map(|trace| SpanContext { trace, parent: id })
    }

    /// Marks span `id` as the *source* of Perfetto flow `flow`.
    pub fn flow_out(&self, id: SpanId, flow: u64) {
        self.inner.borrow_mut().span_mut(id).flows_out.push(flow);
    }

    /// Marks span `id` as a *sink* of Perfetto flow `flow`.
    pub fn flow_in(&self, id: SpanId, flow: u64) {
        self.inner.borrow_mut().span_mut(id).flows_in.push(flow);
    }

    /// Opens a span as a child of the innermost open span.
    pub fn start(&self, name: impl Into<String>, category: &'static str) -> SpanId {
        self.start_impl(name.into(), category, None)
    }

    /// Opens a span carrying a latency-breakdown [`Phase`].
    pub fn start_phase(
        &self,
        name: impl Into<String>,
        category: &'static str,
        phase: Phase,
    ) -> SpanId {
        self.start_impl(name.into(), category, Some(phase))
    }

    /// Closes `id` at the current virtual instant. Open descendants are
    /// closed at the same instant; ending a non-open span is a no-op.
    pub fn end(&self, id: SpanId) {
        let now = self.clock.now();
        let mut inner = self.inner.borrow_mut();
        let Some(depth) = inner.open.iter().rposition(|&s| s == id) else {
            return;
        };
        let to_close: Vec<SpanId> = inner.open.split_off(depth);
        for sid in to_close {
            inner.span_mut(sid).end = Some(now);
        }
    }

    /// Runs `f` inside a span, attributing the virtual time it charges.
    pub fn scope<T>(
        &self,
        name: impl Into<String>,
        category: &'static str,
        f: impl FnOnce() -> T,
    ) -> T {
        let id = self.start(name, category);
        let value = f();
        self.end(id);
        value
    }

    /// Like [`Recorder::scope`] with a latency-breakdown [`Phase`].
    pub fn scope_phase<T>(
        &self,
        name: impl Into<String>,
        category: &'static str,
        phase: Phase,
        f: impl FnOnce() -> T,
    ) -> T {
        let id = self.start_phase(name, category, phase);
        let value = f();
        self.end(id);
        value
    }

    /// Attaches a typed attribute to a recorded span.
    pub fn attr(&self, id: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        self.inner
            .borrow_mut()
            .span_mut(id)
            .attrs
            .push((key, value.into()));
    }

    /// Records a zero-width event under the innermost open span.
    pub fn instant(&self, name: impl Into<String>, category: &'static str) {
        self.instant_with(name, category, Vec::new());
    }

    /// Records a zero-width event with attributes.
    pub fn instant_with(
        &self,
        name: impl Into<String>,
        category: &'static str,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        let at = self.clock.now();
        let mut inner = self.inner.borrow_mut();
        let parent = inner.open.last().copied();
        let trace = parent.and_then(|p| inner.trace_of(p));
        inner.events.push(Event::Instant(InstantRecord {
            parent,
            name: name.into(),
            category,
            at,
            attrs,
            trace,
        }));
    }

    /// The innermost open span, if any.
    pub fn current(&self) -> Option<SpanId> {
        self.inner.borrow().open.last().copied()
    }

    /// Imports a flat [`Trace`] under the innermost open span: zero-width
    /// trace spans (the fault-injector convention) become instants, all
    /// others become closed child spans keeping their phase.
    pub fn ingest_trace(&self, trace: &Trace, category: &'static str) {
        for span in trace.spans() {
            let mut inner = self.inner.borrow_mut();
            let parent = inner.open.last().copied();
            let trace_id = parent.and_then(|p| inner.trace_of(p));
            if span.start == span.end {
                inner.events.push(Event::Instant(InstantRecord {
                    parent,
                    name: span.label.clone(),
                    category,
                    at: span.start,
                    attrs: Vec::new(),
                    trace: trace_id,
                }));
            } else {
                inner.push_span(
                    parent,
                    span.label.clone(),
                    category,
                    Some(span.phase),
                    trace_id,
                    span.start,
                    Some(span.end),
                );
            }
        }
    }

    /// Records an already-measured interval as a closed child of the
    /// innermost open span. Used for retroactive attribution, e.g.
    /// splitting one clock slice into compute and I/O after the run.
    pub fn record_closed(
        &self,
        name: impl Into<String>,
        category: &'static str,
        phase: Phase,
        start: Nanos,
        end: Nanos,
    ) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let parent = inner.open.last().copied();
        let trace = parent.and_then(|p| inner.trace_of(p));
        inner.push_span(
            parent,
            name.into(),
            category,
            Some(phase),
            trace,
            start,
            Some(end.max(start)),
        )
    }

    /// Closes every open span at the current instant (call before
    /// exporting a finished run).
    pub fn finish(&self) {
        let now = self.clock.now();
        let mut inner = self.inner.borrow_mut();
        let to_close: Vec<SpanId> = inner.open.split_off(0);
        for sid in to_close {
            inner.span_mut(sid).end = Some(now);
        }
    }

    /// A snapshot of the event log, in recording order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.borrow().events.clone()
    }

    /// Number of recorded events (spans + instants).
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().events.is_empty()
    }

    /// Folds the recorded spans into the paper's three-way [`Breakdown`].
    ///
    /// Each span contributes its *self time* (duration minus the summed
    /// durations of its direct children) to its phase; spans without a
    /// phase inherit the nearest phased ancestor's. For a flat recording
    /// this equals [`Trace::breakdown`] over the same spans.
    pub fn breakdown(&self) -> Breakdown {
        let now = self.clock.now();
        let inner = self.inner.borrow();
        let n = inner.span_pos.len();
        let mut eff: Vec<Option<Phase>> = vec![None; n];
        let mut child_sum: Vec<Nanos> = vec![Nanos::ZERO; n];
        // Parents always precede children in id order.
        for &pos in &inner.span_pos {
            let Event::Span(s) = &inner.events[pos] else {
                continue;
            };
            let idx = (s.id.0 - 1) as usize;
            eff[idx] = s
                .phase
                .or_else(|| s.parent.and_then(|p| eff[(p.0 - 1) as usize]));
            if let Some(p) = s.parent {
                child_sum[(p.0 - 1) as usize] += s.duration_at(now);
            }
        }
        let mut b = Breakdown::default();
        for &pos in &inner.span_pos {
            let Event::Span(s) = &inner.events[pos] else {
                continue;
            };
            let idx = (s.id.0 - 1) as usize;
            let Some(phase) = eff[idx] else { continue };
            let self_time = s.duration_at(now).saturating_sub(child_sum[idx]);
            match phase {
                Phase::Startup => b.startup += self_time,
                Phase::Exec => b.exec += self_time,
                Phase::Other => b.other += self_time,
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn spans_nest_under_the_open_span() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let root = rec.start("invoke", cat::INVOKE);
        let child = rec.start("snapshot_restore", cat::RESTORE);
        clock.advance(ms(3));
        rec.instant("fault:snapshot_read", cat::FAULT);
        rec.end(child);
        rec.end(root);

        let events = rec.events();
        assert_eq!(events.len(), 3);
        let Event::Span(c) = &events[1] else { panic!() };
        assert_eq!(c.parent, Some(root));
        assert_eq!(c.duration_at(clock.now()), ms(3));
        let Event::Instant(i) = &events[2] else {
            panic!()
        };
        assert_eq!(i.parent, Some(child));
        assert_eq!(i.at, ms(3));
    }

    #[test]
    fn ending_a_parent_closes_open_descendants() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let outer = rec.start("outer", cat::INVOKE);
        let inner = rec.start("inner", cat::EXEC);
        let innermost = rec.start("innermost", cat::EXEC);
        clock.advance(ms(2));
        rec.end(outer); // Closes all three at the same instant.
        assert_eq!(rec.current(), None);
        for ev in rec.events() {
            let Event::Span(s) = ev else { panic!() };
            assert_eq!(s.end, Some(ms(2)), "{}", s.name);
        }
        // Ending an already-closed span is a no-op, not a panic.
        rec.end(inner);
        rec.end(innermost);
    }

    #[test]
    fn ending_a_never_opened_or_foreign_id_is_a_no_op() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let a = rec.start("a", cat::EXEC);
        rec.end(a);
        rec.end(a); // Double-end.
        clock.advance(ms(1));
        let events = rec.events();
        let Event::Span(s) = &events[0] else { panic!() };
        assert_eq!(s.end, Some(Nanos::ZERO), "first end wins");
    }

    #[test]
    fn flat_breakdown_matches_trace_breakdown() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let mut trace = Trace::new();
        for (label, phase, dur) in [
            ("boot", Phase::Startup, 5),
            ("exec", Phase::Exec, 20),
            ("io", Phase::Other, 3),
        ] {
            let t0 = clock.now();
            rec.scope_phase(label, cat::EXEC, phase, || clock.advance(ms(dur)));
            trace.record(label, phase, t0, clock.now());
        }
        assert_eq!(rec.breakdown(), trace.breakdown());
    }

    #[test]
    fn nested_spans_attribute_self_time_only() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let outer = rec.start_phase("startup", cat::BOOT, Phase::Startup);
        clock.advance(ms(2)); // Outer self time.
        rec.scope_phase("verify", cat::RESTORE, Phase::Startup, || {
            clock.advance(ms(3));
        });
        // Unphased child inherits the parent's phase.
        rec.scope("map", cat::RESTORE, || clock.advance(ms(4)));
        rec.end(outer);
        let b = rec.breakdown();
        assert_eq!(b.startup, ms(9), "no double counting");
        assert_eq!(b.exec, Nanos::ZERO);
    }

    #[test]
    fn open_spans_count_up_to_now() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        rec.start_phase("running", cat::EXEC, Phase::Exec);
        clock.advance(ms(7));
        assert_eq!(rec.breakdown().exec, ms(7));
        rec.finish();
        clock.advance(ms(100));
        assert_eq!(rec.breakdown().exec, ms(7), "finish pinned the end");
    }

    #[test]
    fn ingest_trace_maps_zero_width_to_instants() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let mut trace = Trace::new();
        trace.record("fault:net_loss", Phase::Other, ms(1), ms(1));
        trace.record("recovery_backoff", Phase::Startup, ms(1), ms(5));
        let root = rec.start("invoke", cat::INVOKE);
        rec.ingest_trace(&trace, cat::FAULT);
        rec.end(root);
        let events = rec.events();
        let Event::Instant(i) = &events[1] else {
            panic!("zero-width trace span becomes an instant")
        };
        assert_eq!(i.name, "fault:net_loss");
        assert_eq!(i.parent, Some(root));
        let Event::Span(s) = &events[2] else { panic!() };
        assert_eq!(s.phase, Some(Phase::Startup));
        assert_eq!(s.duration_at(clock.now()), ms(4));
        // Ingested spans contribute to the breakdown like native ones.
        assert_eq!(rec.breakdown().startup, ms(4));
    }

    #[test]
    fn record_closed_nests_and_feeds_the_breakdown() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let root = rec.start("invoke", cat::INVOKE);
        clock.advance(ms(10));
        // Retroactively split the last 10 ms into compute and I/O.
        let exec = rec.record_closed("exec", cat::EXEC, Phase::Exec, ms(0), ms(7));
        rec.record_closed("guest_io", cat::EXEC, Phase::Other, ms(7), ms(10));
        rec.end(root);
        let Event::Span(s) = &rec.events()[1] else {
            panic!()
        };
        assert_eq!(s.id, exec);
        assert_eq!(s.parent, Some(root));
        assert_eq!(s.end, Some(ms(7)));
        let b = rec.breakdown();
        assert_eq!(b.exec, ms(7));
        assert_eq!(b.other, ms(3));
        assert_eq!(b.startup, Nanos::ZERO, "root self time is fully covered");
    }

    #[test]
    fn trace_ids_mint_sequentially() {
        let rec = Recorder::new(Clock::new());
        assert_eq!(rec.next_trace_id().raw(), 1);
        assert_eq!(rec.next_trace_id().raw(), 2);
        assert_eq!(TraceId::from_raw(3), rec.next_trace_id());
    }

    #[test]
    fn detached_roots_do_not_capture_interleaved_spans() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let t1 = rec.next_trace_id();
        let t2 = rec.next_trace_id();
        let root1 = rec.start_detached("request", cat::INVOKE, t1);
        let root2 = rec.start_detached("request", cat::INVOKE, t2);
        // A span opened while both roots are "open" must NOT nest under
        // either (they are off the stack).
        let stray = rec.start("background", cat::STORE);
        rec.end(stray);
        clock.advance(ms(5));
        rec.end_detached(root1);
        clock.advance(ms(2));
        rec.end_detached(root2);
        rec.end_detached(root1); // First close wins.
        let events = rec.events();
        let Event::Span(r1) = &events[0] else {
            panic!()
        };
        let Event::Span(r2) = &events[1] else {
            panic!()
        };
        let Event::Span(s) = &events[2] else { panic!() };
        assert_eq!(r1.trace, Some(t1));
        assert_eq!(r2.trace, Some(t2));
        assert_eq!(r1.end, Some(ms(5)));
        assert_eq!(r2.end, Some(ms(7)));
        assert_eq!(s.parent, None, "detached roots never adopt strays");
        assert_eq!(s.trace, None);
    }

    #[test]
    fn start_under_inherits_trace_and_opens_the_stack() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let t = rec.next_trace_id();
        let root = rec.start_detached("request", cat::INVOKE, t);
        let service = rec.start_under(root, "service", cat::INVOKE);
        // Downstream platform code uses the plain stack API and still
        // joins the trace.
        let inner = rec.start("snapshot_restore", cat::RESTORE);
        rec.instant("cache_hit", cat::CACHE);
        clock.advance(ms(4));
        rec.end(inner);
        rec.end(service);
        rec.end_detached(root);
        let events = rec.events();
        let Event::Span(svc) = &events[1] else {
            panic!()
        };
        let Event::Span(restore) = &events[2] else {
            panic!()
        };
        let Event::Instant(hit) = &events[3] else {
            panic!()
        };
        assert_eq!(svc.parent, Some(root));
        assert_eq!(svc.trace, Some(t));
        assert_eq!(restore.parent, Some(service));
        assert_eq!(restore.trace, Some(t), "stack children inherit the trace");
        assert_eq!(hit.trace, Some(t));
        assert_eq!(rec.trace_of(restore.id), Some(t));
        let ctx = rec.context_of(service).unwrap();
        assert_eq!(ctx.trace, t);
        assert_eq!(ctx.parent, service);
    }

    #[test]
    fn record_closed_under_and_instant_under_join_the_trace() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let t = rec.next_trace_id();
        clock.advance(ms(9));
        let root = rec.start_detached("request", cat::INVOKE, t);
        let q = rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, ms(2), ms(9));
        rec.instant_under(root, "rerouted", cat::ROUTE, vec![("host", 3u64.into())]);
        rec.end_detached(root);
        let events = rec.events();
        let Event::Span(queued) = &events[1] else {
            panic!()
        };
        let Event::Instant(i) = &events[2] else {
            panic!()
        };
        assert_eq!(queued.id, q);
        assert_eq!(queued.parent, Some(root));
        assert_eq!(queued.trace, Some(t));
        assert_eq!(queued.start, ms(2));
        assert_eq!(queued.end, Some(ms(9)));
        assert_eq!(i.parent, Some(root));
        assert_eq!(i.trace, Some(t));
    }

    #[test]
    fn flow_edges_attach_to_spans() {
        let rec = Recorder::new(Clock::new());
        let t = rec.next_trace_id();
        let root = rec.start_detached("request", cat::INVOKE, t);
        let service = rec.start_under(root, "service", cat::INVOKE);
        rec.flow_out(root, t.raw());
        rec.flow_in(service, t.raw());
        rec.end(service);
        rec.end_detached(root);
        let events = rec.events();
        let Event::Span(r) = &events[0] else { panic!() };
        let Event::Span(s) = &events[1] else { panic!() };
        assert_eq!(r.flows_out, vec![t.raw()]);
        assert!(r.flows_in.is_empty());
        assert_eq!(s.flows_in, vec![t.raw()]);
    }

    #[test]
    fn attrs_attach_in_order() {
        let rec = Recorder::new(Clock::new());
        let id = rec.start("restore", cat::RESTORE);
        rec.attr(id, "pages", 42u64);
        rec.attr(id, "verified", true);
        rec.attr(id, "function", "fact");
        rec.end(id);
        let Event::Span(s) = &rec.events()[0] else {
            panic!()
        };
        assert_eq!(s.attrs.len(), 3);
        assert_eq!(s.attrs[0], ("pages", AttrValue::Uint(42)));
        assert_eq!(s.attrs[2], ("function", AttrValue::Str("fact".into())));
    }
}
