//! Hierarchical spans and instant events over virtual time.

use std::cell::RefCell;
use std::rc::Rc;

use fireworks_sim::trace::{Breakdown, Phase, Trace};
use fireworks_sim::{Clock, Nanos};

/// Span category names used across the workspace.
///
/// Categories are coarse "which subsystem" tags (Chrome trace-event
/// `cat` fields); the span *name* carries the fine-grained operation.
pub mod cat {
    /// VM lifecycle: VMM setup, kernel boot, guest init, pause/resume.
    pub const BOOT: &str = "boot";
    /// Snapshot restore: file read, checksum verify, page mapping.
    pub const RESTORE: &str = "restore";
    /// REAP working-set prefetching and cold-storage paging.
    pub const PREFETCH: &str = "prefetch";
    /// Snapshot cache lookups, inserts, evictions, quarantines.
    pub const CACHE: &str = "cache";
    /// Host networking: namespaces, NAT, delivery, retransmits.
    pub const NET: &str = "net";
    /// Injected faults (one instant event per injection).
    pub const FAULT: &str = "fault";
    /// Document-store requests and outages.
    pub const STORE: &str = "store";
    /// Guest-memory accounting: CoW sharing, PSS recomputation.
    pub const MEM: &str = "mem";
    /// Snapshot capture (the install-time write).
    pub const SNAPSHOT: &str = "snapshot";
    /// Guest execution: framework path, function body, guest I/O.
    pub const EXEC: &str = "exec";
    /// Top-level platform operations (one root span per invocation).
    pub const INVOKE: &str = "invoke";
}

/// Identifier of one recorded span. Ids are assigned sequentially from 1
/// by the [`Recorder`] that created the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id (1-based, dense).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A typed attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (page counts, bytes).
    Uint(u64),
    /// A float (ratios).
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl AttrValue {
    /// Renders the value as a JSON literal.
    pub fn to_json(&self) -> String {
        match self {
            AttrValue::Int(v) => v.to_string(),
            AttrValue::Uint(v) => v.to_string(),
            AttrValue::Float(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            }
            AttrValue::Str(s) => crate::json::escape(s),
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Uint(u64::from(v))
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<Nanos> for AttrValue {
    fn from(v: Nanos) -> Self {
        AttrValue::Uint(v.as_nanos())
    }
}

/// One recorded interval of virtual time.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// The span that was open when this one started, if any.
    pub parent: Option<SpanId>,
    /// Operation name (e.g. `"kernel_boot"`).
    pub name: String,
    /// Subsystem category (see [`cat`]).
    pub category: &'static str,
    /// Latency-breakdown phase, if this span feeds the paper's
    /// three-way split. `None` inherits the nearest phased ancestor.
    pub phase: Option<Phase>,
    /// Virtual start instant.
    pub start: Nanos,
    /// Virtual end instant; `None` while the span is still open.
    pub end: Option<Nanos>,
    /// Typed attributes, in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Span duration, treating a still-open span as ending at `now`.
    pub fn duration_at(&self, now: Nanos) -> Nanos {
        self.end.unwrap_or(now).max(self.start) - self.start
    }
}

/// A zero-width event (fault injections, cache hits, retransmits).
#[derive(Debug, Clone)]
pub struct InstantRecord {
    /// The span that was open when the event fired, if any.
    pub parent: Option<SpanId>,
    /// Event name (e.g. `"fault:snapshot_read"`).
    pub name: String,
    /// Subsystem category (see [`cat`]).
    pub category: &'static str,
    /// Virtual instant of the event.
    pub at: Nanos,
    /// Typed attributes, in attachment order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// One entry of a recorder's event log, in recording order.
#[derive(Debug, Clone)]
pub enum Event {
    /// An interval.
    Span(SpanRecord),
    /// A zero-width event.
    Instant(InstantRecord),
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    /// `events` index of span id `i + 1`.
    span_pos: Vec<usize>,
    /// Stack of currently open spans (innermost last).
    open: Vec<SpanId>,
}

impl Inner {
    fn span_mut(&mut self, id: SpanId) -> &mut SpanRecord {
        let pos = self.span_pos[(id.0 - 1) as usize];
        match &mut self.events[pos] {
            Event::Span(s) => s,
            Event::Instant(_) => unreachable!("span_pos points at spans only"),
        }
    }
}

/// An append-only log of hierarchical spans and instant events, stamped
/// on a virtual [`Clock`].
///
/// The recorder subsumes the flat [`Trace`]: every flat span maps to one
/// recorder span, [`Recorder::ingest_trace`] imports a `Trace` wholesale
/// (zero-width spans become instants — the fault-injector convention),
/// and [`Recorder::breakdown`] reproduces [`Trace::breakdown`] exactly
/// for flat recordings while attributing only *self time* for nested
/// ones, so hierarchy never double-counts.
///
/// Orphan handling: ending a span that has open descendants closes the
/// descendants at the same instant; ending a span that is not open at
/// all is a no-op.
#[derive(Debug, Clone)]
pub struct Recorder {
    clock: Clock,
    inner: Rc<RefCell<Inner>>,
}

impl Recorder {
    /// Creates an empty recorder timestamping on `clock`.
    pub fn new(clock: Clock) -> Self {
        Recorder {
            clock,
            inner: Rc::new(RefCell::new(Inner::default())),
        }
    }

    /// The clock this recorder stamps events with.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn start_impl(&self, name: String, category: &'static str, phase: Option<Phase>) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let id = SpanId(inner.span_pos.len() as u64 + 1);
        let parent = inner.open.last().copied();
        let pos = inner.events.len();
        inner.events.push(Event::Span(SpanRecord {
            id,
            parent,
            name,
            category,
            phase,
            start: self.clock.now(),
            end: None,
            attrs: Vec::new(),
        }));
        inner.span_pos.push(pos);
        inner.open.push(id);
        id
    }

    /// Opens a span as a child of the innermost open span.
    pub fn start(&self, name: impl Into<String>, category: &'static str) -> SpanId {
        self.start_impl(name.into(), category, None)
    }

    /// Opens a span carrying a latency-breakdown [`Phase`].
    pub fn start_phase(
        &self,
        name: impl Into<String>,
        category: &'static str,
        phase: Phase,
    ) -> SpanId {
        self.start_impl(name.into(), category, Some(phase))
    }

    /// Closes `id` at the current virtual instant. Open descendants are
    /// closed at the same instant; ending a non-open span is a no-op.
    pub fn end(&self, id: SpanId) {
        let now = self.clock.now();
        let mut inner = self.inner.borrow_mut();
        let Some(depth) = inner.open.iter().rposition(|&s| s == id) else {
            return;
        };
        let to_close: Vec<SpanId> = inner.open.split_off(depth);
        for sid in to_close {
            inner.span_mut(sid).end = Some(now);
        }
    }

    /// Runs `f` inside a span, attributing the virtual time it charges.
    pub fn scope<T>(
        &self,
        name: impl Into<String>,
        category: &'static str,
        f: impl FnOnce() -> T,
    ) -> T {
        let id = self.start(name, category);
        let value = f();
        self.end(id);
        value
    }

    /// Like [`Recorder::scope`] with a latency-breakdown [`Phase`].
    pub fn scope_phase<T>(
        &self,
        name: impl Into<String>,
        category: &'static str,
        phase: Phase,
        f: impl FnOnce() -> T,
    ) -> T {
        let id = self.start_phase(name, category, phase);
        let value = f();
        self.end(id);
        value
    }

    /// Attaches a typed attribute to a recorded span.
    pub fn attr(&self, id: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        self.inner
            .borrow_mut()
            .span_mut(id)
            .attrs
            .push((key, value.into()));
    }

    /// Records a zero-width event under the innermost open span.
    pub fn instant(&self, name: impl Into<String>, category: &'static str) {
        self.instant_with(name, category, Vec::new());
    }

    /// Records a zero-width event with attributes.
    pub fn instant_with(
        &self,
        name: impl Into<String>,
        category: &'static str,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        let at = self.clock.now();
        let mut inner = self.inner.borrow_mut();
        let parent = inner.open.last().copied();
        inner.events.push(Event::Instant(InstantRecord {
            parent,
            name: name.into(),
            category,
            at,
            attrs,
        }));
    }

    /// The innermost open span, if any.
    pub fn current(&self) -> Option<SpanId> {
        self.inner.borrow().open.last().copied()
    }

    /// Imports a flat [`Trace`] under the innermost open span: zero-width
    /// trace spans (the fault-injector convention) become instants, all
    /// others become closed child spans keeping their phase.
    pub fn ingest_trace(&self, trace: &Trace, category: &'static str) {
        for span in trace.spans() {
            if span.start == span.end {
                let mut inner = self.inner.borrow_mut();
                let parent = inner.open.last().copied();
                inner.events.push(Event::Instant(InstantRecord {
                    parent,
                    name: span.label.clone(),
                    category,
                    at: span.start,
                    attrs: Vec::new(),
                }));
            } else {
                let mut inner = self.inner.borrow_mut();
                let id = SpanId(inner.span_pos.len() as u64 + 1);
                let parent = inner.open.last().copied();
                let pos = inner.events.len();
                inner.events.push(Event::Span(SpanRecord {
                    id,
                    parent,
                    name: span.label.clone(),
                    category,
                    phase: Some(span.phase),
                    start: span.start,
                    end: Some(span.end),
                    attrs: Vec::new(),
                }));
                inner.span_pos.push(pos);
            }
        }
    }

    /// Records an already-measured interval as a closed child of the
    /// innermost open span. Used for retroactive attribution, e.g.
    /// splitting one clock slice into compute and I/O after the run.
    pub fn record_closed(
        &self,
        name: impl Into<String>,
        category: &'static str,
        phase: Phase,
        start: Nanos,
        end: Nanos,
    ) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        let id = SpanId(inner.span_pos.len() as u64 + 1);
        let parent = inner.open.last().copied();
        let pos = inner.events.len();
        inner.events.push(Event::Span(SpanRecord {
            id,
            parent,
            name: name.into(),
            category,
            phase: Some(phase),
            start,
            end: Some(end.max(start)),
            attrs: Vec::new(),
        }));
        inner.span_pos.push(pos);
        id
    }

    /// Closes every open span at the current instant (call before
    /// exporting a finished run).
    pub fn finish(&self) {
        let now = self.clock.now();
        let mut inner = self.inner.borrow_mut();
        let to_close: Vec<SpanId> = inner.open.split_off(0);
        for sid in to_close {
            inner.span_mut(sid).end = Some(now);
        }
    }

    /// A snapshot of the event log, in recording order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.borrow().events.clone()
    }

    /// Number of recorded events (spans + instants).
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().events.is_empty()
    }

    /// Folds the recorded spans into the paper's three-way [`Breakdown`].
    ///
    /// Each span contributes its *self time* (duration minus the summed
    /// durations of its direct children) to its phase; spans without a
    /// phase inherit the nearest phased ancestor's. For a flat recording
    /// this equals [`Trace::breakdown`] over the same spans.
    pub fn breakdown(&self) -> Breakdown {
        let now = self.clock.now();
        let inner = self.inner.borrow();
        let n = inner.span_pos.len();
        let mut eff: Vec<Option<Phase>> = vec![None; n];
        let mut child_sum: Vec<Nanos> = vec![Nanos::ZERO; n];
        // Parents always precede children in id order.
        for &pos in &inner.span_pos {
            let Event::Span(s) = &inner.events[pos] else {
                continue;
            };
            let idx = (s.id.0 - 1) as usize;
            eff[idx] = s
                .phase
                .or_else(|| s.parent.and_then(|p| eff[(p.0 - 1) as usize]));
            if let Some(p) = s.parent {
                child_sum[(p.0 - 1) as usize] += s.duration_at(now);
            }
        }
        let mut b = Breakdown::default();
        for &pos in &inner.span_pos {
            let Event::Span(s) = &inner.events[pos] else {
                continue;
            };
            let idx = (s.id.0 - 1) as usize;
            let Some(phase) = eff[idx] else { continue };
            let self_time = s.duration_at(now).saturating_sub(child_sum[idx]);
            match phase {
                Phase::Startup => b.startup += self_time,
                Phase::Exec => b.exec += self_time,
                Phase::Other => b.other += self_time,
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn spans_nest_under_the_open_span() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let root = rec.start("invoke", cat::INVOKE);
        let child = rec.start("snapshot_restore", cat::RESTORE);
        clock.advance(ms(3));
        rec.instant("fault:snapshot_read", cat::FAULT);
        rec.end(child);
        rec.end(root);

        let events = rec.events();
        assert_eq!(events.len(), 3);
        let Event::Span(c) = &events[1] else { panic!() };
        assert_eq!(c.parent, Some(root));
        assert_eq!(c.duration_at(clock.now()), ms(3));
        let Event::Instant(i) = &events[2] else {
            panic!()
        };
        assert_eq!(i.parent, Some(child));
        assert_eq!(i.at, ms(3));
    }

    #[test]
    fn ending_a_parent_closes_open_descendants() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let outer = rec.start("outer", cat::INVOKE);
        let inner = rec.start("inner", cat::EXEC);
        let innermost = rec.start("innermost", cat::EXEC);
        clock.advance(ms(2));
        rec.end(outer); // Closes all three at the same instant.
        assert_eq!(rec.current(), None);
        for ev in rec.events() {
            let Event::Span(s) = ev else { panic!() };
            assert_eq!(s.end, Some(ms(2)), "{}", s.name);
        }
        // Ending an already-closed span is a no-op, not a panic.
        rec.end(inner);
        rec.end(innermost);
    }

    #[test]
    fn ending_a_never_opened_or_foreign_id_is_a_no_op() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let a = rec.start("a", cat::EXEC);
        rec.end(a);
        rec.end(a); // Double-end.
        clock.advance(ms(1));
        let events = rec.events();
        let Event::Span(s) = &events[0] else { panic!() };
        assert_eq!(s.end, Some(Nanos::ZERO), "first end wins");
    }

    #[test]
    fn flat_breakdown_matches_trace_breakdown() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let mut trace = Trace::new();
        for (label, phase, dur) in [
            ("boot", Phase::Startup, 5),
            ("exec", Phase::Exec, 20),
            ("io", Phase::Other, 3),
        ] {
            let t0 = clock.now();
            rec.scope_phase(label, cat::EXEC, phase, || clock.advance(ms(dur)));
            trace.record(label, phase, t0, clock.now());
        }
        assert_eq!(rec.breakdown(), trace.breakdown());
    }

    #[test]
    fn nested_spans_attribute_self_time_only() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let outer = rec.start_phase("startup", cat::BOOT, Phase::Startup);
        clock.advance(ms(2)); // Outer self time.
        rec.scope_phase("verify", cat::RESTORE, Phase::Startup, || {
            clock.advance(ms(3));
        });
        // Unphased child inherits the parent's phase.
        rec.scope("map", cat::RESTORE, || clock.advance(ms(4)));
        rec.end(outer);
        let b = rec.breakdown();
        assert_eq!(b.startup, ms(9), "no double counting");
        assert_eq!(b.exec, Nanos::ZERO);
    }

    #[test]
    fn open_spans_count_up_to_now() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        rec.start_phase("running", cat::EXEC, Phase::Exec);
        clock.advance(ms(7));
        assert_eq!(rec.breakdown().exec, ms(7));
        rec.finish();
        clock.advance(ms(100));
        assert_eq!(rec.breakdown().exec, ms(7), "finish pinned the end");
    }

    #[test]
    fn ingest_trace_maps_zero_width_to_instants() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let mut trace = Trace::new();
        trace.record("fault:net_loss", Phase::Other, ms(1), ms(1));
        trace.record("recovery_backoff", Phase::Startup, ms(1), ms(5));
        let root = rec.start("invoke", cat::INVOKE);
        rec.ingest_trace(&trace, cat::FAULT);
        rec.end(root);
        let events = rec.events();
        let Event::Instant(i) = &events[1] else {
            panic!("zero-width trace span becomes an instant")
        };
        assert_eq!(i.name, "fault:net_loss");
        assert_eq!(i.parent, Some(root));
        let Event::Span(s) = &events[2] else { panic!() };
        assert_eq!(s.phase, Some(Phase::Startup));
        assert_eq!(s.duration_at(clock.now()), ms(4));
        // Ingested spans contribute to the breakdown like native ones.
        assert_eq!(rec.breakdown().startup, ms(4));
    }

    #[test]
    fn record_closed_nests_and_feeds_the_breakdown() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let root = rec.start("invoke", cat::INVOKE);
        clock.advance(ms(10));
        // Retroactively split the last 10 ms into compute and I/O.
        let exec = rec.record_closed("exec", cat::EXEC, Phase::Exec, ms(0), ms(7));
        rec.record_closed("guest_io", cat::EXEC, Phase::Other, ms(7), ms(10));
        rec.end(root);
        let Event::Span(s) = &rec.events()[1] else {
            panic!()
        };
        assert_eq!(s.id, exec);
        assert_eq!(s.parent, Some(root));
        assert_eq!(s.end, Some(ms(7)));
        let b = rec.breakdown();
        assert_eq!(b.exec, ms(7));
        assert_eq!(b.other, ms(3));
        assert_eq!(b.startup, Nanos::ZERO, "root self time is fully covered");
    }

    #[test]
    fn attrs_attach_in_order() {
        let rec = Recorder::new(Clock::new());
        let id = rec.start("restore", cat::RESTORE);
        rec.attr(id, "pages", 42u64);
        rec.attr(id, "verified", true);
        rec.attr(id, "function", "fact");
        rec.end(id);
        let Event::Span(s) = &rec.events()[0] else {
            panic!()
        };
        assert_eq!(s.attrs.len(), 3);
        assert_eq!(s.attrs[0], ("pages", AttrValue::Uint(42)));
        assert_eq!(s.attrs[2], ("function", AttrValue::Str("fact".into())));
    }
}
