//! Latency-attribution engine: regroups a recorder's event log into
//! per-request causal trees and decomposes each request's sojourn into
//! queueing / routing / fetch / restore / JIT-warmup / exec self-time.
//!
//! This is the analysis the paper's figures are built from, generalized
//! to the cluster: every span carries the [`TraceId`] minted at
//! admission, so one request's story — admission queueing, the router's
//! placement, the snapshot delta fetch from a donor host, the restore,
//! the JIT-warmup hidden inside a rebuild, the guest execution — can be
//! reassembled no matter how many hosts it crossed.
//!
//! Attribution uses *self time* (a span's duration minus the summed
//! durations of its direct children), so nesting never double-counts
//! and the per-class nanoseconds of one tree sum exactly to the root
//! span's duration, which the drivers pin to the request's sojourn.

use fireworks_sim::Nanos;

use crate::span::{cat, AttrValue, Event, SpanId, SpanRecord, TraceId};

/// The six-way latency decomposition classes (plus a catch-all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseClass {
    /// Waiting for an admission slot (host or cluster queue).
    Queueing,
    /// Router decisions and placement.
    Routing,
    /// Moving snapshot bytes: store reads, delta fetches, prefetch,
    /// cache traffic, migrations.
    Fetch,
    /// Turning resident bytes into a runnable VM: restore, boot, memory
    /// mapping.
    Restore,
    /// Runtime/JIT warm-up — the rebuild-from-source path where the
    /// guest boots, initializes the framework, and JITs before the
    /// snapshot is written.
    JitWarmup,
    /// Guest function execution.
    Exec,
    /// Everything else (bookkeeping, faults).
    Other,
}

/// Number of [`PhaseClass`] variants.
pub const CLASS_COUNT: usize = 7;

impl PhaseClass {
    /// All classes, in decomposition order.
    pub fn all() -> [PhaseClass; CLASS_COUNT] {
        [
            PhaseClass::Queueing,
            PhaseClass::Routing,
            PhaseClass::Fetch,
            PhaseClass::Restore,
            PhaseClass::JitWarmup,
            PhaseClass::Exec,
            PhaseClass::Other,
        ]
    }

    /// Stable lowercase name (used in JSON output).
    pub fn name(self) -> &'static str {
        match self {
            PhaseClass::Queueing => "queueing",
            PhaseClass::Routing => "routing",
            PhaseClass::Fetch => "fetch",
            PhaseClass::Restore => "restore",
            PhaseClass::JitWarmup => "jit_warmup",
            PhaseClass::Exec => "exec",
            PhaseClass::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            PhaseClass::Queueing => 0,
            PhaseClass::Routing => 1,
            PhaseClass::Fetch => 2,
            PhaseClass::Restore => 3,
            PhaseClass::JitWarmup => 4,
            PhaseClass::Exec => 5,
            PhaseClass::Other => 6,
        }
    }
}

/// Maps a span to its decomposition class. The span *name* rule runs
/// first: `snapshot_rebuild` is where JIT warm-up actually happens
/// (rebuild-from-source = boot + runtime init + JIT + snapshot write),
/// even though its category is `snapshot`. After that the category
/// decides.
pub fn classify(name: &str, category: &str) -> PhaseClass {
    if name == "snapshot_rebuild" {
        return PhaseClass::JitWarmup;
    }
    match category {
        cat::QUEUE => PhaseClass::Queueing,
        cat::ROUTE => PhaseClass::Routing,
        cat::SNAPSHOT | cat::PREFETCH | cat::STORE | cat::NET | cat::CACHE | cat::MIGRATE => {
            PhaseClass::Fetch
        }
        cat::RESTORE | cat::BOOT | cat::MEM => PhaseClass::Restore,
        cat::EXEC => PhaseClass::Exec,
        _ => PhaseClass::Other,
    }
}

/// Per-class nanosecond totals for one request (or one aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    ns: [u64; CLASS_COUNT],
}

impl Attribution {
    /// Adds `dur` to `class`.
    pub fn add(&mut self, class: PhaseClass, dur: Nanos) {
        self.ns[class.index()] += dur.as_nanos();
    }

    /// Nanoseconds attributed to `class`.
    pub fn get(&self, class: PhaseClass) -> Nanos {
        Nanos::from_nanos(self.ns[class.index()])
    }

    /// Sum over all classes.
    pub fn total(&self) -> Nanos {
        Nanos::from_nanos(self.ns.iter().sum())
    }

    /// Element-wise accumulation (for cluster-wide aggregates).
    pub fn merge(&mut self, other: &Attribution) {
        for (dst, src) in self.ns.iter_mut().zip(other.ns) {
            *dst += src;
        }
    }
}

/// One hop on a request's critical path (the greedy longest-child
/// descent from the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Span name.
    pub name: String,
    /// Span category.
    pub category: &'static str,
    /// The class the hop's span falls in.
    pub class: PhaseClass,
    /// The hop span's full duration.
    pub duration: Nanos,
}

/// One reassembled request: its causal tree collapsed to the facts the
/// analysis needs.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The request's trace id.
    pub trace: TraceId,
    /// The root span's id.
    pub root: SpanId,
    /// The invoked function (root span's `function` attribute).
    pub function: Option<String>,
    /// Distinct hosts touched, in first-seen order (`host` attributes
    /// anywhere in the tree).
    pub hosts: Vec<u64>,
    /// Root span start (admission).
    pub start: Nanos,
    /// Root span end (completion or rejection).
    pub end: Nanos,
    /// `end - start`; the drivers pin this to the request's sojourn.
    pub sojourn: Nanos,
    /// Number of spans in the tree (including the root).
    pub spans: usize,
    /// Whether the root carries a `rejected` attribute.
    pub rejected: bool,
    /// Self-time decomposition; `attribution.total() == sojourn`.
    pub attribution: Attribution,
    /// Greedy longest-child descent from the root.
    pub critical_path: Vec<CriticalHop>,
}

/// The full regrouping of an event log into request trees.
#[derive(Debug, Clone, Default)]
pub struct TraceForest {
    /// One entry per trace id that has a root span, sorted by trace id.
    pub requests: Vec<RequestTrace>,
    /// Spans that carry a trace id but do not belong to a well-formed
    /// tree: their trace has no root (or more than one), their parent is
    /// missing, or their parent belongs to a different trace. Empty on a
    /// healthy run.
    pub orphans: Vec<SpanId>,
}

impl TraceForest {
    /// Builds the forest from a recorder's event log. `now` closes any
    /// still-open spans for duration math (use the clock's final
    /// instant; exports call [`crate::Recorder::finish`] first anyway).
    pub fn build(events: &[Event], now: Nanos) -> TraceForest {
        // Dense span table: ids are 1-based and dense per recorder.
        let spans: Vec<&SpanRecord> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) => Some(s),
                Event::Instant(_) => None,
            })
            .collect();
        let lookup = |id: SpanId| -> Option<&&SpanRecord> {
            let idx = (id.raw() - 1) as usize;
            spans.get(idx).filter(|s| s.id == id)
        };

        // Group span indices by trace, preserving id order.
        let mut by_trace: std::collections::BTreeMap<TraceId, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            if let Some(t) = s.trace {
                by_trace.entry(t).or_default().push(i);
            }
        }

        let mut forest = TraceForest::default();
        for (trace, members) in by_trace {
            let roots: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&i| spans[i].parent.is_none())
                .collect();
            if roots.len() != 1 {
                // No root or ambiguous roots: the whole group is orphaned.
                forest.orphans.extend(members.iter().map(|&i| spans[i].id));
                continue;
            }
            let root_idx = roots[0];
            let root = spans[root_idx];

            // Verify every non-root member's parent exists and carries
            // the same trace; otherwise it is an orphan.
            let mut tree: Vec<usize> = Vec::with_capacity(members.len());
            for &i in &members {
                let s = spans[i];
                if i == root_idx {
                    tree.push(i);
                    continue;
                }
                match s.parent.and_then(lookup) {
                    Some(p) if p.trace == Some(trace) => tree.push(i),
                    _ => forest.orphans.push(s.id),
                }
            }

            // Self-time attribution: subtract each span's children from
            // it. Parents always precede children in id order, and all
            // tree members share the trace, so one pass suffices.
            let mut child_sum: std::collections::BTreeMap<SpanId, Nanos> =
                std::collections::BTreeMap::new();
            for &i in &tree {
                let s = spans[i];
                if let Some(p) = s.parent {
                    *child_sum.entry(p).or_default() += s.duration_at(now);
                }
            }
            let mut attribution = Attribution::default();
            let mut hosts: Vec<u64> = Vec::new();
            for &i in &tree {
                let s = spans[i];
                let self_time = s
                    .duration_at(now)
                    .saturating_sub(child_sum.get(&s.id).copied().unwrap_or(Nanos::ZERO));
                attribution.add(classify(&s.name, s.category), self_time);
                for (k, v) in &s.attrs {
                    if *k == "host" {
                        if let AttrValue::Uint(h) = v {
                            if !hosts.contains(h) {
                                hosts.push(*h);
                            }
                        }
                    }
                }
            }

            // Critical path: greedy longest-child descent. Children of
            // each tree member, in id order.
            let mut children: std::collections::BTreeMap<SpanId, Vec<usize>> =
                std::collections::BTreeMap::new();
            for &i in &tree {
                if let Some(p) = spans[i].parent {
                    children.entry(p).or_default().push(i);
                }
            }
            let mut critical_path = Vec::new();
            let mut cursor = root.id;
            while let Some(kids) = children.get(&cursor) {
                let Some(&widest) = kids
                    .iter()
                    .max_by_key(|&&i| (spans[i].duration_at(now), std::cmp::Reverse(i)))
                else {
                    break;
                };
                let s = spans[widest];
                critical_path.push(CriticalHop {
                    name: s.name.clone(),
                    category: s.category,
                    class: classify(&s.name, s.category),
                    duration: s.duration_at(now),
                });
                cursor = s.id;
            }

            let function = root.attrs.iter().find_map(|(k, v)| match (k, v) {
                (&"function", AttrValue::Str(f)) => Some(f.clone()),
                _ => None,
            });
            let rejected = root.attrs.iter().any(|(k, _)| *k == "rejected");
            let end = root.end.unwrap_or(now).max(root.start);
            forest.requests.push(RequestTrace {
                trace,
                root: root.id,
                function,
                hosts,
                start: root.start,
                end,
                sojourn: end - root.start,
                spans: tree.len(),
                rejected,
                attribution,
                critical_path,
            });
        }
        forest
    }
}

/// Per-function SLO accounting over a forest's completed requests.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Function name (`"?"` for requests whose root lost its attribute).
    pub function: String,
    /// Completed (non-rejected) requests observed.
    pub total: u64,
    /// Requests whose sojourn exceeded the SLO target.
    pub violations: u64,
    /// `(violations / total) / budget` — the rate at which the error
    /// budget is being consumed; > 1.0 means the SLO is burning faster
    /// than the budget allows.
    pub burn_rate: f64,
}

/// Computes per-function SLO burn rates: `slo` is the per-request
/// sojourn target, `budget` the allowed violation fraction (e.g. 0.01
/// for a 99% SLO). Rejected requests are excluded (they fail admission,
/// not the latency target). Output is sorted by function name.
pub fn slo_burn(requests: &[RequestTrace], slo: Nanos, budget: f64) -> Vec<SloReport> {
    let mut by_fn: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    for r in requests {
        if r.rejected {
            continue;
        }
        let name = r.function.clone().unwrap_or_else(|| "?".to_string());
        let entry = by_fn.entry(name).or_default();
        entry.0 += 1;
        if r.sojourn > slo {
            entry.1 += 1;
        }
    }
    by_fn
        .into_iter()
        .map(|(function, (total, violations))| SloReport {
            function,
            total,
            violations,
            burn_rate: if total == 0 || budget <= 0.0 {
                0.0
            } else {
                (violations as f64 / total as f64) / budget
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;
    use fireworks_sim::trace::Phase;
    use fireworks_sim::Clock;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    /// Builds one request: 2 ms queued, then service = 3 ms restore +
    /// 5 ms rebuild + 10 ms exec + 1 ms root-service slack.
    fn one_request(rec: &Recorder, clock: &Clock) -> TraceId {
        let t = rec.next_trace_id();
        let arrival = clock.now();
        let root = rec.start_detached("request", cat::INVOKE, t);
        rec.attr(root, "function", "fact");
        clock.advance(ms(2));
        rec.record_closed_under(
            root,
            "queued",
            cat::QUEUE,
            Phase::Other,
            arrival,
            clock.now(),
        );
        let service = rec.start_under(root, "service", cat::INVOKE);
        rec.attr(service, "host", 3u64);
        rec.scope("snapshot_restore", cat::RESTORE, || clock.advance(ms(3)));
        rec.scope("snapshot_rebuild", cat::SNAPSHOT, || clock.advance(ms(5)));
        rec.scope("guest_exec", cat::EXEC, || clock.advance(ms(10)));
        clock.advance(ms(1));
        rec.end(service);
        rec.end_detached(root);
        t
    }

    #[test]
    fn attribution_sums_to_sojourn() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        one_request(&rec, &clock);
        let forest = TraceForest::build(&rec.events(), clock.now());
        assert!(forest.orphans.is_empty());
        assert_eq!(forest.requests.len(), 1);
        let r = &forest.requests[0];
        assert_eq!(r.sojourn, ms(21));
        assert_eq!(r.attribution.total(), r.sojourn);
        assert_eq!(r.attribution.get(PhaseClass::Queueing), ms(2));
        assert_eq!(r.attribution.get(PhaseClass::Restore), ms(3));
        assert_eq!(r.attribution.get(PhaseClass::JitWarmup), ms(5));
        assert_eq!(r.attribution.get(PhaseClass::Exec), ms(10));
        assert_eq!(r.attribution.get(PhaseClass::Other), ms(1));
        assert_eq!(r.function.as_deref(), Some("fact"));
        assert_eq!(r.hosts, vec![3]);
        assert_eq!(r.spans, 6);
    }

    #[test]
    fn interleaved_requests_stay_separate() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let t1 = one_request(&rec, &clock);
        let t2 = one_request(&rec, &clock);
        assert_ne!(t1, t2);
        let forest = TraceForest::build(&rec.events(), clock.now());
        assert!(forest.orphans.is_empty());
        assert_eq!(forest.requests.len(), 2);
        assert_eq!(forest.requests[0].trace, t1);
        assert_eq!(forest.requests[1].trace, t2);
        for r in &forest.requests {
            assert_eq!(r.attribution.total(), r.sojourn);
        }
    }

    #[test]
    fn critical_path_descends_widest_children() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        one_request(&rec, &clock);
        let forest = TraceForest::build(&rec.events(), clock.now());
        let path = &forest.requests[0].critical_path;
        // service (19 ms) beats queued (2 ms); exec (10 ms) is its
        // widest child.
        assert_eq!(path[0].name, "service");
        assert_eq!(path[1].name, "guest_exec");
        assert_eq!(path[1].class, PhaseClass::Exec);
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn rootless_trace_groups_are_orphans() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let t = rec.next_trace_id();
        let root = rec.start_detached("request", cat::INVOKE, t);
        let child = rec.start_under(root, "service", cat::INVOKE);
        rec.end(child);
        rec.end_detached(root);
        let mut events = rec.events();
        // Drop the root: the surviving child's parent is missing.
        events.remove(0);
        let forest = TraceForest::build(&events, clock.now());
        assert!(forest.requests.is_empty());
        assert_eq!(forest.orphans.len(), 1);
    }

    #[test]
    fn classification_name_rule_beats_category() {
        assert_eq!(
            classify("snapshot_rebuild", cat::SNAPSHOT),
            PhaseClass::JitWarmup
        );
        assert_eq!(classify("snapshot_write", cat::SNAPSHOT), PhaseClass::Fetch);
        assert_eq!(classify("queued", cat::QUEUE), PhaseClass::Queueing);
        assert_eq!(classify("route", cat::ROUTE), PhaseClass::Routing);
        assert_eq!(classify("invoke", cat::INVOKE), PhaseClass::Other);
    }

    #[test]
    fn slo_burn_counts_violations_per_function() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        for _ in 0..4 {
            one_request(&rec, &clock); // 21 ms each
        }
        let forest = TraceForest::build(&rec.events(), clock.now());
        let reports = slo_burn(&forest.requests, ms(20), 0.5);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].function, "fact");
        assert_eq!(reports[0].total, 4);
        assert_eq!(reports[0].violations, 4);
        assert!((reports[0].burn_rate - 2.0).abs() < 1e-9);
        let relaxed = slo_burn(&forest.requests, ms(30), 0.5);
        assert_eq!(relaxed[0].violations, 0);
        assert_eq!(relaxed[0].burn_rate, 0.0);
    }
}
