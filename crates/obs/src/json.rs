//! Minimal JSON helpers: string escaping and a well-formedness checker.
//!
//! The workspace carries no serde; exporters hand-roll their JSON and
//! this module keeps that honest. [`validate`] is a recursive-descent
//! checker used by the golden-file tests and by `trace_dump`'s
//! self-validation step, so CI can verify emitted traces offline.

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maximum nesting depth [`validate`] accepts.
const MAX_DEPTH: usize = 64;

/// Checks that `input` is exactly one well-formed JSON value.
///
/// Accepts objects, arrays, strings (with escapes), numbers, `true`,
/// `false`, and `null`. Returns a human-readable error naming the byte
/// offset where parsing failed.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        None => Err(format!("expected a value at byte {pos}")),
        Some(b'{') => object(bytes, pos, depth),
        Some(b'[') => array(bytes, pos, depth),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(&c) => Err(format!("unexpected byte {c:#04x} at byte {pos}")),
    }
}

fn object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos).map_err(|e| format!("object key: {e}"))?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected digits at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

fn literal(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn validate_accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            "\"str\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "nul",
            "01abc",
            "\"unterminated",
            "{} extra",
            "1.",
            "1e",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn escaped_output_round_trips_through_validate() {
        validate(&escape("tricky \"quoted\" \\slash\\ \n")).expect("escape produces valid JSON");
    }
}
