//! Minimal JSON helpers: string escaping, a well-formedness checker,
//! and a small parse-to-[`Value`] reader for schema checks.
//!
//! The workspace carries no serde; exporters hand-roll their JSON and
//! this module keeps that honest. [`validate`] is a recursive-descent
//! checker used by the golden-file tests and by `trace_dump`'s
//! self-validation step; [`parse`] builds an owned [`Value`] tree so
//! [`crate::export::schema`] can check required keys and types, so CI
//! can verify emitted traces offline.

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maximum nesting depth [`validate`] accepts.
const MAX_DEPTH: usize = 64;

/// Checks that `input` is exactly one well-formed JSON value.
///
/// Accepts objects, arrays, strings (with escapes), numbers, `true`,
/// `false`, and `null`. Returns a human-readable error naming the byte
/// offset where parsing failed.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        None => Err(format!("expected a value at byte {pos}")),
        Some(b'{') => object(bytes, pos, depth),
        Some(b'[') => array(bytes, pos, depth),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(&c) => Err(format!("unexpected byte {c:#04x} at byte {pos}")),
    }
}

fn object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos).map_err(|e| format!("object key: {e}"))?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected digits at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

fn literal(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

/// An owned JSON value, produced by [`parse`]. Numbers keep their raw
/// text so integer exactness is never lost to `f64` round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
}

/// Serializes a [`Value`] back to compact JSON text. Numbers round-trip
/// byte-exactly (they keep their source text); key and element order are
/// preserved, so `to_text(parse(t))` of compact input returns `t`.
pub fn to_text(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => n.clone(),
        Value::Str(s) => escape(s),
        Value::Array(items) => {
            let parts: Vec<String> = items.iter().map(to_text).collect();
            format!("[{}]", parts.join(","))
        }
        Value::Object(fields) => {
            let parts: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}:{}", escape(k), to_text(v)))
                .collect();
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// Parses exactly one JSON value into an owned [`Value`] tree. Same
/// grammar and depth limit as [`validate`].
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        None => Err(format!("expected a value at byte {pos}")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos).map_err(|e| format!("object key: {e}"))?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                fields.push((key, parse_value(bytes, pos, depth + 1)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => literal(bytes, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(bytes, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(bytes, pos, b"null").map(|()| Value::Null),
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            number(bytes, pos)?;
            Ok(Value::Num(
                std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "non-utf8 number".to_string())?
                    .to_string(),
            ))
        }
        Some(&c) => Err(format!("unexpected byte {c:#04x} at byte {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    string(bytes, pos)?;
    // Re-walk the validated range, resolving escapes.
    let raw = &bytes[start + 1..*pos - 1];
    let mut out = String::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == b'\\' {
            i += 1;
            match raw[i] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = std::str::from_utf8(&raw[i + 1..i + 5])
                        .map_err(|_| "bad \\u digits".to_string())?;
                    let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    i += 4;
                }
                _ => unreachable!("string() accepted the escape"),
            }
            i += 1;
        } else {
            // Copy the longest run of plain bytes in one go.
            let run_end = raw[i..]
                .iter()
                .position(|&b| b == b'\\')
                .map_or(raw.len(), |p| i + p);
            out.push_str(
                std::str::from_utf8(&raw[i..run_end]).map_err(|_| "non-utf8 string".to_string())?,
            );
            i = run_end;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn validate_accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            "\"str\\u00e9\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "nul",
            "01abc",
            "\"unterminated",
            "{} extra",
            "1.",
            "1e",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn escaped_output_round_trips_through_validate() {
        validate(&escape("tricky \"quoted\" \\slash\\ \n")).expect("escape produces valid JSON");
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\n\",\"d\":true}").unwrap();
        assert!(v.is_object());
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert!(a[2].get("b").unwrap().is_null());
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_keeps_numbers_exact() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let f = parse("-12.5e3").unwrap();
        assert_eq!(f.as_f64(), Some(-12_500.0));
        assert_eq!(f.as_u64(), None);
    }

    #[test]
    fn parse_unescapes_strings() {
        let v = parse("\"\\u00e9\\t\\\\\"").unwrap();
        assert_eq!(v.as_str(), Some("é\t\\"));
    }

    #[test]
    fn to_text_round_trips_compact_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\",\"d\":-12.5e3}",
            "18446744073709551615",
        ] {
            assert_eq!(to_text(&parse(doc).unwrap()), doc);
        }
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for doc in ["", "{", "[1,]", "nul", "{} extra"] {
            assert!(parse(doc).is_err(), "{doc:?}");
        }
    }
}
