//! Exporters: JSONL event logs and Chrome trace-event files.
//!
//! Both formats are keyed to *virtual* nanoseconds and built with
//! integer arithmetic only, so a given schedule exports byte-for-byte
//! identically on every run and host.

use std::fmt::Write as _;

use fireworks_sim::trace::Phase;

use crate::span::{AttrValue, Event, Recorder};

/// Formats nanoseconds as decimal microseconds with exactly three
/// fractional digits (`1234567` → `"1234.567"`), using integer math so
/// output never depends on float formatting.
pub fn fmt_micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn phase_json(phase: Option<Phase>) -> &'static str {
    match phase {
        Some(Phase::Startup) => "\"startup\"",
        Some(Phase::Exec) => "\"exec\"",
        Some(Phase::Other) => "\"other\"",
        None => "null",
    }
}

fn attrs_json(attrs: &[(&'static str, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", crate::json::escape(k), v.to_json());
    }
    out.push('}');
    out
}

/// Renders a recorder's event log as JSONL: one JSON object per line,
/// in recording order.
///
/// Span lines: `{"type":"span","id":N,"parent":N|null,"name":...,
/// "cat":...,"phase":...,"start_ns":N,"end_ns":N|null,"dur_ns":N,
/// "attrs":{...}}`. Instant lines carry `"type":"instant"` and
/// `"at_ns"`. Still-open spans export `end_ns: null` and a zero
/// duration; call [`Recorder::finish`] first to pin them.
pub fn jsonl(recorder: &Recorder) -> String {
    let mut out = String::new();
    for event in recorder.events() {
        match event {
            Event::Span(s) => {
                let parent = match s.parent {
                    Some(p) => p.raw().to_string(),
                    None => "null".to_string(),
                };
                let (end, dur) = match s.end {
                    Some(end) => (
                        end.as_nanos().to_string(),
                        (end.as_nanos().saturating_sub(s.start.as_nanos())).to_string(),
                    ),
                    None => ("null".to_string(), "0".to_string()),
                };
                let _ = writeln!(
                    out,
                    "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"cat\":{},\
                     \"phase\":{},\"start_ns\":{},\"end_ns\":{},\"dur_ns\":{},\"attrs\":{}}}",
                    s.id.raw(),
                    parent,
                    crate::json::escape(&s.name),
                    crate::json::escape(s.category),
                    phase_json(s.phase),
                    s.start.as_nanos(),
                    end,
                    dur,
                    attrs_json(&s.attrs),
                );
            }
            Event::Instant(i) => {
                let parent = match i.parent {
                    Some(p) => p.raw().to_string(),
                    None => "null".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{{\"type\":\"instant\",\"parent\":{},\"name\":{},\"cat\":{},\
                     \"at_ns\":{},\"attrs\":{}}}",
                    parent,
                    crate::json::escape(&i.name),
                    crate::json::escape(i.category),
                    i.at.as_nanos(),
                    attrs_json(&i.attrs),
                );
            }
        }
    }
    out
}

/// Renders one or more recorders as a single Chrome trace-event JSON
/// document loadable in `chrome://tracing` or [Perfetto].
///
/// Each `(process_name, recorder)` pair becomes one process (pid 1, 2,
/// …) named by a metadata event, so two platforms export side by side.
/// Spans become complete events (`ph:"X"`) with microsecond `ts`/`dur`;
/// instants become thread-scoped instant events (`ph:"i"`).
///
/// [Perfetto]: https://ui.perfetto.dev
pub fn chrome_trace(processes: &[(&str, &Recorder)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, event: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&event);
    };
    for (i, (name, recorder)) in processes.iter().enumerate() {
        let pid = i + 1;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                crate::json::escape(name)
            ),
        );
        for event in recorder.events() {
            match event {
                Event::Span(s) => {
                    let now = recorder.clock().now();
                    let dur = s.duration_at(now).as_nanos();
                    let mut args = format!("{{\"span_id\":{}", s.id.raw());
                    if let Some(p) = s.parent {
                        let _ = write!(args, ",\"parent\":{}", p.raw());
                    }
                    if let Some(phase) = s.phase {
                        let _ = write!(args, ",\"phase\":{}", phase_json(Some(phase)));
                    }
                    for (k, v) in &s.attrs {
                        let _ = write!(args, ",{}:{}", crate::json::escape(k), v.to_json());
                    }
                    args.push('}');
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"name\":{},\"cat\":{},\
                             \"ts\":{},\"dur\":{},\"args\":{args}}}",
                            crate::json::escape(&s.name),
                            crate::json::escape(s.category),
                            fmt_micros(s.start.as_nanos()),
                            fmt_micros(dur),
                        ),
                    );
                }
                Event::Instant(inst) => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":1,\"name\":{},\"cat\":{},\
                             \"ts\":{},\"s\":\"t\",\"args\":{}}}",
                            crate::json::escape(&inst.name),
                            crate::json::escape(inst.category),
                            fmt_micros(inst.at.as_nanos()),
                            attrs_json(&inst.attrs),
                        ),
                    );
                }
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::cat;
    use fireworks_sim::{Clock, Nanos};

    fn sample_recorder() -> (Clock, Recorder) {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let root = rec.start_phase("invoke", cat::INVOKE, Phase::Exec);
        rec.attr(root, "function", "fact");
        rec.scope("snapshot_restore", cat::RESTORE, || {
            clock.advance(Nanos::from_micros(1500));
        });
        rec.instant("fault:net_loss", cat::FAULT);
        rec.end(root);
        (clock, rec)
    }

    #[test]
    fn fmt_micros_is_integer_exact() {
        assert_eq!(fmt_micros(0), "0.000");
        assert_eq!(fmt_micros(999), "0.999");
        assert_eq!(fmt_micros(1_000), "1.000");
        assert_eq!(fmt_micros(1_234_567), "1234.567");
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let (_clock, rec) = sample_recorder();
        let text = jsonl(&rec);
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            crate::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(text.lines().nth(1).unwrap().contains("\"dur_ns\":1500000"));
        assert!(text
            .lines()
            .nth(2)
            .unwrap()
            .contains("\"type\":\"instant\""));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_metadata() {
        let (_clock, rec) = sample_recorder();
        let doc = chrome_trace(&[("fireworks", &rec), ("firecracker", &rec)]);
        crate::json::validate(&doc).expect("well-formed");
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.contains("\"pid\":1"));
        assert!(doc.contains("\"pid\":2"));
        assert!(doc.contains("\"name\":\"process_name\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let (_c1, r1) = sample_recorder();
        let (_c2, r2) = sample_recorder();
        assert_eq!(jsonl(&r1), jsonl(&r2));
        assert_eq!(chrome_trace(&[("p", &r1)]), chrome_trace(&[("p", &r2)]));
    }
}
