//! Exporters: JSONL event logs and Chrome trace-event files.
//!
//! Both formats are keyed to *virtual* nanoseconds and built with
//! integer arithmetic only, so a given schedule exports byte-for-byte
//! identically on every run and host.

use std::fmt::Write as _;

use fireworks_sim::trace::Phase;

use crate::span::{AttrValue, Event, Recorder};

/// Formats nanoseconds as decimal microseconds with exactly three
/// fractional digits (`1234567` → `"1234.567"`), using integer math so
/// output never depends on float formatting.
pub fn fmt_micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn phase_json(phase: Option<Phase>) -> &'static str {
    match phase {
        Some(Phase::Startup) => "\"startup\"",
        Some(Phase::Exec) => "\"exec\"",
        Some(Phase::Other) => "\"other\"",
        None => "null",
    }
}

fn attrs_json(attrs: &[(&'static str, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", crate::json::escape(k), v.to_json());
    }
    out.push('}');
    out
}

fn u64_list_json(list: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in list.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Renders a recorder's event log as JSONL: one JSON object per line,
/// in recording order. Empty recorders render as the empty string
/// (zero lines).
///
/// Span lines: `{"type":"span","id":N,"parent":N|null,"trace":N|null,
/// "name":...,"cat":...,"phase":...,"start_ns":N,"end_ns":N|null,
/// "dur_ns":N,"attrs":{...},"flows_out":[...],"flows_in":[...]}`.
/// Instant lines carry `"type":"instant"`, `"trace"`, and `"at_ns"`.
/// Still-open spans export `end_ns: null` and a zero duration; call
/// [`Recorder::finish`] first to pin them.
pub fn jsonl(recorder: &Recorder) -> String {
    let mut out = String::new();
    for event in recorder.events() {
        match event {
            Event::Span(s) => {
                let parent = match s.parent {
                    Some(p) => p.raw().to_string(),
                    None => "null".to_string(),
                };
                let trace = match s.trace {
                    Some(t) => t.raw().to_string(),
                    None => "null".to_string(),
                };
                let (end, dur) = match s.end {
                    Some(end) => (
                        end.as_nanos().to_string(),
                        (end.as_nanos().saturating_sub(s.start.as_nanos())).to_string(),
                    ),
                    None => ("null".to_string(), "0".to_string()),
                };
                let _ = writeln!(
                    out,
                    "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"trace\":{},\"name\":{},\
                     \"cat\":{},\"phase\":{},\"start_ns\":{},\"end_ns\":{},\"dur_ns\":{},\
                     \"attrs\":{},\"flows_out\":{},\"flows_in\":{}}}",
                    s.id.raw(),
                    parent,
                    trace,
                    crate::json::escape(&s.name),
                    crate::json::escape(s.category),
                    phase_json(s.phase),
                    s.start.as_nanos(),
                    end,
                    dur,
                    attrs_json(&s.attrs),
                    u64_list_json(&s.flows_out),
                    u64_list_json(&s.flows_in),
                );
            }
            Event::Instant(i) => {
                let parent = match i.parent {
                    Some(p) => p.raw().to_string(),
                    None => "null".to_string(),
                };
                let trace = match i.trace {
                    Some(t) => t.raw().to_string(),
                    None => "null".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{{\"type\":\"instant\",\"parent\":{},\"trace\":{},\"name\":{},\"cat\":{},\
                     \"at_ns\":{},\"attrs\":{}}}",
                    parent,
                    trace,
                    crate::json::escape(&i.name),
                    crate::json::escape(i.category),
                    i.at.as_nanos(),
                    attrs_json(&i.attrs),
                );
            }
        }
    }
    out
}

/// Renders one or more recorders as a single Chrome trace-event JSON
/// document loadable in `chrome://tracing` or [Perfetto].
///
/// Each `(process_name, recorder)` pair becomes one process (pid 1, 2,
/// …) named by a metadata event, so two platforms export side by side.
/// Spans become complete events (`ph:"X"`) with microsecond `ts`/`dur`;
/// instants become thread-scoped instant events (`ph:"i"`). Spans
/// carrying a trace id export it as `args.trace_id`, and their
/// [`crate::SpanRecord::flows_out`] / `flows_in` lists become Perfetto
/// flow events (`ph:"s"` / `ph:"f"` with `bp:"e"`) timestamped inside
/// the span, so the UI draws causal arrows across hosts.
///
/// [Perfetto]: https://ui.perfetto.dev
pub fn chrome_trace(processes: &[(&str, &Recorder)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, event: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&event);
    };
    for (i, (name, recorder)) in processes.iter().enumerate() {
        let pid = i + 1;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                crate::json::escape(name)
            ),
        );
        for event in recorder.events() {
            match event {
                Event::Span(s) => {
                    let now = recorder.clock().now();
                    let dur = s.duration_at(now).as_nanos();
                    let mut args = format!("{{\"span_id\":{}", s.id.raw());
                    if let Some(p) = s.parent {
                        let _ = write!(args, ",\"parent\":{}", p.raw());
                    }
                    if let Some(t) = s.trace {
                        let _ = write!(args, ",\"trace_id\":{}", t.raw());
                    }
                    if let Some(phase) = s.phase {
                        let _ = write!(args, ",\"phase\":{}", phase_json(Some(phase)));
                    }
                    for (k, v) in &s.attrs {
                        let _ = write!(args, ",{}:{}", crate::json::escape(k), v.to_json());
                    }
                    args.push('}');
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\"name\":{},\"cat\":{},\
                             \"ts\":{},\"dur\":{},\"args\":{args}}}",
                            crate::json::escape(&s.name),
                            crate::json::escape(s.category),
                            fmt_micros(s.start.as_nanos()),
                            fmt_micros(dur),
                        ),
                    );
                    // Flow events bind to the enclosing slice by
                    // (pid, tid, ts); stamp them just inside the span.
                    for flow in &s.flows_out {
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"ph\":\"s\",\"pid\":{pid},\"tid\":1,\
                                 \"name\":\"request_flow\",\"cat\":\"flow\",\"id\":{flow},\
                                 \"ts\":{}}}",
                                fmt_micros(s.start.as_nanos()),
                            ),
                        );
                    }
                    for flow in &s.flows_in {
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{pid},\"tid\":1,\
                                 \"name\":\"request_flow\",\"cat\":\"flow\",\"id\":{flow},\
                                 \"ts\":{}}}",
                                fmt_micros(s.start.as_nanos()),
                            ),
                        );
                    }
                }
                Event::Instant(inst) => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":1,\"name\":{},\"cat\":{},\
                             \"ts\":{},\"s\":\"t\",\"args\":{}}}",
                            crate::json::escape(&inst.name),
                            crate::json::escape(inst.category),
                            fmt_micros(inst.at.as_nanos()),
                            attrs_json(&inst.attrs),
                        ),
                    );
                }
            }
        }
    }
    out.push_str("]}");
    out
}

/// Schema checks for the exporters' output: beyond well-formedness,
/// every event must carry its required keys with the right types. CI
/// runs these over `trace_dump` / `trace_query` artifacts so a format
/// drift (or an edge case like an empty trace or a still-open span)
/// fails loudly instead of producing silently unreadable files.
pub mod schema {
    use crate::json::{parse, Value};

    fn want_u64(v: &Value, key: &str, ctx: &str) -> Result<(), String> {
        match v.get(key) {
            Some(f) if f.as_u64().is_some() => Ok(()),
            _ => Err(format!("{ctx}: missing or non-u64 {key:?}")),
        }
    }

    fn want_u64_or_null(v: &Value, key: &str, ctx: &str) -> Result<(), String> {
        match v.get(key) {
            Some(f) if f.is_null() || f.as_u64().is_some() => Ok(()),
            _ => Err(format!("{ctx}: missing or non-(u64|null) {key:?}")),
        }
    }

    fn want_str(v: &Value, key: &str, ctx: &str) -> Result<(), String> {
        match v.get(key) {
            Some(f) if f.as_str().is_some() => Ok(()),
            _ => Err(format!("{ctx}: missing or non-string {key:?}")),
        }
    }

    fn want_object(v: &Value, key: &str, ctx: &str) -> Result<(), String> {
        match v.get(key) {
            Some(f) if f.is_object() => Ok(()),
            _ => Err(format!("{ctx}: missing or non-object {key:?}")),
        }
    }

    fn want_u64_array(v: &Value, key: &str, ctx: &str) -> Result<(), String> {
        match v.get(key).and_then(|f| f.as_array()) {
            Some(items) if items.iter().all(|i| i.as_u64().is_some()) => Ok(()),
            _ => Err(format!("{ctx}: missing or non-u64-array {key:?}")),
        }
    }

    /// Checks every line of a [`super::jsonl`] export. Empty input
    /// (zero events) is valid.
    pub fn check_jsonl(text: &str) -> Result<(), String> {
        for (n, line) in text.lines().enumerate() {
            let ctx = format!("line {}", n + 1);
            let v = parse(line).map_err(|e| format!("{ctx}: {e}"))?;
            match v.get("type").and_then(|t| t.as_str()) {
                Some("span") => {
                    want_u64(&v, "id", &ctx)?;
                    want_u64_or_null(&v, "parent", &ctx)?;
                    want_u64_or_null(&v, "trace", &ctx)?;
                    want_str(&v, "name", &ctx)?;
                    want_str(&v, "cat", &ctx)?;
                    match v.get("phase") {
                        Some(p)
                            if p.is_null()
                                || matches!(p.as_str(), Some("startup" | "exec" | "other")) => {}
                        _ => return Err(format!("{ctx}: bad \"phase\"")),
                    }
                    want_u64(&v, "start_ns", &ctx)?;
                    want_u64_or_null(&v, "end_ns", &ctx)?;
                    want_u64(&v, "dur_ns", &ctx)?;
                    want_object(&v, "attrs", &ctx)?;
                    want_u64_array(&v, "flows_out", &ctx)?;
                    want_u64_array(&v, "flows_in", &ctx)?;
                }
                Some("instant") => {
                    want_u64_or_null(&v, "parent", &ctx)?;
                    want_u64_or_null(&v, "trace", &ctx)?;
                    want_str(&v, "name", &ctx)?;
                    want_str(&v, "cat", &ctx)?;
                    want_u64(&v, "at_ns", &ctx)?;
                    want_object(&v, "attrs", &ctx)?;
                }
                _ => return Err(format!("{ctx}: missing or unknown \"type\"")),
            }
        }
        Ok(())
    }

    /// Checks a [`super::chrome_trace`] document: the envelope plus the
    /// per-phase required keys of every trace event (`M`, `X`, `i`, and
    /// the `s`/`f` flow pair).
    pub fn check_chrome(text: &str) -> Result<(), String> {
        let v = parse(text)?;
        if v.get("displayTimeUnit").and_then(|u| u.as_str()) != Some("ms") {
            return Err("missing displayTimeUnit:\"ms\"".to_string());
        }
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .ok_or_else(|| "missing traceEvents array".to_string())?;
        for (n, ev) in events.iter().enumerate() {
            let ctx = format!("event {n}");
            let ph = ev
                .get("ph")
                .and_then(|p| p.as_str())
                .ok_or_else(|| format!("{ctx}: missing \"ph\""))?;
            want_u64(ev, "pid", &ctx)?;
            match ph {
                "M" => {
                    if ev.get("name").and_then(|s| s.as_str()) != Some("process_name") {
                        return Err(format!("{ctx}: metadata must be process_name"));
                    }
                    let ok = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|s| s.as_str())
                        .is_some();
                    if !ok {
                        return Err(format!("{ctx}: metadata missing args.name"));
                    }
                }
                "X" => {
                    want_u64(ev, "tid", &ctx)?;
                    want_str(ev, "name", &ctx)?;
                    want_str(ev, "cat", &ctx)?;
                    for key in ["ts", "dur"] {
                        if ev.get(key).and_then(|f| f.as_f64()).is_none() {
                            return Err(format!("{ctx}: missing or non-number {key:?}"));
                        }
                    }
                    want_object(ev, "args", &ctx)?;
                    let args = ev.get("args").expect("checked");
                    want_u64(args, "span_id", &format!("{ctx} args"))?;
                }
                "i" => {
                    want_u64(ev, "tid", &ctx)?;
                    want_str(ev, "name", &ctx)?;
                    want_str(ev, "cat", &ctx)?;
                    want_str(ev, "s", &ctx)?;
                    if ev.get("ts").and_then(|f| f.as_f64()).is_none() {
                        return Err(format!("{ctx}: missing or non-number \"ts\""));
                    }
                }
                "s" | "f" => {
                    want_u64(ev, "tid", &ctx)?;
                    want_str(ev, "name", &ctx)?;
                    want_u64(ev, "id", &ctx)?;
                    if ev.get("ts").and_then(|f| f.as_f64()).is_none() {
                        return Err(format!("{ctx}: missing or non-number \"ts\""));
                    }
                    if ph == "f" && ev.get("bp").and_then(|s| s.as_str()) != Some("e") {
                        return Err(format!("{ctx}: flow-end must carry bp:\"e\""));
                    }
                }
                other => return Err(format!("{ctx}: unknown ph {other:?}")),
            }
        }
        Ok(())
    }

    /// Checks a [`crate::MetricsSnapshot::to_json`] document, including
    /// zero-sample histogram series (`counts` must be `bounds` plus an
    /// overflow bucket, and `count` must equal the bucket total).
    pub fn check_metrics(text: &str) -> Result<(), String> {
        let v = parse(text)?;
        for section in ["counters", "gauges", "histograms"] {
            if !v.get(section).is_some_and(Value::is_object) {
                return Err(format!("missing {section:?} object"));
            }
        }
        let Some(Value::Object(hists)) = v.get("histograms") else {
            unreachable!("checked above");
        };
        for (name, h) in hists {
            let ctx = format!("histogram {name:?}");
            want_u64_array(h, "bounds", &ctx)?;
            want_u64_array(h, "counts", &ctx)?;
            want_u64(h, "count", &ctx)?;
            if h.get("sum").and_then(|f| f.as_f64()).is_none() {
                return Err(format!("{ctx}: missing \"sum\""));
            }
            let bounds = h.get("bounds").and_then(|b| b.as_array()).expect("checked");
            let counts = h.get("counts").and_then(|c| c.as_array()).expect("checked");
            if counts.len() != bounds.len() + 1 {
                return Err(format!("{ctx}: counts must be bounds + overflow"));
            }
            let total: u64 = counts.iter().filter_map(Value::as_u64).sum();
            if Some(total) != h.get("count").and_then(Value::as_u64) {
                return Err(format!("{ctx}: count != sum of buckets"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::cat;
    use fireworks_sim::{Clock, Nanos};

    fn sample_recorder() -> (Clock, Recorder) {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let root = rec.start_phase("invoke", cat::INVOKE, Phase::Exec);
        rec.attr(root, "function", "fact");
        rec.scope("snapshot_restore", cat::RESTORE, || {
            clock.advance(Nanos::from_micros(1500));
        });
        rec.instant("fault:net_loss", cat::FAULT);
        rec.end(root);
        (clock, rec)
    }

    #[test]
    fn fmt_micros_is_integer_exact() {
        assert_eq!(fmt_micros(0), "0.000");
        assert_eq!(fmt_micros(999), "0.999");
        assert_eq!(fmt_micros(1_000), "1.000");
        assert_eq!(fmt_micros(1_234_567), "1234.567");
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let (_clock, rec) = sample_recorder();
        let text = jsonl(&rec);
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            crate::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(text.lines().nth(1).unwrap().contains("\"dur_ns\":1500000"));
        assert!(text
            .lines()
            .nth(2)
            .unwrap()
            .contains("\"type\":\"instant\""));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_metadata() {
        let (_clock, rec) = sample_recorder();
        let doc = chrome_trace(&[("fireworks", &rec), ("firecracker", &rec)]);
        crate::json::validate(&doc).expect("well-formed");
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.contains("\"pid\":1"));
        assert!(doc.contains("\"pid\":2"));
        assert!(doc.contains("\"name\":\"process_name\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let (_c1, r1) = sample_recorder();
        let (_c2, r2) = sample_recorder();
        assert_eq!(jsonl(&r1), jsonl(&r2));
        assert_eq!(chrome_trace(&[("p", &r1)]), chrome_trace(&[("p", &r2)]));
    }

    #[test]
    fn exports_carry_trace_ids_and_flows() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        let t = rec.next_trace_id();
        let root = rec.start_detached("request", cat::INVOKE, t);
        let service = rec.start_under(root, "service", cat::INVOKE);
        rec.flow_out(root, t.raw());
        rec.flow_in(service, t.raw());
        clock.advance(Nanos::from_micros(10));
        rec.end(service);
        rec.end_detached(root);

        let text = jsonl(&rec);
        schema::check_jsonl(&text).expect("schema");
        assert!(text.lines().next().unwrap().contains("\"trace\":1"));
        assert!(text.lines().next().unwrap().contains("\"flows_out\":[1]"));
        assert!(text.lines().nth(1).unwrap().contains("\"flows_in\":[1]"));

        let doc = chrome_trace(&[("cluster", &rec)]);
        schema::check_chrome(&doc).expect("schema");
        assert!(doc.contains("\"trace_id\":1"));
        assert!(doc.contains("\"ph\":\"s\""));
        assert!(doc.contains("\"ph\":\"f\",\"bp\":\"e\""));
    }

    #[test]
    fn empty_recorder_exports_are_valid() {
        let rec = Recorder::new(Clock::new());
        let text = jsonl(&rec);
        assert!(text.is_empty(), "zero lines for zero events");
        schema::check_jsonl(&text).expect("empty JSONL is fine");
        let doc = chrome_trace(&[("empty", &rec)]);
        crate::json::validate(&doc).expect("well-formed");
        schema::check_chrome(&doc).expect("metadata-only trace is fine");
        let none = chrome_trace(&[]);
        crate::json::validate(&none).expect("well-formed");
        schema::check_chrome(&none).expect("no processes at all is fine");
    }

    #[test]
    fn open_spans_export_validly() {
        let clock = Clock::new();
        let rec = Recorder::new(clock.clone());
        rec.start("still_open", cat::EXEC);
        clock.advance(Nanos::from_micros(5));
        // No end() and no finish(): export must still be valid.
        let text = jsonl(&rec);
        schema::check_jsonl(&text).expect("schema");
        assert!(text.contains("\"end_ns\":null"));
        schema::check_chrome(&chrome_trace(&[("p", &rec)])).expect("schema");
    }

    #[test]
    fn zero_sample_histograms_export_validly() {
        let m = crate::Metrics::new();
        m.register_histogram("registered.unused", &[10, 20]);
        let json = m.snapshot().to_json();
        schema::check_metrics(&json).expect("zero-sample series pass the schema");
    }

    #[test]
    fn schema_checks_reject_drifted_output() {
        assert!(schema::check_jsonl("{\"type\":\"span\",\"id\":1}").is_err());
        assert!(schema::check_jsonl("{\"type\":\"mystery\"}").is_err());
        assert!(schema::check_chrome("{\"traceEvents\":[]}").is_err());
        assert!(schema::check_metrics("{\"counters\":{}}").is_err());
        assert!(
            schema::check_metrics(
                "{\"counters\":{},\"gauges\":{},\"histograms\":\
             {\"h\":{\"bounds\":[1],\"counts\":[1],\"count\":1,\"sum\":1}}}"
            )
            .is_err(),
            "counts must include the overflow bucket"
        );
    }
}
