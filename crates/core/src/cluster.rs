//! Multi-host cluster scheduling with snapshot-locality routing.
//!
//! The single-host engine ([`crate::engine::run_concurrent`]) drives one
//! [`ConcurrentPlatform`]; this module scales that model out: a
//! [`Cluster`] owns N per-host platform instances, each with its *own*
//! [`PlatformEnv`] — slot pool, RAM budget, snapshot cache, message bus,
//! store, network, fault injector — all advancing one shared virtual
//! clock and emitting into one shared obs plane. A [`Router`] policy
//! decides which host serves each request.
//!
//! # Why routing policy matters here
//!
//! Each host's post-JIT snapshot cache is bounded (paper §6): a host that
//! does not hold a function's snapshot must rebuild it from source —
//! seconds of virtual time charged to that invocation's start-up.
//! REAP (ASPLOS '21) showed snapshot working-set locality dominates
//! restore latency; at cluster scale the analogue is *cache* locality:
//! spraying requests round-robin thrashes every host's LRU, while
//! affinity routing keeps each function's snapshot hot on a few hosts.
//! [`LocalityAffinity`] implements that policy; `cluster_sweep` measures
//! it against [`RoundRobin`] and [`LeastLoaded`].
//!
//! # Admission and backpressure
//!
//! Each host has a FIFO admission queue bounded by
//! [`ClusterConfig::host_queue_cap`]. The router only places requests on
//! hosts with capacity (a free slot or queue room); when no healthy host
//! has capacity the request waits in the *cluster-level* admission queue,
//! which drains — FIFO, re-consulting the router — every time any host
//! completes an invocation. A request whose
//! [`InvokeRequest::deadline`] passes while queued is rejected with
//! [`PlatformError::DeadlineExceeded`] without consuming a slot.
//!
//! # Host failure
//!
//! Arm [`FaultSite::HostCrash`] on the cluster's fault plan and the
//! per-host injector is checked at every service start on that host. A
//! firing permanently fails the host: its queued requests drain and
//! re-route through the router (counted in `cluster.rebalances`),
//! invocations already in flight still complete (their events are on the
//! timeline), and if no healthy host remains a request fails with
//! [`PlatformError::HostUnavailable`].
//!
//! # Determinism
//!
//! Everything is a pure function of the config, the request schedule, and
//! the fault-plan seed: hosts are stamped out in index order with
//! per-host derived fault seeds, the event queue orders by `(time, seq)`,
//! and every router policy is deterministic. Two runs with the same
//! inputs produce byte-identical reports for any host count.

use std::collections::{BTreeMap, VecDeque};

use fireworks_obs::{cat, Obs, Recorder, SpanContext, SpanId, TraceId};
use fireworks_sim::engine::EventQueue;
use fireworks_sim::fault::FaultSite;
use fireworks_sim::trace::Phase;
use fireworks_sim::{Clock, Nanos};

use crate::api::{
    ConcurrentPlatform, FunctionSpec, InstallReport, Invocation, InvokeRequest, PlatformError,
    SnapshotResidency,
};
use crate::config::PlatformConfig;
use crate::engine::{CompletionPolicy, EngineRequest};
use crate::env::{EnvConfig, PlatformEnv};
use crate::mesh::{ChunkMesh, SharedChunkMesh};
use crate::symbols::{FunctionId, HostId};

/// Per-host seed spacing for the derived fault plans (golden-ratio
/// increment, the SplitMix64 stream constant).
pub(crate) const HOST_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Cluster shape and per-host configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Invoker slots per host.
    pub slots_per_host: usize,
    /// Per-host admission-queue bound; a host whose queue is full exerts
    /// backpressure and receives no further requests until it drains.
    pub host_queue_cap: usize,
    /// Per-host environment template (RAM, costs, fault plan). Each host
    /// gets its own services built from this; the fault-plan seed is
    /// re-derived per host so hosts fail independently.
    pub env: EnvConfig,
    /// Per-host platform configuration (cache budget, recovery, …).
    pub platform: PlatformConfig,
    /// What happens to in-flight tokens at completion (retain for the
    /// cluster-wide §5.4 consolidation experiment).
    pub completion: CompletionPolicy,
}

impl ClusterConfig {
    /// A serving cluster of `hosts` hosts with `slots_per_host` slots,
    /// a queue bound of twice the slot count, default environment and
    /// platform config.
    pub fn new(hosts: usize, slots_per_host: usize) -> Self {
        ClusterConfig {
            hosts,
            slots_per_host,
            host_queue_cap: slots_per_host * 2,
            env: EnvConfig::default(),
            platform: PlatformConfig::default(),
            completion: CompletionPolicy::Release,
        }
    }
}

/// What a router sees about one host when placing a request.
#[derive(Debug, Clone, Copy)]
pub struct HostView {
    /// Host index.
    pub id: HostId,
    /// Whether the host is alive (a crashed host never comes back).
    pub healthy: bool,
    /// Invocations currently in service on this host.
    pub inflight: usize,
    /// Requests waiting in this host's admission queue.
    pub queue_depth: usize,
    /// The host's invoker-slot count.
    pub slots: usize,
    /// The host's admission-queue bound.
    pub queue_cap: usize,
    /// How much of the request's function's start artifact (post-JIT
    /// snapshot / checkpoint / warm sandbox) this host already holds —
    /// the locality signal. Content-addressed hosts report
    /// [`SnapshotResidency::Partial`] with the bytes a delta fetch would
    /// have to move.
    pub residency: SnapshotResidency,
}

impl HostView {
    /// Whether the host can accept one more request: alive, with a free
    /// slot or room in its admission queue.
    pub fn has_capacity(&self) -> bool {
        self.healthy && (self.inflight < self.slots || self.queue_depth < self.queue_cap)
    }

    /// Queueing-relevant load: in-service plus waiting.
    pub fn load(&self) -> usize {
        self.inflight + self.queue_depth
    }
}

/// A routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Serve on this host (the policy's genuine first choice).
    Host(HostId),
    /// The policy's preferred host could not take the request; serve on
    /// this fallback instead. The cluster counts these in
    /// `cluster.rebalances`.
    Fallback(HostId),
    /// No healthy host has capacity; wait in the cluster admission
    /// queue.
    Defer,
}

/// A deterministic request-placement policy.
///
/// The contract: return only hosts for which
/// [`HostView::has_capacity`] holds, and [`Route::Defer`] when there is
/// none. Policies must be pure functions of their own state and the
/// views — no randomness, no wall clock — so cluster runs replay
/// byte-identically.
pub trait Router {
    /// Policy name (used in reports and metric labels).
    fn name(&self) -> &'static str;

    /// Places one request given the current per-host views.
    fn route(&mut self, req: &InvokeRequest, hosts: &[HostView]) -> Route;
}

/// Cycles through hosts in index order, skipping hosts without capacity.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A round-robin router starting at host 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn route(&mut self, _req: &InvokeRequest, hosts: &[HostView]) -> Route {
        let n = hosts.len();
        for k in 0..n {
            let h = (self.next + k) % n;
            if hosts[h].has_capacity() {
                self.next = (h + 1) % n;
                return Route::Host(hosts[h].id);
            }
        }
        Route::Defer
    }
}

/// Places each request on the host with the lowest load (in-flight plus
/// queue depth), ties broken by lowest host index.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// A least-loaded router.
    pub fn new() -> Self {
        LeastLoaded
    }
}

impl Router for LeastLoaded {
    fn name(&self) -> &'static str {
        "least_loaded"
    }

    fn route(&mut self, _req: &InvokeRequest, hosts: &[HostView]) -> Route {
        match least_loaded(hosts, |v| v.has_capacity()) {
            Some(h) => Route::Host(h),
            None => Route::Defer,
        }
    }
}

/// Prefers hosts whose cache already holds the function's snapshot;
/// falls back under overload.
///
/// Placement order:
/// 1. the least-loaded host *with capacity* whose residency is
///    [`SnapshotResidency::Full`];
/// 2. else the partial holder that would move the fewest bytes — a
///    content-addressed host sharing most of the snapshot's chunks
///    delta-fetches the remainder far cheaper than a rebuild (ties:
///    lowest load, then lowest id);
/// 3. else the function's stable home host (FNV-1a hash of its name,
///    probing upward), so a function's rebuilds concentrate on one host
///    whose cache then keeps it hot;
/// 4. else — home, holders, and partials all saturated — the first
///    host with capacity after the home probe, reported as
///    [`Route::Fallback`].
///
/// With a flat snapshot store every residency is `Full` or `Absent`, so
/// step 2 never matches and the policy reduces to its pre-dedup
/// behaviour.
///
/// The home hash is the FNV-1a of the function *name* (matching
/// [`Cluster::install_home`]), but it is computed once per
/// [`FunctionId`] and memoised in a dense id-indexed table — routing
/// decisions on the hot path never re-hash the string.
#[derive(Debug, Default)]
pub struct LocalityAffinity {
    /// `FunctionId::raw() → fnv1a(name)`, filled on first sight.
    home_hashes: Vec<Option<u64>>,
}

impl LocalityAffinity {
    /// A snapshot-locality-affinity router.
    pub fn new() -> Self {
        LocalityAffinity::default()
    }

    /// The function's stable home hash, memoised per id.
    fn home_hash(&mut self, function: FunctionId) -> u64 {
        let idx = function.raw() as usize;
        if idx >= self.home_hashes.len() {
            self.home_hashes.resize(idx + 1, None);
        }
        *self.home_hashes[idx].get_or_insert_with(|| fnv1a(&function.name()))
    }
}

impl Router for LocalityAffinity {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn route(&mut self, req: &InvokeRequest, hosts: &[HostView]) -> Route {
        if let Some(h) = least_loaded(hosts, |v| v.has_capacity() && v.residency.is_full()) {
            return Route::Host(h);
        }
        // No full holder free: the cheapest partial holder ships only its
        // missing chunks.
        if let Some(h) = hosts
            .iter()
            .filter(|v| {
                v.has_capacity() && matches!(v.residency, SnapshotResidency::Partial { .. })
            })
            .min_by_key(|v| (v.residency.missing_bytes(), v.load(), v.id))
            .map(|v| v.id)
        {
            return Route::Host(h);
        }
        // Otherwise send the function to its stable home so the rebuild
        // happens where future requests will land.
        let n = hosts.len();
        let home = (self.home_hash(req.function) % n as u64) as usize;
        for k in 0..n {
            let h = (home + k) % n;
            if hosts[h].has_capacity() {
                return if h == home {
                    Route::Host(hosts[h].id)
                } else {
                    Route::Fallback(hosts[h].id)
                };
            }
        }
        Route::Defer
    }
}

/// Least-loaded host among those passing `accept`; ties go to the
/// lowest index.
fn least_loaded(hosts: &[HostView], accept: impl Fn(&HostView) -> bool) -> Option<HostId> {
    hosts
        .iter()
        .filter(|v| accept(v))
        .min_by_key(|v| (v.load(), v.id))
        .map(|v| v.id)
}

/// FNV-1a over the function name: a stable hash (unlike `DefaultHasher`,
/// which is randomly keyed per process) so home-host assignment is
/// deterministic across runs.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One request's outcome on the cluster, with its placement.
#[derive(Debug)]
pub struct ClusterCompletion {
    /// Index of the request in the submitted schedule.
    pub index: usize,
    /// The host that served (or was serving) it; `None` if it was never
    /// placed (missed deadline, no healthy host).
    pub host: Option<HostId>,
    /// The function invoked.
    pub function: FunctionId,
    /// When the request arrived.
    pub arrived: Nanos,
    /// When a slot picked it up (for a rejection: when it was rejected).
    pub started: Nanos,
    /// When its service activity finished.
    pub finished: Nanos,
    /// The invocation, or the error that ended it.
    pub result: Result<Invocation, PlatformError>,
}

impl ClusterCompletion {
    /// Time spent waiting for a slot (on any queue).
    pub fn waited(&self) -> Nanos {
        self.started.saturating_sub(self.arrived)
    }

    /// Total time in the system.
    pub fn sojourn(&self) -> Nanos {
        self.finished.saturating_sub(self.arrived)
    }

    /// Queueing delay plus the invocation's start-up phase — the
    /// client-visible "time to first instruction of function code", the
    /// quantity `cluster_sweep` reports percentiles of.
    pub fn start_latency(&self) -> Option<Nanos> {
        self.result
            .as_ref()
            .ok()
            .map(|inv| self.waited() + inv.breakdown.startup)
    }
}

/// The cluster's output: completions in request order plus routing and
/// concurrency statistics.
#[derive(Debug)]
pub struct ClusterReport<T> {
    /// One entry per request, ordered by request index.
    pub completions: Vec<ClusterCompletion>,
    /// `(host, token)` pairs still resident ([`CompletionPolicy::Retain`]
    /// only), in completion order.
    pub retained: Vec<(HostId, T)>,
    /// Most invocations ever simultaneously in service cluster-wide.
    pub peak_inflight: usize,
    /// Deepest any single host's admission queue ever got.
    pub peak_host_queue_depth: usize,
    /// Deepest the cluster-level admission queue ever got.
    pub peak_cluster_queue_depth: usize,
    /// Requests moved off their policy-preferred host (locality
    /// fallbacks and crash re-routes).
    pub rebalances: u64,
    /// Service starts on a host already holding the function's snapshot.
    pub locality_hits: u64,
    /// Hosts that crashed during the run, in failure order.
    pub failed_hosts: Vec<HostId>,
    /// Requests displaced from a crashed host's admission queue and
    /// handed back to the router. Conservation: every one of these still
    /// reaches a terminal outcome (served elsewhere, deadline-rejected,
    /// or `HostUnavailable`) — `run` asserts no request is dropped.
    pub crash_reroutes: u64,
}

struct Host<P: ConcurrentPlatform> {
    platform: P,
    env: PlatformEnv,
    healthy: bool,
    free: usize,
    waiting: VecDeque<usize>,
    inflight: BTreeMap<usize, P::InFlight>,
    /// Preformatted host-index label for metrics.
    label: String,
    /// Pre-resolved `engine.inflight{host=..}` gauge handle.
    g_inflight: fireworks_obs::Gauge,
    /// Pre-resolved `engine.queue_depth{host=..}` gauge handle.
    g_queue_depth: fireworks_obs::Gauge,
}

enum Event {
    Arrive(usize),
    Complete { host: usize, index: usize },
}

/// N per-host platforms on one virtual timeline, driven by a [`Router`].
pub struct Cluster<P: ConcurrentPlatform> {
    clock: Clock,
    obs: Obs,
    config: ClusterConfig,
    hosts: Vec<Host<P>>,
    /// Alive-host count, maintained incrementally so the per-event gauge
    /// sample never scans the host table.
    healthy_hosts: usize,
    /// Cluster-wide invocations currently in service, maintained
    /// incrementally (same reason).
    inflight_total: usize,
    /// Simulator events processed by [`Cluster::run`] across this
    /// cluster's lifetime (arrivals + completions).
    events_processed: u64,
    /// Pre-resolved cluster-wide gauge handles.
    g_hosts: fireworks_obs::Gauge,
    g_inflight: fireworks_obs::Gauge,
    g_queue_depth: fireworks_obs::Gauge,
    /// Cluster-wide chunk mesh (content-addressed snapshot distribution).
    /// Every host is attached at construction; platforms without a chunk
    /// store ignore it.
    mesh: SharedChunkMesh,
}

impl<P: ConcurrentPlatform> Cluster<P> {
    /// Builds a cluster, stamping out one platform per host with
    /// `factory(env, &config.platform)`. Hosts are built in index order
    /// on a fresh shared clock and obs plane; each host's fault-plan
    /// seed is derived from the template seed and the host index, so
    /// same-config clusters are bit-for-bit reproducible while hosts
    /// still fail independently.
    ///
    /// # Panics
    ///
    /// Panics if `config.hosts == 0` or `config.slots_per_host == 0`.
    pub fn new(
        config: ClusterConfig,
        mut factory: impl FnMut(PlatformEnv, &PlatformConfig) -> P,
    ) -> Self {
        assert!(config.hosts > 0, "need at least one host");
        assert!(config.slots_per_host > 0, "need at least one slot per host");
        let clock = Clock::new();
        let obs = Obs::new(clock.clone());
        let mesh = ChunkMesh::shared();
        let hosts: Vec<Host<P>> = (0..config.hosts)
            .map(|h| {
                let mut env_config = config.env.clone();
                env_config.fault_plan.seed = env_config
                    .fault_plan
                    .seed
                    .wrapping_add((h as u64).wrapping_mul(HOST_SEED_STRIDE));
                let env = PlatformEnv::with_shared(env_config, clock.clone(), obs.clone());
                let mut platform = factory(env.clone(), &config.platform);
                platform.attach_mesh(mesh.clone(), HostId::from_index(h));
                let label = h.to_string();
                let m = obs.metrics();
                let host_labels: &[(&'static str, &str)] = &[("host", &label)];
                let g_inflight = m.gauge("engine.inflight", host_labels);
                let g_queue_depth = m.gauge("engine.queue_depth", host_labels);
                Host {
                    platform,
                    env,
                    healthy: true,
                    free: config.slots_per_host,
                    waiting: VecDeque::new(),
                    inflight: BTreeMap::new(),
                    label,
                    g_inflight,
                    g_queue_depth,
                }
            })
            .collect();
        let healthy_hosts = hosts.len();
        let m = obs.metrics();
        let g_hosts = m.gauge("cluster.hosts", &[]);
        let g_inflight = m.gauge("cluster.inflight", &[]);
        let g_queue_depth = m.gauge("cluster.queue_depth", &[]);
        Cluster {
            clock,
            obs,
            config,
            hosts,
            healthy_hosts,
            inflight_total: 0,
            events_processed: 0,
            g_hosts,
            g_inflight,
            g_queue_depth,
            mesh,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shared observability plane.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Number of hosts (alive or crashed).
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the cluster has no hosts (never true: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Host `h`'s platform.
    pub fn host(&self, h: HostId) -> &P {
        &self.hosts[h.index()].platform
    }

    /// Host `h`'s platform, mutably.
    pub fn host_mut(&mut self, h: HostId) -> &mut P {
        &mut self.hosts[h.index()].platform
    }

    /// Host `h`'s environment (its RAM, bus, store, injector, …).
    pub fn host_env(&self, h: HostId) -> &PlatformEnv {
        &self.hosts[h.index()].env
    }

    /// Simulator events (arrivals + completions) processed by
    /// [`Cluster::run`] so far — the denominator of the events/sec
    /// throughput metric the sweeps report.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Installs a function on every host (each host needs its own
    /// snapshot to restore from). Returns per-host reports in host
    /// order.
    pub fn install(&mut self, spec: &FunctionSpec) -> Result<Vec<InstallReport>, PlatformError> {
        self.hosts
            .iter_mut()
            .map(|host| host.platform.install(spec))
            .collect()
    }

    /// Installs a function on its stable FNV home host only, registering
    /// it (no snapshot build) everywhere else. On a content-addressed
    /// cluster the other hosts pick the snapshot up by delta fetch the
    /// first time a request lands on them; on a flat cluster they rebuild
    /// from source. Returns the home host's report.
    pub fn install_home(&mut self, spec: &FunctionSpec) -> Result<InstallReport, PlatformError> {
        let home = (fnv1a(&spec.name) % self.hosts.len() as u64) as usize;
        let mut report = None;
        for (h, host) in self.hosts.iter_mut().enumerate() {
            if h == home {
                report = Some(host.platform.install(spec)?);
            } else {
                host.platform.register(spec)?;
            }
        }
        Ok(report.expect("home host is in range"))
    }

    /// The cluster's chunk mesh.
    pub fn mesh(&self) -> &SharedChunkMesh {
        &self.mesh
    }

    /// Fills `buf` with the current per-host views for `function`. The
    /// buffer is reused across routing decisions so the hot path never
    /// allocates.
    fn views_into(&self, function: FunctionId, buf: &mut Vec<HostView>) {
        buf.clear();
        buf.extend(self.hosts.iter().enumerate().map(|(id, host)| HostView {
            id: HostId::from_index(id),
            healthy: host.healthy,
            inflight: host.inflight.len(),
            queue_depth: host.waiting.len(),
            slots: self.config.slots_per_host,
            queue_cap: self.config.host_queue_cap,
            residency: host.platform.residency(function),
        }));
    }

    /// Drives `requests` (sorted by arrival) through the cluster under
    /// `router` and returns the completions with routing statistics.
    ///
    /// # Panics
    ///
    /// Panics if `requests` are not sorted by arrival time.
    pub fn run<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
    ) -> ClusterReport<P::InFlight> {
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "requests must be sorted by arrival time"
        );
        let mut queue: EventQueue<Event> = EventQueue::new();
        for (i, r) in requests.iter().enumerate() {
            queue.schedule(r.arrival, Event::Arrive(i));
        }

        let mut run = RunState {
            out: {
                let mut v: Vec<Option<ClusterCompletion>> = Vec::with_capacity(requests.len());
                v.resize_with(requests.len(), || None);
                v
            },
            cluster_waiting: VecDeque::new(),
            retained: Vec::new(),
            rebalances: 0,
            locality_hits: 0,
            peak_inflight: 0,
            peak_host_queue_depth: 0,
            peak_cluster_queue_depth: 0,
            failed_hosts: Vec::new(),
            crash_reroutes: 0,
            roots: BTreeMap::new(),
            views_buf: Vec::with_capacity(self.hosts.len()),
        };
        let rec = self.obs.recorder().clone();

        while let Some(ev) = queue.pop() {
            self.clock.warp_to(ev.at);
            self.events_processed += 1;
            match ev.event {
                Event::Arrive(i) => {
                    // Admission mints the request's trace: one detached
                    // root span per request, so spans from interleaved
                    // requests (and hosts) never adopt each other.
                    let trace = rec.next_trace_id();
                    let root = rec.start_detached("request", cat::INVOKE, trace);
                    rec.attr(root, "function", &*requests[i].invoke.function.name());
                    run.roots.insert(i, (trace, root));
                    if !self.dispatch(router, requests, i, None, &mut run, &mut queue) {
                        run.cluster_waiting.push_back(i);
                    }
                }
                Event::Complete { host, index } => {
                    if let Some(token) = self.hosts[host].inflight.remove(&index) {
                        self.inflight_total -= 1;
                        match self.config.completion {
                            CompletionPolicy::Release => {
                                self.hosts[host].platform.finish_invoke(token)
                            }
                            CompletionPolicy::Retain => {
                                run.retained.push((HostId::from_index(host), token))
                            }
                        }
                    }
                    self.hosts[host].free += 1;
                    self.touch_host(host, &mut run);
                    // Drain this host's own queue first (FIFO)…
                    if self.hosts[host].healthy {
                        while let Some(next) = self.hosts[host].waiting.pop_front() {
                            if reject_if_expired(
                                &mut run,
                                &rec,
                                requests,
                                next,
                                self.clock.now(),
                                None,
                            ) {
                                continue;
                            }
                            self.start_service(router, requests, host, next, &mut run, &mut queue);
                            break;
                        }
                    }
                    // …then let cluster-queued requests try the router
                    // again, stopping at the first that still can't place.
                    while let Some(next) = run.cluster_waiting.pop_front() {
                        if reject_if_expired(&mut run, &rec, requests, next, self.clock.now(), None)
                        {
                            continue;
                        }
                        if !self.dispatch(router, requests, next, None, &mut run, &mut queue) {
                            run.cluster_waiting.push_front(next);
                            break;
                        }
                    }
                }
            }
            self.reap_mesh_dead(router, requests, &mut run, &mut queue);
            self.sample_gauges(&mut run);
        }

        // Request conservation: every submitted request — including any
        // displaced from a crashed host's queue — must have reached a
        // terminal outcome. A hole here means a crash drain dropped a
        // request instead of rerouting it.
        let lost: Vec<usize> = run
            .out
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i)
            .collect();
        assert!(
            lost.is_empty(),
            "request conservation violated: requests {lost:?} have no outcome \
             ({} crash-displaced requests were rerouted, failed hosts: {:?})",
            run.crash_reroutes,
            run.failed_hosts,
        );

        ClusterReport {
            completions: run
                .out
                .into_iter()
                .map(|c| c.expect("checked above"))
                .collect(),
            retained: run.retained,
            peak_inflight: run.peak_inflight,
            peak_host_queue_depth: run.peak_host_queue_depth,
            peak_cluster_queue_depth: run.peak_cluster_queue_depth,
            rebalances: run.rebalances,
            locality_hits: run.locality_hits,
            failed_hosts: run.failed_hosts,
            crash_reroutes: run.crash_reroutes,
        }
    }

    /// Routes request `i` and places it: service, host queue, cluster
    /// queue, or terminal rejection. Returns `false` only when the
    /// request was parked on the cluster queue (so drains know to stop).
    /// `rerouted_from` marks a request displaced by a host crash: its
    /// placement counts as a rebalance and its terminal failure names
    /// that host.
    fn dispatch<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        i: usize,
        rerouted_from: Option<usize>,
        run: &mut RunState<P::InFlight>,
        queue: &mut EventQueue<Event>,
    ) -> bool {
        let now = self.clock.now();
        let rec = self.obs.recorder().clone();
        if reject_if_expired(run, &rec, requests, i, now, rerouted_from) {
            return true;
        }
        let r = &requests[i];
        if let Some(from) = rerouted_from {
            // A crash displaced this request off host `from`; the router
            // consult below is a second routing decision on its trace.
            if let Some(&(_, root)) = run.roots.get(&i) {
                rec.instant_under(
                    root,
                    "rerouted",
                    cat::ROUTE,
                    vec![("from_host", from.into())],
                );
            }
        }
        if !self.hosts.iter().any(|h| h.healthy) {
            // Nothing can ever serve this request: the cluster queue
            // only drains on completions, and completions on dead hosts
            // don't restore capacity a router could use.
            if let Some((_, root)) = run.roots.remove(&i) {
                rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, r.arrival, now);
                rec.attr(root, "rejected", "host_unavailable");
                rec.end_detached(root);
            }
            run.out[i] = Some(ClusterCompletion {
                index: i,
                host: rerouted_from.map(HostId::from_index),
                function: r.invoke.function,
                arrived: r.arrival,
                started: now,
                finished: now,
                result: Err(PlatformError::HostUnavailable {
                    function: r.invoke.function.name().to_string(),
                    host: rerouted_from,
                }),
            });
            return true;
        }
        let mut views = std::mem::take(&mut run.views_buf);
        self.views_into(r.invoke.function, &mut views);
        let decision = router.route(&r.invoke, &views);
        let (host, rebalanced) = match decision {
            Route::Host(h) => (h.index(), false),
            Route::Fallback(h) => (h.index(), true),
            // The caller parks the request on the cluster queue (front or
            // back, depending on whether it's a drain or an arrival).
            Route::Defer => {
                run.views_buf = views;
                return false;
            }
        };
        debug_assert!(views[host].has_capacity(), "router picked a full host");
        run.views_buf = views;
        if rebalanced || rerouted_from.is_some() {
            run.rebalances += 1;
            self.obs.metrics().inc("cluster.rebalances", &[]);
        }
        if self.hosts[host].free > 0 {
            self.start_service(router, requests, host, i, run, queue);
        } else {
            self.hosts[host].waiting.push_back(i);
            self.touch_host(host, run);
        }
        true
    }

    /// Starts request `i` on host `h` at the current instant — unless
    /// the host's injector fires [`FaultSite::HostCrash`] at this
    /// service boundary, in which case the host fails and everything it
    /// was queueing (this request included) re-routes.
    fn start_service<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        h: usize,
        i: usize,
        run: &mut RunState<P::InFlight>,
        queue: &mut EventQueue<Event>,
    ) {
        let crashed = self.hosts[h]
            .env
            .injector
            .borrow_mut()
            .should_fail(FaultSite::HostCrash);
        if crashed {
            self.crash_host(router, requests, h, i, run, queue);
            return;
        }
        let rec = self.obs.recorder().clone();
        let host = &mut self.hosts[h];
        host.free -= 1;
        let started = self.clock.now();
        let r = &requests[i];
        if host.platform.residency(r.invoke.function).is_full() {
            run.locality_hits += 1;
            self.obs.metrics().inc("cluster.locality_hits", &[]);
        }
        let (trace, root) = run.roots.remove(&i).expect("request admitted");
        rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, r.arrival, started);
        // The service span goes on the shared open stack: every span the
        // host platform records nests under it and inherits the trace.
        // The flow pair draws the admission → service causal arrow
        // (rendered as a cross-track arrow in Perfetto).
        let service = rec.start_under(root, "service", cat::INVOKE);
        rec.attr(service, "host", h);
        rec.flow_out(root, trace.raw());
        rec.flow_in(service, trace.raw());
        let invoke = r.invoke.clone().with_trace(SpanContext {
            trace,
            parent: service,
        });
        let result = host.platform.begin_invoke(&invoke);
        let finished = self.clock.now();
        rec.end(service);
        rec.end_detached(root);
        let result = match result {
            Ok((invocation, token)) => {
                host.inflight.insert(i, token);
                self.inflight_total += 1;
                Ok(invocation)
            }
            Err(e) => Err(e),
        };
        run.out[i] = Some(ClusterCompletion {
            index: i,
            host: Some(HostId::from_index(h)),
            function: r.invoke.function,
            arrived: r.arrival,
            started,
            finished,
            result,
        });
        self.touch_host(h, run);
        queue.schedule(finished, Event::Complete { host: h, index: i });
    }

    /// Fails host `h` permanently: marks it unhealthy, then re-routes
    /// `trigger` and every request in its admission queue through the
    /// router. In-flight invocations on the host finish normally — their
    /// completion events are already on the timeline.
    fn crash_host<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        h: usize,
        trigger: usize,
        run: &mut RunState<P::InFlight>,
        queue: &mut EventQueue<Event>,
    ) {
        let mut displaced = self.fail_host(h, run);
        displaced.push_front(trigger);
        run.crash_reroutes += displaced.len() as u64;
        self.obs
            .metrics()
            .add("cluster.crash_reroutes", &[], displaced.len() as u64);
        while let Some(i) = displaced.pop_front() {
            if !self.dispatch(router, requests, i, Some(h), run, queue) {
                run.cluster_waiting.push_back(i);
            }
        }
    }

    /// Marks host `h` failed (metrics, mesh, report) and hands back its
    /// queued requests for re-routing.
    fn fail_host(&mut self, h: usize, run: &mut RunState<P::InFlight>) -> VecDeque<usize> {
        self.hosts[h].healthy = false;
        self.healthy_hosts -= 1;
        self.mesh.borrow_mut().mark_dead(HostId::from_index(h));
        run.failed_hosts.push(HostId::from_index(h));
        self.obs.metrics().inc(
            "cluster.host_crashes",
            &[("host", self.hosts[h].label.as_str())],
        );
        self.obs
            .recorder()
            .instant(format!("host_crash:{h}"), fireworks_obs::cat::FAULT);
        let drained = std::mem::take(&mut self.hosts[h].waiting);
        self.touch_host(h, run);
        drained
    }

    /// Fails hosts whose crash was first observed by a peer's delta
    /// fetch (the mesh marks them dead mid-transfer, before any service
    /// boundary on the host itself would have drawn the fault). Their
    /// queued requests drain and re-route exactly like a service-boundary
    /// crash.
    fn reap_mesh_dead<R: Router + ?Sized>(
        &mut self,
        router: &mut R,
        requests: &[EngineRequest],
        run: &mut RunState<P::InFlight>,
        queue: &mut EventQueue<Event>,
    ) {
        // Collect first: `fail_host` needs the mesh borrow back.
        let dead = self.mesh.borrow().dead_hosts();
        for h in dead {
            let h = h.index();
            if !self.hosts.get(h).is_some_and(|host| host.healthy) {
                continue;
            }
            let mut displaced = self.fail_host(h, run);
            run.crash_reroutes += displaced.len() as u64;
            if !displaced.is_empty() {
                self.obs
                    .metrics()
                    .add("cluster.crash_reroutes", &[], displaced.len() as u64);
            }
            while let Some(i) = displaced.pop_front() {
                if !self.dispatch(router, requests, i, Some(h), run, queue) {
                    run.cluster_waiting.push_back(i);
                }
            }
        }
    }

    /// Publishes host `h`'s gauges after its state changed and advances
    /// the per-host high-water mark. Called at the mutation sites instead
    /// of rescanning every host per event: the per-event work is O(hosts
    /// touched by the event), not O(cluster size).
    fn touch_host(&self, h: usize, run: &mut RunState<P::InFlight>) {
        let host = &self.hosts[h];
        host.g_inflight.set(host.inflight.len() as i64);
        host.g_queue_depth.set(host.waiting.len() as i64);
        run.peak_host_queue_depth = run.peak_host_queue_depth.max(host.waiting.len());
    }

    /// Publishes the cluster-wide gauges at an event boundary, and
    /// advances the report's high-water marks. O(1): the totals are
    /// maintained incrementally and the handles are pre-resolved.
    fn sample_gauges(&self, run: &mut RunState<P::InFlight>) {
        run.peak_inflight = run.peak_inflight.max(self.inflight_total);
        run.peak_cluster_queue_depth = run.peak_cluster_queue_depth.max(run.cluster_waiting.len());
        self.g_hosts.set(self.healthy_hosts as i64);
        self.g_inflight.set(self.inflight_total as i64);
        self.g_queue_depth.set(run.cluster_waiting.len() as i64);
    }
}

/// Mutable per-run bookkeeping, separated from the cluster so host
/// borrows and run borrows don't fight.
struct RunState<T> {
    out: Vec<Option<ClusterCompletion>>,
    cluster_waiting: VecDeque<usize>,
    retained: Vec<(HostId, T)>,
    rebalances: u64,
    locality_hits: u64,
    peak_inflight: usize,
    peak_host_queue_depth: usize,
    peak_cluster_queue_depth: usize,
    failed_hosts: Vec<HostId>,
    crash_reroutes: u64,
    // Per-request detached trace roots, opened at arrival and closed at
    // completion or rejection.
    roots: BTreeMap<usize, (TraceId, SpanId)>,
    // Reusable per-decision host-view scratch buffer.
    views_buf: Vec<HostView>,
}

/// Rejects request `i` with [`PlatformError::DeadlineExceeded`] if its
/// deadline has passed at `now`; returns whether it was rejected.
fn reject_if_expired<T>(
    run: &mut RunState<T>,
    rec: &Recorder,
    requests: &[EngineRequest],
    i: usize,
    now: Nanos,
    rerouted_from: Option<usize>,
) -> bool {
    let r = &requests[i];
    let Some(deadline) = r.invoke.deadline else {
        return false;
    };
    if now <= deadline {
        return false;
    }
    if let Some((_, root)) = run.roots.remove(&i) {
        rec.record_closed_under(root, "queued", cat::QUEUE, Phase::Other, r.arrival, now);
        rec.attr(root, "rejected", "deadline");
        rec.end_detached(root);
    }
    run.out[i] = Some(ClusterCompletion {
        index: i,
        host: rerouted_from.map(HostId::from_index),
        function: r.invoke.function,
        arrived: r.arrival,
        started: now,
        finished: now,
        result: Err(PlatformError::DeadlineExceeded {
            function: r.invoke.function.name().to_string(),
            deadline,
        }),
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::StartMode;
    use crate::fireworks::FireworksPlatform;
    use crate::symbols::fid;
    use fireworks_lang::Value;
    use fireworks_runtime::RuntimeKind;
    use fireworks_sim::fault::FaultPlan;

    fn hid(i: usize) -> HostId {
        HostId::from_index(i)
    }

    fn view(id: usize, inflight: usize, queue_depth: usize, holds: bool) -> HostView {
        view_with(
            id,
            inflight,
            queue_depth,
            if holds {
                SnapshotResidency::Full
            } else {
                SnapshotResidency::Absent
            },
        )
    }

    fn view_with(
        id: usize,
        inflight: usize,
        queue_depth: usize,
        residency: SnapshotResidency,
    ) -> HostView {
        HostView {
            id: hid(id),
            healthy: true,
            inflight,
            queue_depth,
            slots: 2,
            queue_cap: 4,
            residency,
        }
    }

    fn some_req() -> InvokeRequest {
        InvokeRequest::new(fid("f"), Value::Int(1)).with_mode(StartMode::Auto)
    }

    #[test]
    fn round_robin_cycles_and_skips_saturated_hosts() {
        let mut rr = RoundRobin::new();
        let mut views = vec![
            view(0, 0, 0, false),
            view(1, 0, 0, false),
            view(2, 0, 0, false),
        ];
        assert_eq!(rr.route(&some_req(), &views), Route::Host(hid(0)));
        assert_eq!(rr.route(&some_req(), &views), Route::Host(hid(1)));
        assert_eq!(rr.route(&some_req(), &views), Route::Host(hid(2)));
        assert_eq!(rr.route(&some_req(), &views), Route::Host(hid(0)));
        // Host 1 saturated (full slots and full queue): skipped.
        views[1].inflight = 2;
        views[1].queue_depth = 4;
        assert_eq!(rr.route(&some_req(), &views), Route::Host(hid(2)));
        // Everyone saturated: defer.
        for v in &mut views {
            v.inflight = 2;
            v.queue_depth = 4;
        }
        assert_eq!(rr.route(&some_req(), &views), Route::Defer);
    }

    #[test]
    fn least_loaded_picks_min_load_lowest_id() {
        let mut ll = LeastLoaded::new();
        let views = vec![
            view(0, 2, 1, false),
            view(1, 1, 0, false),
            view(2, 0, 1, false),
        ];
        // Loads: 3, 1, 1 → tie between hosts 1 and 2 → lowest id wins.
        assert_eq!(ll.route(&some_req(), &views), Route::Host(hid(1)));
        let unhealthy: Vec<HostView> = views
            .iter()
            .map(|v| HostView {
                healthy: false,
                ..*v
            })
            .collect();
        assert_eq!(ll.route(&some_req(), &unhealthy), Route::Defer);
    }

    #[test]
    fn locality_prefers_holders_then_home_then_fallback() {
        let mut loc = LocalityAffinity::new();
        let req = some_req();
        // Hosts 1 and 2 hold the snapshot; 2 is less loaded.
        let views = vec![
            view(0, 0, 0, false),
            view(1, 2, 1, true),
            view(2, 1, 0, true),
        ];
        assert_eq!(loc.route(&req, &views), Route::Host(hid(2)));
        // No holder: the function's stable FNV home gets it (and will
        // cache it for the next request).
        let home = (fnv1a(&req.function.name()) % 3) as usize;
        let views = vec![
            view(0, 1, 1, false),
            view(1, 1, 1, false),
            view(2, 1, 1, false),
        ];
        assert_eq!(loc.route(&req, &views), Route::Host(hid(home)));
        // Home saturated: falls back (counted as a rebalance).
        let mut views = views;
        views[home].inflight = 2;
        views[home].queue_depth = 4;
        match loc.route(&req, &views) {
            Route::Fallback(h) => assert_ne!(h, hid(home)),
            other => panic!("expected fallback, got {other:?}"),
        }
        // All saturated: defer.
        for v in &mut views {
            v.inflight = 2;
            v.queue_depth = 4;
        }
        assert_eq!(loc.route(&req, &views), Route::Defer);
    }

    #[test]
    fn locality_ranks_partial_holders_by_missing_bytes() {
        let mut loc = LocalityAffinity::new();
        let req = some_req();
        // No full holder: the partial host that would move the fewest
        // bytes wins, beating the FNV home probe.
        let views = vec![
            view_with(0, 0, 0, SnapshotResidency::Absent),
            view_with(
                1,
                3,
                1,
                SnapshotResidency::Partial {
                    missing_bytes: 4 << 20,
                },
            ),
            view_with(
                2,
                0,
                0,
                SnapshotResidency::Partial {
                    missing_bytes: 96 << 20,
                },
            ),
        ];
        assert_eq!(loc.route(&req, &views), Route::Host(hid(1)));
        // A full holder still beats every partial one.
        let mut views = views;
        views[0].residency = SnapshotResidency::Full;
        assert_eq!(loc.route(&req, &views), Route::Host(hid(0)));
        // Saturate the cheap partial: the next-cheapest takes it.
        views[0].residency = SnapshotResidency::Absent;
        views[1].inflight = 2;
        views[1].queue_depth = 4;
        assert_eq!(loc.route(&req, &views), Route::Host(hid(2)));
    }

    #[test]
    fn fnv_home_is_stable() {
        assert_eq!(fnv1a("fact-0"), fnv1a("fact-0"));
        assert_ne!(fnv1a("fact-0"), fnv1a("fact-1"));
    }

    const SRC: &str = "
        fn main(params) {
            let n = params[\"n\"];
            let t = 0;
            for (let i = 0; i < n; i = i + 1) { t = t + i; }
            return t;
        }";

    fn spec(name: &str) -> FunctionSpec {
        FunctionSpec::new(
            name,
            SRC,
            RuntimeKind::NodeLike,
            Value::map([("n".to_string(), Value::Int(1000))]),
        )
    }

    fn burst(count: usize) -> Vec<EngineRequest> {
        (0..count)
            .map(|_| {
                EngineRequest::at(
                    Nanos::ZERO,
                    InvokeRequest::new(fid("f"), Value::map([("n".to_string(), Value::Int(500))])),
                )
            })
            .collect()
    }

    #[test]
    fn two_hosts_serve_a_burst_genuinely_in_parallel() {
        let mut cluster = Cluster::new(ClusterConfig::new(2, 1), |env, cfg| {
            FireworksPlatform::with_config(env, cfg.clone())
        });
        cluster.install(&spec("f")).expect("installs everywhere");
        let mut rr = RoundRobin::new();
        let report = cluster.run(&mut rr, &burst(2));
        assert_eq!(report.peak_inflight, 2, "one clone per host, concurrently");
        let hosts: Vec<Option<HostId>> = report.completions.iter().map(|c| c.host).collect();
        assert_eq!(hosts, vec![Some(hid(0)), Some(hid(1))]);
        for c in &report.completions {
            assert!(c.result.is_ok());
            assert_eq!(c.waited(), Nanos::ZERO, "no queueing across two hosts");
        }
        // Install populated every host's cache: both starts are local.
        assert_eq!(report.locality_hits, 2);
        assert_eq!(report.rebalances, 0);
        assert!(report.failed_hosts.is_empty());
        let snap = cluster.obs().metrics().snapshot();
        assert_eq!(snap.gauge("cluster.hosts", &[]), Some(2));
        assert_eq!(snap.gauge("engine.inflight", &[("host", "0")]), Some(0));
    }

    /// Prefers host 0, spills to host 1 — makes crash scheduling in the
    /// test below deterministic and legible.
    struct PrimaryBackup;
    impl Router for PrimaryBackup {
        fn name(&self) -> &'static str {
            "primary_backup"
        }
        fn route(&mut self, _req: &InvokeRequest, hosts: &[HostView]) -> Route {
            match hosts.iter().find(|v| v.has_capacity()) {
                Some(v) => Route::Host(v.id),
                None => Route::Defer,
            }
        }
    }

    #[test]
    fn host_crash_drains_and_reroutes_its_queue() {
        // Each host's injector crashes it at its 2nd service start. With
        // a primary/backup router and one slot per host: request 0 starts
        // on host 0 (check 1); request 1 queues behind it; at request 0's
        // completion the drain tries to start request 1 on host 0 —
        // check 2 fires, host 0 dies, and request 1 re-routes to host 1.
        let env = EnvConfig {
            fault_plan: FaultPlan::new(42).nth(FaultSite::HostCrash, 2),
            ..EnvConfig::default()
        };
        let mut config = ClusterConfig::new(2, 1);
        config.env = env;
        let mut cluster = Cluster::new(config, |env, cfg| {
            FireworksPlatform::with_config(env, cfg.clone())
        });
        cluster.install(&spec("f")).expect("installs");
        let report = cluster.run(&mut PrimaryBackup, &burst(2));
        assert_eq!(report.failed_hosts, vec![hid(0)]);
        assert_eq!(report.rebalances, 1, "the drained request was re-routed");
        assert_eq!(report.completions[0].host, Some(hid(0)));
        assert_eq!(report.completions[1].host, Some(hid(1)));
        for c in &report.completions {
            assert!(c.result.is_ok(), "both requests still succeed");
        }
        assert!(
            report.completions[1].started >= report.completions[0].finished,
            "the re-routed request started at the drain instant"
        );
        let snap = cluster.obs().metrics().snapshot();
        assert_eq!(snap.gauge("cluster.hosts", &[]), Some(1), "one host left");
        assert_eq!(snap.counter("cluster.rebalances", &[]), 1);
        assert_eq!(snap.counter("cluster.host_crashes", &[("host", "0")]), 1);
    }

    #[test]
    fn all_hosts_down_surfaces_host_unavailable() {
        // Crash every host at its first service start: nothing can serve.
        let env = EnvConfig {
            fault_plan: FaultPlan::new(42).nth(FaultSite::HostCrash, 1),
            ..EnvConfig::default()
        };
        let mut config = ClusterConfig::new(2, 1);
        config.env = env;
        let mut cluster = Cluster::new(config, |env, cfg| {
            FireworksPlatform::with_config(env, cfg.clone())
        });
        cluster.install(&spec("f")).expect("installs");
        let report = cluster.run(&mut PrimaryBackup, &burst(1));
        assert_eq!(report.failed_hosts, vec![hid(0), hid(1)]);
        assert!(matches!(
            &report.completions[0].result,
            Err(PlatformError::HostUnavailable { host: Some(1), .. })
        ));
        let snap = cluster.obs().metrics().snapshot();
        assert_eq!(snap.gauge("cluster.hosts", &[]), Some(0));
    }

    #[test]
    fn retain_mode_reports_host_tagged_tokens() {
        let mut config = ClusterConfig::new(2, 1);
        config.completion = CompletionPolicy::Retain;
        let mut cluster = Cluster::new(config, |env, cfg| {
            FireworksPlatform::with_config(env, cfg.clone())
        });
        cluster.install(&spec("f")).expect("installs");
        let report = cluster.run(&mut RoundRobin::new(), &burst(2));
        assert_eq!(report.retained.len(), 2);
        let hosts: Vec<HostId> = report.retained.iter().map(|(h, _)| *h).collect();
        assert_eq!(hosts, vec![hid(0), hid(1)]);
        for (h, token) in report.retained {
            assert!(token.pss_bytes() > 0, "retained clone on host {h} is live");
            cluster.host_mut(h).release_clone(token);
        }
    }
}
